// Deterministic sweep sharding: a pure partition-and-merge over the
// circuit x technique x machine matrix, mediated by the persistent
// compilation cache.
//
// The flat circuit-major cell ordering of sweep::Result is the coordinate
// system: plan() splits [0, total_cells) into shard_count contiguous,
// balanced ranges; run_shard() executes one range via sweep::run (cells a
// shard does not own are filtered out before any work happens); merge()
// recombines shard outputs into one sweep::Result whose cells are
// byte-identical to an unsharded run — verified cell by cell, with
// duplicate, missing, and conflicting cells all rejected loudly.
//
// Why this is sound: a cell's result depends only on (circuit, technique,
// machine, options) — never on thread count, completion order, or which
// shard computed it (sweep/sweep.hpp's determinism contract). Sharding
// therefore changes wall-clock structure and nothing else. Shards pointed
// at a shared PARALLAX_CACHE_DIR never duplicate an anneal: the first shard
// to need a placement persists it and every other shard loads it from the
// disk tier (ShardRun::anneals counts what each shard actually paid, so a
// campaign can prove the no-duplicate-work property).
//
// What byte-identity covers: canonical_bytes() serializes labels, indices,
// errors, compile results (sans pass timings), success probabilities, and
// shot plans. Wall-clock observations (compile_seconds, wall_seconds),
// cache accounting, and provenance (Cell::origin) are execution metadata,
// excluded for the same reason pass timings are excluded from the result
// cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache.hpp"
#include "shard/spec.hpp"
#include "sweep/sweep.hpp"
#include "technique/registry.hpp"
#include "util/hash.hpp"

namespace parallax::shard {

/// Half-open slice [begin, end) of the flat circuit-major cell index space.
struct CellRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(std::size_t flat) const noexcept {
    return flat >= begin && flat < end;
  }
};

/// The deterministic partition: contiguous balanced ranges in flat order
/// (the first `total % count` shards get one extra cell). Contiguity keeps
/// a circuit's cells on as few shards as possible — the in-run memos then
/// share transpilation/placements within a shard, and the persistent cache
/// carries them across the few boundary crossings. Throws ShardError when
/// count == 0 or index >= count.
[[nodiscard]] CellRange shard_cell_range(std::size_t total_cells,
                                         std::uint32_t shard_count,
                                         std::uint32_t shard_index);

/// Splits a spec into shard_count self-contained shard specs, one per
/// shard, in shard-index order. Validates technique names up front so a bad
/// plan fails here, not on a remote host. Throws ShardError / technique::
/// UnknownTechniqueError.
[[nodiscard]] std::vector<ShardSpec> plan(
    const SweepSpec& spec, std::uint32_t shard_count,
    const technique::Registry& registry = technique::Registry::global());

/// Runtime knobs for executing one shard — everything a spec deliberately
/// does not pin down.
struct RunnerOptions {
  /// Worker threads; 0 selects hardware concurrency.
  std::size_t n_threads = 0;
  /// Shared persistent cache; shards sharing one directory never duplicate
  /// an anneal. Null compiles everything locally.
  std::shared_ptr<cache::CompilationCache> cache;
  /// Origin stamped into every cell (Cell::origin); empty derives
  /// "shard-K/N@<hostname>".
  std::string provenance;
};

/// One executed shard: the owned cells (flat order) plus enough context for
/// merge to validate coverage, and accounting for campaign reporting.
struct ShardRun {
  /// spec_digest of the plan's SweepSpec; merge refuses mixed digests.
  util::Digest128 spec;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t n_circuits = 0;
  std::uint64_t n_techniques = 0;
  std::uint64_t n_machines = 0;
  /// Owned cells only, in flat circuit-major order.
  std::vector<sweep::Cell> cells;

  // Execution metadata (excluded from canonical bytes).
  double wall_seconds = 0.0;
  std::uint64_t threads_used = 0;
  std::uint64_t placement_cache_hits = 0;
  std::uint64_t placement_cache_misses = 0;
  std::uint64_t transpile_cache_hits = 0;
  std::uint64_t transpile_cache_misses = 0;
  std::uint64_t placement_disk_hits = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  /// Graphine anneals this shard actually performed. Across a campaign with
  /// a shared cache directory, the sum over shards equals the unsharded
  /// run's count — the zero-duplicate-anneal property.
  std::uint64_t anneals = 0;
};

/// Executes one shard in-process via sweep::run with the ownership filter.
/// The spec's runtime-only option fields are overridden by `runner`.
[[nodiscard]] ShardRun run_shard(
    const ShardSpec& spec, const RunnerOptions& runner = {},
    const technique::Registry& registry = technique::Registry::global());

/// Recombines shard outputs into the sweep::Result an unsharded run would
/// have produced: cells in flat order, counters summed, wall_seconds the
/// max over shards (the campaign's critical path). Taken by value so cells
/// move rather than deep-copy — pass std::move(runs) when the runs are
/// dead afterwards (a paper-scale campaign's cells are most of its
/// memory). Throws ShardError on
///   * outputs from different plans (spec digest / shard count / matrix
///     dimensions disagree),
///   * duplicate cells (same flat index twice, identical content),
///   * conflicting cells (same flat index, different content — a
///     determinism violation, never silently resolved),
///   * missing cells (coverage gaps).
[[nodiscard]] sweep::Result merge(std::vector<ShardRun> runs);

/// In-process convenience used by the bench harness's PARALLAX_SHARDS path:
/// plan + run each shard sequentially + merge, all in this process. Unlike
/// the file-based path this accepts a customize hook (nothing is
/// serialized). Byte-identical to sweep::run over the same arguments.
[[nodiscard]] sweep::Result run_sharded(
    const std::vector<sweep::CircuitSpec>& circuits,
    const std::vector<std::string>& techniques,
    const std::vector<sweep::MachineSpec>& machines,
    std::uint32_t shard_count, const sweep::Options& options = {},
    const technique::Registry& registry = technique::Registry::global());

/// Canonical deterministic serialization of a sweep::Result's cells — the
/// byte-identity artifact the differential tests and the CI shard job diff.
/// Covers labels, indices, errors, results (pass timings excluded by the
/// cache codec), success probabilities, and shot plans; excludes wall-clock
/// observations, cache accounting, and provenance.
[[nodiscard]] std::string canonical_bytes(const sweep::Result& result);

// --- per-cell wire codec ------------------------------------------------------

/// One executed cell on the wire: the canonical content (labels, indices,
/// error, result, success probability, shot plans) plus execution metadata
/// (origin, from_cache, compile_seconds). This is the per-cell record of
/// shard-run files and of the serve layer's streamed cell frames.
void encode_cell(cache::Writer& writer, const sweep::Cell& cell);
/// Throws cache::ReadError on malformed bytes. Index plausibility is the
/// caller's job (the decoded indices are file-supplied).
[[nodiscard]] sweep::Cell decode_cell(cache::Reader& reader);

// --- shard-run file round trip (what `parallax shard run` writes) -------------

[[nodiscard]] std::string serialize_shard_run(const ShardRun& run);
/// Throws cache::ReadError on corruption, ShardError on semantic nonsense.
[[nodiscard]] ShardRun parse_shard_run(std::string_view bytes);

}  // namespace parallax::shard
