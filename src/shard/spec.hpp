// Self-contained, serializable sweep specifications for the shard layer.
//
// A SweepSpec captures everything sweep::run needs to reproduce a cell —
// circuits (full gate lists), technique names, machines (every hardware
// field), and the deterministic subset of sweep::Options. Runtime-only
// fields (thread count, the cache handle, provenance labels, the cell
// filter) are deliberately not part of a spec: two hosts given the same
// spec bytes must produce byte-identical cells whatever their local setup.
//
// The on-disk format follows src/cache/serialize conventions: fixed-width
// little-endian fields via cache::Writer/Reader, wrapped in a versioned
// header (magic, spec version, kind, payload size, 64-bit checksum). Any
// truncation, bit flip, or version drift throws cache::ReadError on parse —
// a corrupt spec or shard output is rejected, never silently merged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "cache/serialize.hpp"
#include "sweep/sweep.hpp"
#include "util/hash.hpp"

namespace parallax::shard {

/// Thrown on spec-level misuse (non-serializable options, bad shard counts)
/// and merge-level integrity failures (duplicate/missing/conflicting cells,
/// outputs from different plans). Distinct from cache::ReadError, which
/// covers byte-level corruption.
class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The full sweep matrix plus its deterministic options. `options` may carry
/// runtime-only fields in memory (they are ignored when serializing), but a
/// spec with a `customize` hook or a `cell_filter` cannot be serialized —
/// both change results yet cannot round-trip through bytes — and
/// serialize_sweep_spec throws ShardError for them.
struct SweepSpec {
  std::vector<sweep::CircuitSpec> circuits;
  std::vector<std::string> techniques;
  std::vector<sweep::MachineSpec> machines;
  sweep::Options options;

  [[nodiscard]] std::size_t total_cells() const noexcept {
    return circuits.size() * techniques.size() * machines.size();
  }
};

/// One shard of a plan: the whole spec plus which slice of the flat
/// circuit-major cell index space this shard owns (shard_cell_range in
/// shard.hpp). Carrying the full spec keeps every shard self-contained — a
/// host needs nothing but its .spec file and (optionally) a cache directory.
struct ShardSpec {
  SweepSpec sweep;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// Bump to retire every existing .spec / shard-output file (encoding
/// change). Old files then fail parse with a version error, never decode
/// garbage. v2: fidelity-estimator options (noise::FidelityOptions) joined
/// the spec codec; shard outputs also carry the new per-layer aod_moves.
inline constexpr std::uint32_t kSpecVersion = 2;

// --- nested option codecs (shared with the shard-run encoder) -----------------

void encode_spec_options(cache::Writer& writer, const sweep::Options& options);
[[nodiscard]] sweep::Options decode_spec_options(cache::Reader& reader);
void encode_machine(cache::Writer& writer, const sweep::MachineSpec& machine);
[[nodiscard]] sweep::MachineSpec decode_machine(cache::Reader& reader);

// --- spec serialization -------------------------------------------------------

/// Canonical payload bytes of a sweep spec (no framing header). Equal specs
/// produce equal bytes in every process; this is what spec_digest hashes.
/// Throws ShardError if `options.customize` or `options.cell_filter` is set.
[[nodiscard]] std::string sweep_spec_payload(const SweepSpec& spec);

/// 128-bit content digest of a sweep spec. Shard outputs carry it so merge
/// can refuse to combine runs of different plans.
[[nodiscard]] util::Digest128 spec_digest(const SweepSpec& spec);

/// Framed, checksummed shard spec file bytes (what `parallax shard plan`
/// writes).
[[nodiscard]] std::string serialize_shard_spec(const ShardSpec& spec);
/// Parses and fully validates a shard spec file; throws cache::ReadError on
/// corruption/truncation/version drift and ShardError on semantic nonsense
/// (shard_index >= shard_count, empty matrix axes).
[[nodiscard]] ShardSpec parse_shard_spec(std::string_view bytes);

// --- framing helpers (shared by spec and shard-run files) ---------------------

/// File kinds folded into the frame header.
enum class FileKind : std::uint32_t {
  kShardSpec = 1,
  kShardRun = 2,
  /// A whole (unsharded) sweep spec: the serve layer's request payload and
  /// what `parallax serve spec` writes.
  kSweepSpec = 3,
};

/// Framed, checksummed whole-sweep spec bytes — the request format the
/// serve layer accepts (and the `parallax serve spec` file format). Same
/// integrity contract as shard specs: any truncation, bit flip, or version
/// drift throws cache::ReadError on parse. Throws ShardError for
/// non-serializable options (customize / cell_filter).
[[nodiscard]] std::string serialize_sweep_spec(const SweepSpec& spec);
/// Parses and validates framed sweep-spec bytes; throws cache::ReadError on
/// corruption and ShardError on an empty matrix axis.
[[nodiscard]] SweepSpec parse_sweep_spec(std::string_view bytes);

/// Wraps payload bytes in the shard file header (magic, version, kind,
/// size, checksum64).
[[nodiscard]] std::string frame_payload(FileKind kind,
                                        const std::string& payload);
/// Validates the frame end to end and returns the payload; throws
/// cache::ReadError on any mismatch.
[[nodiscard]] std::string unframe_payload(FileKind kind,
                                          std::string_view bytes);

}  // namespace parallax::shard
