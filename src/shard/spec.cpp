#include "shard/spec.hpp"

#include <utility>

namespace parallax::shard {

namespace {

using cache::Reader;
using cache::ReadError;
using cache::Writer;

constexpr std::uint64_t kMagic = 0x3144524148535850ULL;  // "PXSHARD1" LE
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

void encode_transpile(Writer& w, const circuit::TranspileOptions& o) {
  w.boolean(o.fuse_single_qubit);
  w.boolean(o.cancel_cz_pairs);
  w.boolean(o.drop_identities);
  w.f64(o.identity_tolerance);
  w.i32(o.max_iterations);
}

circuit::TranspileOptions decode_transpile(Reader& r) {
  circuit::TranspileOptions o;
  o.fuse_single_qubit = r.boolean();
  o.cancel_cz_pairs = r.boolean();
  o.drop_identities = r.boolean();
  o.identity_tolerance = r.f64();
  o.max_iterations = r.i32();
  return o;
}

void encode_placement(Writer& w, const placement::GraphineOptions& o) {
  w.i32(o.anneal_iterations);
  w.i32(o.local_search_evaluations);
  w.f64(o.crowding_distance);
  w.f64(o.crowding_weight);
  w.boolean(o.warm_start);
  w.u64(o.seed);
}

placement::GraphineOptions decode_placement(Reader& r) {
  placement::GraphineOptions o;
  o.anneal_iterations = r.i32();
  o.local_search_evaluations = r.i32();
  o.crowding_distance = r.f64();
  o.crowding_weight = r.f64();
  o.warm_start = r.boolean();
  o.seed = r.u64();
  return o;
}

void encode_scheduler(Writer& w, const compiler::SchedulerOptions& o) {
  w.boolean(o.return_home);
  w.i32(o.max_move_iterations);
  w.u64(o.shuffle_seed);
  w.boolean(o.record_positions);
}

compiler::SchedulerOptions decode_scheduler(Reader& r) {
  compiler::SchedulerOptions o;
  o.return_home = r.boolean();
  o.max_move_iterations = r.i32();
  o.shuffle_seed = r.u64();
  o.record_positions = r.boolean();
  return o;
}

void encode_config(Writer& w, const hardware::HardwareConfig& c) {
  w.str(c.name);
  w.i32(c.grid_side);
  w.f64(c.min_separation_um);
  w.f64(c.discretization_padding_um);
  w.i32(c.aod_rows);
  w.i32(c.aod_cols);
  w.f64(c.u3_time_us);
  w.f64(c.cz_time_us);
  w.f64(c.swap_time_us);
  w.f64(c.trap_switch_time_us);
  w.f64(c.aod_speed_um_per_us);
  w.f64(c.u3_error);
  w.f64(c.cz_error);
  w.f64(c.swap_error);
  w.f64(c.trap_switch_error);
  w.f64(c.movement_loss);
  w.f64(c.atom_loss_rate);
  w.f64(c.readout_error);
  w.f64(c.t1_seconds);
  w.f64(c.t2_seconds);
}

hardware::HardwareConfig decode_config(Reader& r) {
  hardware::HardwareConfig c;
  c.name = r.str();
  c.grid_side = r.i32();
  c.min_separation_um = r.f64();
  c.discretization_padding_um = r.f64();
  c.aod_rows = r.i32();
  c.aod_cols = r.i32();
  c.u3_time_us = r.f64();
  c.cz_time_us = r.f64();
  c.swap_time_us = r.f64();
  c.trap_switch_time_us = r.f64();
  c.aod_speed_um_per_us = r.f64();
  c.u3_error = r.f64();
  c.cz_error = r.f64();
  c.swap_error = r.f64();
  c.trap_switch_error = r.f64();
  c.movement_loss = r.f64();
  c.atom_loss_rate = r.f64();
  c.readout_error = r.f64();
  c.t1_seconds = r.f64();
  c.t2_seconds = r.f64();
  if (c.grid_side < 1) {
    throw ReadError("shard spec has a malformed machine grid");
  }
  return c;
}

void encode_noise(Writer& w, const noise::NoiseOptions& o) {
  w.boolean(o.include_gate_errors);
  w.boolean(o.include_decoherence);
  w.boolean(o.include_operation_overheads);
  w.boolean(o.include_readout);
  w.boolean(o.include_atom_loss);
  w.boolean(o.per_qubit_decoherence);
}

noise::NoiseOptions decode_noise(Reader& r) {
  noise::NoiseOptions o;
  o.include_gate_errors = r.boolean();
  o.include_decoherence = r.boolean();
  o.include_operation_overheads = r.boolean();
  o.include_readout = r.boolean();
  o.include_atom_loss = r.boolean();
  o.per_qubit_decoherence = r.boolean();
  return o;
}

}  // namespace

void encode_spec_options(Writer& writer, const sweep::Options& options) {
  encode_transpile(writer, options.compile.transpile);
  encode_placement(writer, options.compile.placement);
  writer.f64(options.compile.discretize.spread_factor);
  encode_scheduler(writer, options.compile.scheduler);
  writer.f64(options.compile.aod_selection.out_of_range_weight);
  writer.f64(options.compile.aod_selection.interference_weight);
  writer.boolean(options.compile.assume_transpiled);
  writer.boolean(options.compile.preset_topology.has_value());
  if (options.compile.preset_topology) {
    cache::encode(writer, *options.compile.preset_topology);
  }
  writer.u64(options.compile.seed);
  writer.u32(static_cast<std::uint32_t>(options.compile.fidelity.model));
  writer.i64(options.compile.fidelity.shots);
  writer.f64(options.compile.fidelity.moving_decoherence_scale);
  writer.boolean(options.share_placements);
  writer.boolean(options.compute_success_probability);
  encode_noise(writer, options.noise);
  writer.boolean(options.shots.has_value());
  if (options.shots) {
    writer.i64(options.shots->logical_shots);
    writer.f64(options.shots->inter_shot_overhead_us);
  }
  writer.boolean(options.reuse_results);
}

sweep::Options decode_spec_options(Reader& reader) {
  sweep::Options options;
  options.compile.transpile = decode_transpile(reader);
  options.compile.placement = decode_placement(reader);
  options.compile.discretize.spread_factor = reader.f64();
  options.compile.scheduler = decode_scheduler(reader);
  options.compile.aod_selection.out_of_range_weight = reader.f64();
  options.compile.aod_selection.interference_weight = reader.f64();
  options.compile.assume_transpiled = reader.boolean();
  if (reader.boolean()) {
    options.compile.preset_topology = cache::decode_topology(reader);
  }
  options.compile.seed = reader.u64();
  const std::uint32_t fidelity_model = reader.u32();
  if (fidelity_model >
      static_cast<std::uint32_t>(noise::FidelityModel::kSimulated)) {
    throw ReadError("sweep spec has an unknown fidelity model");
  }
  options.compile.fidelity.model =
      static_cast<noise::FidelityModel>(fidelity_model);
  options.compile.fidelity.shots = reader.i64();
  options.compile.fidelity.moving_decoherence_scale = reader.f64();
  options.share_placements = reader.boolean();
  options.compute_success_probability = reader.boolean();
  options.noise = decode_noise(reader);
  if (reader.boolean()) {
    shots::ShotOptions shot_options;
    shot_options.logical_shots = reader.i64();
    shot_options.inter_shot_overhead_us = reader.f64();
    options.shots = shot_options;
  }
  options.reuse_results = reader.boolean();
  return options;
}

void encode_machine(Writer& writer, const sweep::MachineSpec& machine) {
  writer.str(machine.name);
  encode_config(writer, machine.config);
}

sweep::MachineSpec decode_machine(Reader& reader) {
  sweep::MachineSpec machine;
  machine.name = reader.str();
  machine.config = decode_config(reader);
  return machine;
}

std::string sweep_spec_payload(const SweepSpec& spec) {
  if (spec.options.customize) {
    throw ShardError(
        "a sweep spec with a customize hook cannot be serialized; bake the "
        "customization into per-cell options or shard in-process");
  }
  if (spec.options.cell_filter) {
    throw ShardError(
        "a sweep spec must cover the whole matrix; cell ownership is the "
        "shard layer's job, not the spec's");
  }
  Writer writer;
  writer.u64(spec.circuits.size());
  for (const auto& circuit_spec : spec.circuits) {
    writer.str(circuit_spec.name);
    cache::encode(writer, circuit_spec.circuit);
  }
  writer.u64(spec.techniques.size());
  for (const auto& technique : spec.techniques) writer.str(technique);
  writer.u64(spec.machines.size());
  for (const auto& machine : spec.machines) encode_machine(writer, machine);
  encode_spec_options(writer, spec.options);
  return writer.take();
}

util::Digest128 spec_digest(const SweepSpec& spec) {
  const std::string payload = sweep_spec_payload(spec);
  return util::hash128(payload.data(), payload.size());
}

namespace {

SweepSpec decode_sweep_spec(Reader& reader) {
  SweepSpec spec;
  const std::size_t n_circuits = reader.length(8);
  spec.circuits.reserve(n_circuits);
  for (std::size_t i = 0; i < n_circuits; ++i) {
    sweep::CircuitSpec circuit_spec;
    circuit_spec.name = reader.str();
    circuit_spec.circuit = cache::decode_circuit(reader);
    spec.circuits.push_back(std::move(circuit_spec));
  }
  const std::size_t n_techniques = reader.length(8);
  spec.techniques.reserve(n_techniques);
  for (std::size_t i = 0; i < n_techniques; ++i) {
    spec.techniques.push_back(reader.str());
  }
  const std::size_t n_machines = reader.length(8);
  spec.machines.reserve(n_machines);
  for (std::size_t i = 0; i < n_machines; ++i) {
    spec.machines.push_back(decode_machine(reader));
  }
  spec.options = decode_spec_options(reader);
  return spec;
}

}  // namespace

std::string frame_payload(FileKind kind, const std::string& payload) {
  Writer writer;
  writer.u64(kMagic);
  writer.u32(kSpecVersion);
  writer.u32(static_cast<std::uint32_t>(kind));
  writer.u64(payload.size());
  writer.u64(util::checksum64(payload.data(), payload.size()));
  return writer.take() + payload;
}

std::string unframe_payload(FileKind kind, std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw ReadError("shard file truncated before its header");
  }
  Reader reader(bytes);
  if (reader.u64() != kMagic) throw ReadError("not a parallax shard file");
  if (reader.u32() != kSpecVersion) {
    throw ReadError("shard file written by an incompatible version");
  }
  if (reader.u32() != static_cast<std::uint32_t>(kind)) {
    throw ReadError("shard file has the wrong kind for this operation");
  }
  const std::uint64_t size = reader.u64();
  const std::uint64_t checksum = reader.u64();
  if (size != bytes.size() - kHeaderBytes) {
    throw ReadError("shard file payload size mismatch");
  }
  std::string payload(bytes.substr(kHeaderBytes));
  if (util::checksum64(payload.data(), payload.size()) != checksum) {
    throw ReadError("shard file payload checksum mismatch");
  }
  return payload;
}

std::string serialize_sweep_spec(const SweepSpec& spec) {
  return frame_payload(FileKind::kSweepSpec, sweep_spec_payload(spec));
}

SweepSpec parse_sweep_spec(std::string_view bytes) {
  const std::string payload = unframe_payload(FileKind::kSweepSpec, bytes);
  Reader reader(payload);
  SweepSpec spec = decode_sweep_spec(reader);
  reader.expect_end();
  if (spec.circuits.empty() || spec.techniques.empty() ||
      spec.machines.empty()) {
    throw ShardError("sweep spec has an empty matrix axis");
  }
  return spec;
}

std::string serialize_shard_spec(const ShardSpec& spec) {
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
    throw ShardError("shard spec has shard_index outside [0, shard_count)");
  }
  Writer writer;
  writer.str(sweep_spec_payload(spec.sweep));
  writer.u32(spec.shard_index);
  writer.u32(spec.shard_count);
  return frame_payload(FileKind::kShardSpec, writer.take());
}

ShardSpec parse_shard_spec(std::string_view bytes) {
  const std::string payload = unframe_payload(FileKind::kShardSpec, bytes);
  Reader reader(payload);
  const std::string sweep_payload = reader.str();
  ShardSpec spec;
  {
    Reader sweep_reader(sweep_payload);
    spec.sweep = decode_sweep_spec(sweep_reader);
    sweep_reader.expect_end();
  }
  spec.shard_index = reader.u32();
  spec.shard_count = reader.u32();
  reader.expect_end();
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
    throw ShardError("shard spec has shard_index outside [0, shard_count)");
  }
  if (spec.sweep.circuits.empty() || spec.sweep.techniques.empty() ||
      spec.sweep.machines.empty()) {
    throw ShardError("shard spec has an empty matrix axis");
  }
  return spec;
}

}  // namespace parallax::shard
