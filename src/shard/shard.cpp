#include "shard/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <utility>

#include "placement/graphine.hpp"
#include "util/stopwatch.hpp"

namespace parallax::shard {

namespace {

using cache::Reader;
using cache::ReadError;
using cache::Writer;

std::string local_host_name() {
  char buffer[256] = {};
  if (::gethostname(buffer, sizeof(buffer) - 1) != 0) return "localhost";
  return buffer[0] != '\0' ? std::string(buffer) : std::string("localhost");
}

/// The byte-identity view of one cell: everything that constitutes the
/// cell's content, nothing that describes how/where it was computed.
void encode_cell_canonical(Writer& writer, const sweep::Cell& cell) {
  writer.str(cell.circuit);
  writer.str(cell.technique);
  writer.str(cell.machine);
  writer.u64(cell.circuit_index);
  writer.u64(cell.technique_index);
  writer.u64(cell.machine_index);
  writer.str(cell.error);
  cache::encode(writer, cell.result);
  writer.f64(cell.success_probability);
  writer.u64(cell.shot_plans.size());
  for (const auto& plan : cell.shot_plans) {
    writer.i32(plan.copies_per_dim);
    writer.i32(plan.copies);
    writer.i64(plan.physical_shots);
    writer.f64(plan.total_execution_time_us);
  }
}

sweep::Cell decode_cell_canonical(Reader& reader) {
  sweep::Cell cell;
  cell.circuit = reader.str();
  cell.technique = reader.str();
  cell.machine = reader.str();
  cell.circuit_index = static_cast<std::size_t>(reader.u64());
  cell.technique_index = static_cast<std::size_t>(reader.u64());
  cell.machine_index = static_cast<std::size_t>(reader.u64());
  cell.error = reader.str();
  cell.result = cache::decode_result(reader);
  cell.success_probability = reader.f64();
  const std::size_t n_plans = reader.length(24);
  cell.shot_plans.reserve(n_plans);
  for (std::size_t i = 0; i < n_plans; ++i) {
    shots::ParallelPlan plan;
    plan.copies_per_dim = reader.i32();
    plan.copies = reader.i32();
    plan.physical_shots = reader.i64();
    plan.total_execution_time_us = reader.f64();
    cell.shot_plans.push_back(plan);
  }
  return cell;
}

std::string canonical_cell_bytes(const sweep::Cell& cell) {
  Writer writer;
  encode_cell_canonical(writer, cell);
  return writer.take();
}

std::size_t flat_index(const sweep::Cell& cell, std::size_t n_techniques,
                       std::size_t n_machines) {
  return (cell.circuit_index * n_techniques + cell.technique_index) *
             n_machines +
         cell.machine_index;
}

/// Matrix size from untrusted (file-supplied) dimensions, overflow-checked
/// and capped: the frame checksum is an integrity check, not a security
/// boundary, and a crafted header must yield ShardError — never a wrapped
/// multiply indexing out of bounds or a terabyte resize.
std::size_t checked_total_cells(std::uint64_t n_circuits,
                                std::uint64_t n_techniques,
                                std::uint64_t n_machines) {
  constexpr std::uint64_t kMaxCells = 1ull << 24;  // far beyond any campaign
  if (n_circuits == 0 || n_techniques == 0 || n_machines == 0) {
    throw ShardError("shard run declares an empty matrix axis");
  }
  if (n_circuits > kMaxCells || n_techniques > kMaxCells ||
      n_machines > kMaxCells ||
      n_circuits * n_techniques > kMaxCells ||
      n_circuits * n_techniques * n_machines > kMaxCells) {
    throw ShardError("shard run declares an implausibly large matrix");
  }
  return static_cast<std::size_t>(n_circuits * n_techniques * n_machines);
}

void fold_sweep_accounting(ShardRun& run, const sweep::Result& swept) {
  run.wall_seconds = swept.wall_seconds;
  run.threads_used = swept.threads_used;
  run.placement_cache_hits = swept.placement_cache_hits;
  run.placement_cache_misses = swept.placement_cache_misses;
  run.transpile_cache_hits = swept.transpile_cache_hits;
  run.transpile_cache_misses = swept.transpile_cache_misses;
  run.placement_disk_hits = swept.placement_disk_hits;
  run.result_cache_hits = swept.result_cache_hits;
  run.result_cache_misses = swept.result_cache_misses;
}

}  // namespace

void encode_cell(Writer& writer, const sweep::Cell& cell) {
  encode_cell_canonical(writer, cell);
  writer.str(cell.origin);
  writer.boolean(cell.from_cache);
  writer.f64(cell.compile_seconds);
}

sweep::Cell decode_cell(Reader& reader) {
  sweep::Cell cell = decode_cell_canonical(reader);
  cell.origin = reader.str();
  cell.from_cache = reader.boolean();
  cell.compile_seconds = reader.f64();
  return cell;
}

CellRange shard_cell_range(std::size_t total_cells, std::uint32_t shard_count,
                           std::uint32_t shard_index) {
  if (shard_count == 0) throw ShardError("shard_count must be at least 1");
  if (shard_index >= shard_count) {
    throw ShardError("shard_index outside [0, shard_count)");
  }
  const std::size_t base = total_cells / shard_count;
  const std::size_t remainder = total_cells % shard_count;
  CellRange range;
  range.begin = shard_index * base + std::min<std::size_t>(shard_index,
                                                           remainder);
  range.end = range.begin + base + (shard_index < remainder ? 1 : 0);
  return range;
}

std::vector<ShardSpec> plan(const SweepSpec& spec, std::uint32_t shard_count,
                            const technique::Registry& registry) {
  if (shard_count == 0) throw ShardError("shard_count must be at least 1");
  if (spec.circuits.empty() || spec.techniques.empty() ||
      spec.machines.empty()) {
    throw ShardError("cannot plan shards over an empty matrix axis");
  }
  for (const auto& technique : spec.techniques) (void)registry.info(technique);
  // Serializability is part of plan's contract — fail here, not on a remote
  // host with half a campaign already running.
  (void)sweep_spec_payload(spec);
  std::vector<ShardSpec> shards;
  shards.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    shards.push_back({spec, i, shard_count});
  }
  return shards;
}

ShardRun run_shard(const ShardSpec& spec, const RunnerOptions& runner,
                   const technique::Registry& registry) {
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
    throw ShardError("shard spec has shard_index outside [0, shard_count)");
  }
  const std::size_t total = spec.sweep.total_cells();
  const CellRange owned =
      shard_cell_range(total, spec.shard_count, spec.shard_index);

  ShardRun run;
  run.spec = spec_digest(spec.sweep);
  run.shard_index = spec.shard_index;
  run.shard_count = spec.shard_count;
  run.n_circuits = spec.sweep.circuits.size();
  run.n_techniques = spec.sweep.techniques.size();
  run.n_machines = spec.sweep.machines.size();

  sweep::Options options = spec.sweep.options;
  options.n_threads = runner.n_threads;
  options.cache = runner.cache;
  options.cell_filter = [owned](std::size_t flat) {
    return owned.contains(flat);
  };
  options.provenance =
      !runner.provenance.empty()
          ? runner.provenance
          : "shard-" + std::to_string(spec.shard_index) + "/" +
                std::to_string(spec.shard_count) + "@" + local_host_name();

  sweep::Result swept =
      sweep::run(spec.sweep.circuits, spec.sweep.techniques,
                 spec.sweep.machines, options, registry);
  run.anneals = swept.anneals;
  fold_sweep_accounting(run, swept);
  run.cells.reserve(owned.size());
  for (auto& cell : swept.cells) {
    if (!cell.skipped) run.cells.push_back(std::move(cell));
  }
  return run;
}

sweep::Result merge(std::vector<ShardRun> runs) {
  if (runs.empty()) throw ShardError("merge needs at least one shard run");
  const ShardRun& first = runs.front();
  for (const auto& run : runs) {
    if (run.spec != first.spec) {
      throw ShardError("cannot merge shard runs from different sweep specs");
    }
    if (run.shard_count != first.shard_count) {
      throw ShardError("cannot merge shard runs from different plans");
    }
    if (run.n_circuits != first.n_circuits ||
        run.n_techniques != first.n_techniques ||
        run.n_machines != first.n_machines) {
      throw ShardError("shard runs disagree on the matrix dimensions");
    }
  }
  const std::size_t total = checked_total_cells(
      first.n_circuits, first.n_techniques, first.n_machines);
  const std::size_t n_techniques =
      static_cast<std::size_t>(first.n_techniques);
  const std::size_t n_machines = static_cast<std::size_t>(first.n_machines);

  sweep::Result merged;
  merged.cells.resize(total);
  std::vector<char> filled(total, 0);
  for (auto& run : runs) {
    for (auto& cell : run.cells) {
      if (cell.circuit_index >= first.n_circuits ||
          cell.technique_index >= n_techniques ||
          cell.machine_index >= n_machines) {
        throw ShardError("shard run contains a cell outside the matrix: " +
                         cell.circuit + "/" + cell.technique + "/" +
                         cell.machine);
      }
      const std::size_t flat = flat_index(cell, n_techniques, n_machines);
      if (filled[flat] != 0) {
        const bool identical = canonical_cell_bytes(merged.cells[flat]) ==
                               canonical_cell_bytes(cell);
        throw ShardError(std::string(identical ? "duplicate" : "conflicting") +
                         " cell in shard runs: " + cell.circuit + "/" +
                         cell.technique + "/" + cell.machine +
                         (identical ? " (two shards own the same cell)"
                                    : " (same cell, different content — "
                                      "determinism violation)"));
      }
      merged.cells[flat] = std::move(cell);
      filled[flat] = 1;
    }
    merged.placement_cache_hits += run.placement_cache_hits;
    merged.placement_cache_misses += run.placement_cache_misses;
    merged.transpile_cache_hits += run.transpile_cache_hits;
    merged.transpile_cache_misses += run.transpile_cache_misses;
    merged.placement_disk_hits += run.placement_disk_hits;
    merged.result_cache_hits += run.result_cache_hits;
    merged.result_cache_misses += run.result_cache_misses;
    merged.anneals += static_cast<std::size_t>(run.anneals);
    merged.wall_seconds = std::max(merged.wall_seconds, run.wall_seconds);
    merged.threads_used = std::max(merged.threads_used,
                                   static_cast<std::size_t>(run.threads_used));
  }
  for (std::size_t flat = 0; flat < total; ++flat) {
    if (filled[flat] == 0) {
      const std::size_t per_circuit = n_techniques * n_machines;
      throw ShardError(
          "missing cell in shard runs: circuit " +
          std::to_string(flat / per_circuit) + ", technique " +
          std::to_string((flat % per_circuit) / n_machines) + ", machine " +
          std::to_string(flat % n_machines));
    }
  }
  return merged;
}

sweep::Result run_sharded(const std::vector<sweep::CircuitSpec>& circuits,
                          const std::vector<std::string>& techniques,
                          const std::vector<sweep::MachineSpec>& machines,
                          std::uint32_t shard_count,
                          const sweep::Options& options,
                          const technique::Registry& registry) {
  if (shard_count == 0) throw ShardError("shard_count must be at least 1");
  if (options.cell_filter) {
    throw ShardError(
        "run_sharded owns cell partitioning and cannot compose a caller "
        "cell_filter; filter the matrix axes instead");
  }
  const util::Stopwatch stopwatch;
  const std::size_t total =
      circuits.size() * techniques.size() * machines.size();
  sweep::Result merged;
  merged.cells.resize(total);
  for (std::uint32_t index = 0; index < shard_count; ++index) {
    const CellRange owned = shard_cell_range(total, shard_count, index);
    if (owned.size() == 0) continue;
    sweep::Options shard_options = options;
    shard_options.cell_filter = [owned](std::size_t flat) {
      return owned.contains(flat);
    };
    if (shard_options.provenance.empty()) {
      shard_options.provenance = "shard-" + std::to_string(index) + "/" +
                                 std::to_string(shard_count) + "@" +
                                 local_host_name();
    }
    sweep::Result swept =
        sweep::run(circuits, techniques, machines, shard_options, registry);
    for (std::size_t flat = owned.begin; flat < owned.end; ++flat) {
      merged.cells[flat] = std::move(swept.cells[flat]);
    }
    merged.placement_cache_hits += swept.placement_cache_hits;
    merged.placement_cache_misses += swept.placement_cache_misses;
    merged.transpile_cache_hits += swept.transpile_cache_hits;
    merged.transpile_cache_misses += swept.transpile_cache_misses;
    merged.placement_disk_hits += swept.placement_disk_hits;
    merged.result_cache_hits += swept.result_cache_hits;
    merged.result_cache_misses += swept.result_cache_misses;
    merged.anneals += swept.anneals;
    merged.threads_used = std::max(merged.threads_used, swept.threads_used);
  }
  merged.wall_seconds = stopwatch.seconds();
  return merged;
}

std::string canonical_bytes(const sweep::Result& result) {
  Writer writer;
  writer.u64(result.cells.size());
  for (const auto& cell : result.cells) encode_cell_canonical(writer, cell);
  return writer.take();
}

std::string serialize_shard_run(const ShardRun& run) {
  Writer writer;
  writer.u64(run.spec.hi);
  writer.u64(run.spec.lo);
  writer.u32(run.shard_index);
  writer.u32(run.shard_count);
  writer.u64(run.n_circuits);
  writer.u64(run.n_techniques);
  writer.u64(run.n_machines);
  writer.u64(run.cells.size());
  for (const auto& cell : run.cells) encode_cell(writer, cell);
  writer.f64(run.wall_seconds);
  writer.u64(run.threads_used);
  writer.u64(run.placement_cache_hits);
  writer.u64(run.placement_cache_misses);
  writer.u64(run.transpile_cache_hits);
  writer.u64(run.transpile_cache_misses);
  writer.u64(run.placement_disk_hits);
  writer.u64(run.result_cache_hits);
  writer.u64(run.result_cache_misses);
  writer.u64(run.anneals);
  return frame_payload(FileKind::kShardRun, writer.take());
}

ShardRun parse_shard_run(std::string_view bytes) {
  const std::string payload = unframe_payload(FileKind::kShardRun, bytes);
  Reader reader(payload);
  ShardRun run;
  run.spec.hi = reader.u64();
  run.spec.lo = reader.u64();
  run.shard_index = reader.u32();
  run.shard_count = reader.u32();
  run.n_circuits = reader.u64();
  run.n_techniques = reader.u64();
  run.n_machines = reader.u64();
  const std::size_t total =
      checked_total_cells(run.n_circuits, run.n_techniques, run.n_machines);
  const std::size_t n_cells = reader.length(1);
  if (n_cells > total) {
    throw ShardError("shard run carries more cells than its matrix holds");
  }
  run.cells.reserve(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    // Qualified: ADL on cache::Reader would also find cache::decode_cell
    // (the CachedCell codec) and make the call ambiguous.
    sweep::Cell cell = shard::decode_cell(reader);
    if (cell.circuit_index >= run.n_circuits ||
        cell.technique_index >= run.n_techniques ||
        cell.machine_index >= run.n_machines) {
      throw ShardError("shard run cell indexes outside its matrix");
    }
    run.cells.push_back(std::move(cell));
  }
  run.wall_seconds = reader.f64();
  run.threads_used = reader.u64();
  run.placement_cache_hits = reader.u64();
  run.placement_cache_misses = reader.u64();
  run.transpile_cache_hits = reader.u64();
  run.transpile_cache_misses = reader.u64();
  run.placement_disk_hits = reader.u64();
  run.result_cache_hits = reader.u64();
  run.result_cache_misses = reader.u64();
  run.anneals = reader.u64();
  reader.expect_end();
  if (run.shard_count == 0 || run.shard_index >= run.shard_count) {
    throw ShardError("shard run has shard_index outside [0, shard_count)");
  }
  return run;
}

}  // namespace parallax::shard
