// ELDI-style placement (Baker et al., ISCA'21 + Litteken et al., QCE'22):
// qubits are mapped onto a compact square sub-grid of SLM sites with a
// graph-aware greedy strategy — qubits in descending connection-to-placed
// order, each at the free cell minimizing the weighted distance to its
// already-placed partners. Consumed by the "eldi-placement" pipeline pass;
// exposed here so tests can exercise it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/interaction_graph.hpp"
#include "geometry/grid.hpp"

namespace parallax::baselines {

/// Greedy graph-aware placement on a compact square region of `region_side`
/// sites. Throws std::runtime_error if the region cannot hold every qubit.
[[nodiscard]] std::vector<geom::Cell> compact_grid_placement(
    const circuit::InteractionGraph& graph, const geom::Grid& grid,
    std::int32_t region_side);

/// Side of ELDI's placement region for `n_qubits` qubits on a machine with
/// `grid_side` sites per side: ~2x site slack so the greedy mapper can keep
/// chains contiguous (ELDI exploits long-distance interactions rather than
/// maximal packing).
[[nodiscard]] std::int32_t eldi_region_side(std::int32_t n_qubits,
                                            std::int32_t grid_side);

}  // namespace parallax::baselines
