#include "baselines/swap_router.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace parallax::baselines {

std::vector<std::vector<std::int32_t>> connectivity_graph(
    const std::vector<geom::Point>& positions, double radius) {
  const std::size_t n = positions.size();
  std::vector<std::vector<std::int32_t>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geom::distance(positions[i], positions[j]) <= radius) {
        adjacency[i].push_back(static_cast<std::int32_t>(j));
        adjacency[j].push_back(static_cast<std::int32_t>(i));
      }
    }
  }
  return adjacency;
}

namespace {

/// BFS shortest path from atom `from` to any atom within `radius` of
/// `to_position` (the CZ can fire as soon as the carried qubit is in range
/// of the partner atom). Returns the atom sequence including `from`.
std::vector<std::int32_t> shortest_path_into_range(
    const std::vector<std::vector<std::int32_t>>& adjacency,
    const std::vector<geom::Point>& positions, std::int32_t from,
    std::int32_t partner_atom, double radius) {
  const auto n = static_cast<std::int32_t>(adjacency.size());
  std::vector<std::int32_t> parent(static_cast<std::size_t>(n), -2);
  std::deque<std::int32_t> queue{from};
  parent[static_cast<std::size_t>(from)] = -1;
  const geom::Point target = positions[static_cast<std::size_t>(partner_atom)];

  std::int32_t goal = -1;
  while (!queue.empty()) {
    const std::int32_t atom = queue.front();
    queue.pop_front();
    if (atom != partner_atom &&
        geom::distance(positions[static_cast<std::size_t>(atom)], target) <=
            radius) {
      goal = atom;
      break;
    }
    for (const std::int32_t next : adjacency[static_cast<std::size_t>(atom)]) {
      if (parent[static_cast<std::size_t>(next)] == -2) {
        parent[static_cast<std::size_t>(next)] = atom;
        queue.push_back(next);
      }
    }
  }
  if (goal < 0) {
    throw std::runtime_error(
        "SWAP routing failed: connectivity graph disconnects the qubits");
  }
  std::vector<std::int32_t> path;
  for (std::int32_t a = goal; a != -1; a = parent[static_cast<std::size_t>(a)]) {
    path.push_back(a);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RoutedCircuit route_with_swaps(const circuit::Circuit& input,
                               const std::vector<geom::Point>& positions,
                               double radius) {
  const auto n_atoms = static_cast<std::int32_t>(positions.size());
  if (input.n_qubits() > n_atoms) {
    throw std::runtime_error("more logical qubits than atoms");
  }
  const auto adjacency = connectivity_graph(positions, radius);

  RoutedCircuit result;
  result.circuit = circuit::Circuit(n_atoms, input.name());
  // logical -> atom and its inverse.
  std::vector<std::int32_t> atom_of(static_cast<std::size_t>(n_atoms));
  std::vector<std::int32_t> logical_at(static_cast<std::size_t>(n_atoms));
  std::iota(atom_of.begin(), atom_of.end(), 0);
  std::iota(logical_at.begin(), logical_at.end(), 0);

  auto do_swap = [&](std::int32_t atom_a, std::int32_t atom_b) {
    result.circuit.swap(atom_a, atom_b);
    ++result.swaps_inserted;
    const std::int32_t la = logical_at[static_cast<std::size_t>(atom_a)];
    const std::int32_t lb = logical_at[static_cast<std::size_t>(atom_b)];
    std::swap(logical_at[static_cast<std::size_t>(atom_a)],
              logical_at[static_cast<std::size_t>(atom_b)]);
    std::swap(atom_of[static_cast<std::size_t>(la)],
              atom_of[static_cast<std::size_t>(lb)]);
  };

  for (const circuit::Gate& g : input.gates()) {
    switch (g.type) {
      case circuit::GateType::kU3: {
        const auto atom = atom_of[static_cast<std::size_t>(g.q[0])];
        result.circuit.u3(atom, g.theta, g.phi, g.lambda);
        break;
      }
      case circuit::GateType::kMeasure: {
        result.circuit.measure(atom_of[static_cast<std::size_t>(g.q[0])]);
        break;
      }
      case circuit::GateType::kBarrier: {
        result.circuit.barrier();
        break;
      }
      case circuit::GateType::kSwap: {
        // Explicit SWAPs in the input are logical operations: route them as
        // three CZ-equivalents at the current mapping (rare; generators do
        // not emit them after transpilation).
        const auto a = atom_of[static_cast<std::size_t>(g.q[0])];
        const auto b = atom_of[static_cast<std::size_t>(g.q[1])];
        result.circuit.swap(a, b);
        break;
      }
      case circuit::GateType::kCZ: {
        std::int32_t atom_a = atom_of[static_cast<std::size_t>(g.q[0])];
        std::int32_t atom_b = atom_of[static_cast<std::size_t>(g.q[1])];
        if (geom::distance(positions[static_cast<std::size_t>(atom_a)],
                           positions[static_cast<std::size_t>(atom_b)]) >
            radius) {
          ++result.routed_cz;
          const auto path = shortest_path_into_range(adjacency, positions,
                                                     atom_a, atom_b, radius);
          // Swap the logical qubit along the path to the goal atom.
          for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
            do_swap(path[hop], path[hop + 1]);
          }
          atom_a = atom_of[static_cast<std::size_t>(g.q[0])];
          atom_b = atom_of[static_cast<std::size_t>(g.q[1])];
        }
        result.circuit.cz(atom_a, atom_b);
        break;
      }
    }
  }
  result.final_mapping = std::move(atom_of);
  return result;
}

}  // namespace parallax::baselines
