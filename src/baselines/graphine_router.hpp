// GRAPHINE baseline (Patel et al., SC'23): the same annealed application-
// specific layout that Parallax uses for initialization — but atoms stay
// static, so out-of-range CZs cost SWAP chains over the in-range
// connectivity graph. Hardware-compatible per the paper's methodology
// (discretized pitch, connectivity-preserving radius, 2.5x blockade).
#pragma once

#include <cstdint>
#include <optional>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "parallax/result.hpp"
#include "placement/graphine.hpp"

namespace parallax::baselines {

struct GraphineOptions {
  circuit::TranspileOptions transpile{};
  placement::GraphineOptions placement{};
  placement::DiscretizeOptions discretize{};
  bool assume_transpiled = false;
  /// Reuse a pre-computed normalized placement (to share the layout with a
  /// Parallax run, exactly as the paper's evaluation does).
  std::optional<placement::Topology> preset_topology;
  std::uint64_t seed = 0x62A9ULL;
};

[[nodiscard]] compiler::CompileResult graphine_compile(
    const circuit::Circuit& input, const hardware::HardwareConfig& config,
    const GraphineOptions& options = {});

}  // namespace parallax::baselines
