// Shared SWAP-routing machinery for the two baseline compilers (ELDI and
// GRAPHINE). Atoms are static; a CZ between out-of-range atoms is resolved
// by swapping one logical qubit along a shortest path of the in-range
// connectivity graph until the pair is within the Rydberg interaction
// radius. The router tracks the logical->physical permutation that SWAPs
// induce, so the output circuit is logically equivalent to the input.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "geometry/point.hpp"

namespace parallax::baselines {

struct RoutedCircuit {
  circuit::Circuit circuit;           // with SWAPs inserted (atom indices!)
  std::vector<std::int32_t> final_mapping;  // logical qubit -> atom
  std::size_t swaps_inserted = 0;
  std::size_t routed_cz = 0;          // CZs that needed routing
};

/// Connectivity over static atom positions: adjacency[i] lists atoms within
/// `radius` of atom i.
[[nodiscard]] std::vector<std::vector<std::int32_t>> connectivity_graph(
    const std::vector<geom::Point>& positions, double radius);

/// Routes `input` (a {U3, CZ} circuit over logical qubits) onto atoms at
/// `positions` with the given interaction radius. The initial mapping is the
/// identity (logical qubit q starts on atom q). Throws std::runtime_error
/// if the connectivity graph is disconnected over the used atoms.
[[nodiscard]] RoutedCircuit route_with_swaps(
    const circuit::Circuit& input, const std::vector<geom::Point>& positions,
    double radius);

}  // namespace parallax::baselines
