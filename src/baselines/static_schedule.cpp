#include "baselines/static_schedule.hpp"

#include <algorithm>
#include <cassert>

#include "circuit/dag.hpp"
#include "util/rng.hpp"

namespace parallax::baselines {

namespace {

double gate_time_us(const circuit::Gate& g,
                    const hardware::HardwareConfig& config) {
  switch (g.type) {
    case circuit::GateType::kU3: return config.u3_time_us;
    case circuit::GateType::kCZ: return config.cz_time_us;
    case circuit::GateType::kSwap: return config.swap_time_us;
    default: return 0.0;
  }
}

bool blockade_conflict(const std::vector<geom::Point>& positions,
                       double blockade_radius, const circuit::Gate& g1,
                       const circuit::Gate& g2) {
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (geom::distance(positions[static_cast<std::size_t>(g1.q[i])],
                         positions[static_cast<std::size_t>(g2.q[j])]) <
          blockade_radius) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

StaticScheduleOutput schedule_static(const circuit::Circuit& circuit,
                                     const std::vector<geom::Point>& positions,
                                     double blockade_radius,
                                     const hardware::HardwareConfig& config,
                                     std::uint64_t shuffle_seed) {
  StaticScheduleOutput output;
  circuit::DependencyTracker dag(circuit);
  util::Rng rng(shuffle_seed);

  while (!dag.done()) {
    // One ready gate per qubit.
    std::vector<std::size_t> candidates;
    for (std::int32_t q = 0; q < circuit.n_qubits(); ++q) {
      const auto next = dag.next_gate(q);
      if (!next || !dag.is_ready(*next)) continue;
      if (std::find(candidates.begin(), candidates.end(), *next) !=
          candidates.end()) {
        continue;
      }
      candidates.push_back(*next);
    }
    assert(!candidates.empty());
    rng.shuffle(candidates);

    // Blockade serialization: multi-qubit gates (CZ and SWAP — a SWAP is
    // three back-to-back CZs on the same pair) conflict within the radius.
    compiler::Layer layer;
    std::vector<std::size_t> final_gates;
    for (const std::size_t gi : candidates) {
      const circuit::Gate& g = circuit.gate(gi);
      if (g.is_two_qubit()) {
        bool conflicts = false;
        for (const std::size_t prior : final_gates) {
          const circuit::Gate& pg = circuit.gate(prior);
          if (pg.is_two_qubit() &&
              blockade_conflict(positions, blockade_radius, g, pg)) {
            conflicts = true;
            break;
          }
        }
        if (conflicts) continue;
      }
      final_gates.push_back(gi);
    }
    assert(!final_gates.empty());

    double max_gate_time = 0.0;
    for (const std::size_t gi : final_gates) {
      max_gate_time =
          std::max(max_gate_time, gate_time_us(circuit.gate(gi), config));
      dag.mark_executed(gi);
    }
    layer.gates = std::move(final_gates);
    layer.duration_us = max_gate_time;
    output.runtime_us += layer.duration_us;
    output.layers.push_back(std::move(layer));
  }
  return output;
}

}  // namespace parallax::baselines
