#include "baselines/eldi_placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace parallax::baselines {

std::vector<geom::Cell> compact_grid_placement(
    const circuit::InteractionGraph& graph, const geom::Grid& grid,
    std::int32_t region_side) {
  const auto n = static_cast<std::size_t>(graph.n_qubits());
  std::vector<geom::Cell> cells(n);
  geom::Occupancy occupancy(grid);

  // Edge weights as a lookup.
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> partners(n);
  for (const auto& e : graph.edges()) {
    partners[static_cast<std::size_t>(e.a)].push_back({e.b, e.weight});
    partners[static_cast<std::size_t>(e.b)].push_back({e.a, e.weight});
  }

  std::vector<char> placed(n, 0);
  std::vector<std::int64_t> attachment(n, 0);  // weight to placed qubits

  // Start with the most connected qubit at the region centre.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::int32_t first = *std::max_element(
      order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
        return graph.degree(a) < graph.degree(b);
      });
  const geom::Cell centre{region_side / 2, region_side / 2};
  cells[static_cast<std::size_t>(first)] = centre;
  occupancy.set(centre, true);
  placed[static_cast<std::size_t>(first)] = 1;
  for (const auto& [p, w] : partners[static_cast<std::size_t>(first)]) {
    attachment[static_cast<std::size_t>(p)] += w;
  }

  for (std::size_t step = 1; step < n; ++step) {
    // Next qubit: strongest attachment to the placed set (ties: degree).
    std::int32_t pick = -1;
    for (std::int32_t q = 0; q < graph.n_qubits(); ++q) {
      if (placed[static_cast<std::size_t>(q)]) continue;
      if (pick < 0 ||
          attachment[static_cast<std::size_t>(q)] >
              attachment[static_cast<std::size_t>(pick)] ||
          (attachment[static_cast<std::size_t>(q)] ==
               attachment[static_cast<std::size_t>(pick)] &&
           graph.degree(q) > graph.degree(pick))) {
        pick = q;
      }
    }
    // Best free cell: minimize weighted distance to placed partners
    // (isolated qubits go to the free cell nearest the centre).
    geom::Cell best{};
    double best_cost = 0.0;
    bool have = false;
    for (std::int32_t row = 0; row < region_side; ++row) {
      for (std::int32_t col = 0; col < region_side; ++col) {
        const geom::Cell cell{col, row};
        if (!grid.in_bounds(cell) || occupancy.occupied(cell)) continue;
        double cost = 0.0;
        bool attached = false;
        for (const auto& [p, w] : partners[static_cast<std::size_t>(pick)]) {
          if (!placed[static_cast<std::size_t>(p)]) continue;
          attached = true;
          cost += static_cast<double>(w) *
                  geom::distance(grid.position(cell),
                                 grid.position(cells[static_cast<std::size_t>(p)]));
        }
        if (!attached) {
          cost = geom::distance(grid.position(cell), grid.position(centre));
        }
        if (!have || cost < best_cost) {
          have = true;
          best_cost = cost;
          best = cell;
        }
      }
    }
    if (!have) {
      throw std::runtime_error("ELDI placement region too small");
    }
    cells[static_cast<std::size_t>(pick)] = best;
    occupancy.set(best, true);
    placed[static_cast<std::size_t>(pick)] = 1;
    for (const auto& [p, w] : partners[static_cast<std::size_t>(pick)]) {
      if (!placed[static_cast<std::size_t>(p)]) {
        attachment[static_cast<std::size_t>(p)] += w;
      }
    }
  }
  return cells;
}

std::int32_t eldi_region_side(std::int32_t n_qubits, std::int32_t grid_side) {
  return std::min<std::int32_t>(
      grid_side,
      static_cast<std::int32_t>(
          std::ceil(std::sqrt(1.45 * static_cast<double>(std::max(1, n_qubits))))));
}

}  // namespace parallax::baselines
