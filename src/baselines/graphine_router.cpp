#include "baselines/graphine_router.hpp"

#include "baselines/static_schedule.hpp"
#include "baselines/swap_router.hpp"
#include "circuit/interaction_graph.hpp"
#include "parallax/compiler.hpp"
#include "placement/discretize.hpp"

namespace parallax::baselines {

compiler::CompileResult graphine_compile(const circuit::Circuit& input,
                                         const hardware::HardwareConfig& config,
                                         const GraphineOptions& options) {
  if (input.n_qubits() > config.n_atoms()) {
    throw compiler::CompileError("circuit too large for machine");
  }

  compiler::CompileResult result;
  result.technique = "graphine";
  circuit::Circuit transpiled = options.assume_transpiled
                                    ? input
                                    : circuit::transpile(input, options.transpile);

  const circuit::InteractionGraph graph(transpiled);
  placement::Topology topology;
  if (options.preset_topology) {
    topology = *options.preset_topology;
  } else {
    topology = placement::graphine_place(graph, options.placement);
  }
  result.topology = placement::discretize(topology, config, options.discretize);

  std::vector<geom::Point> positions;
  positions.reserve(result.topology.sites.size());
  for (const auto& cell : result.topology.sites) {
    positions.push_back(result.topology.grid.position(cell));
  }

  RoutedCircuit routed = route_with_swaps(
      transpiled, positions, result.topology.interaction_radius_um);
  StaticScheduleOutput schedule =
      schedule_static(routed.circuit, positions,
                      result.topology.blockade_radius_um, config, options.seed);

  result.circuit = std::move(routed.circuit);
  result.layers = std::move(schedule.layers);
  result.runtime_us = schedule.runtime_us;
  result.in_aod.assign(static_cast<std::size_t>(result.circuit.n_qubits()), 0);
  result.stats.u3_gates = result.circuit.u3_count();
  result.stats.cz_gates = result.circuit.cz_count();
  result.stats.swap_gates = result.circuit.swap_count();
  result.stats.layers = result.layers.size();
  result.stats.out_of_range_cz = routed.routed_cz;
  return result;
}

}  // namespace parallax::baselines
