#include "baselines/eldi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "baselines/static_schedule.hpp"
#include "baselines/swap_router.hpp"
#include "circuit/interaction_graph.hpp"
#include "geometry/grid.hpp"
#include "parallax/compiler.hpp"

namespace parallax::baselines {

namespace {

/// Greedy graph-aware placement on a compact square sub-grid: qubits are
/// placed in descending connection-to-placed order, each at the free cell
/// minimizing the weighted distance to its already-placed partners.
std::vector<geom::Cell> compact_grid_placement(
    const circuit::InteractionGraph& graph, const geom::Grid& grid,
    std::int32_t region_side) {
  const auto n = static_cast<std::size_t>(graph.n_qubits());
  std::vector<geom::Cell> cells(n);
  geom::Occupancy occupancy(grid);

  // Edge weights as a lookup.
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> partners(n);
  for (const auto& e : graph.edges()) {
    partners[static_cast<std::size_t>(e.a)].push_back({e.b, e.weight});
    partners[static_cast<std::size_t>(e.b)].push_back({e.a, e.weight});
  }

  std::vector<char> placed(n, 0);
  std::vector<std::int64_t> attachment(n, 0);  // weight to placed qubits

  // Start with the most connected qubit at the region centre.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::int32_t first = *std::max_element(
      order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
        return graph.degree(a) < graph.degree(b);
      });
  const geom::Cell centre{region_side / 2, region_side / 2};
  cells[static_cast<std::size_t>(first)] = centre;
  occupancy.set(centre, true);
  placed[static_cast<std::size_t>(first)] = 1;
  for (const auto& [p, w] : partners[static_cast<std::size_t>(first)]) {
    attachment[static_cast<std::size_t>(p)] += w;
  }

  for (std::size_t step = 1; step < n; ++step) {
    // Next qubit: strongest attachment to the placed set (ties: degree).
    std::int32_t pick = -1;
    for (std::int32_t q = 0; q < graph.n_qubits(); ++q) {
      if (placed[static_cast<std::size_t>(q)]) continue;
      if (pick < 0 ||
          attachment[static_cast<std::size_t>(q)] >
              attachment[static_cast<std::size_t>(pick)] ||
          (attachment[static_cast<std::size_t>(q)] ==
               attachment[static_cast<std::size_t>(pick)] &&
           graph.degree(q) > graph.degree(pick))) {
        pick = q;
      }
    }
    // Best free cell: minimize weighted distance to placed partners
    // (isolated qubits go to the free cell nearest the centre).
    geom::Cell best{};
    double best_cost = 0.0;
    bool have = false;
    for (std::int32_t row = 0; row < region_side; ++row) {
      for (std::int32_t col = 0; col < region_side; ++col) {
        const geom::Cell cell{col, row};
        if (!grid.in_bounds(cell) || occupancy.occupied(cell)) continue;
        double cost = 0.0;
        bool attached = false;
        for (const auto& [p, w] : partners[static_cast<std::size_t>(pick)]) {
          if (!placed[static_cast<std::size_t>(p)]) continue;
          attached = true;
          cost += static_cast<double>(w) *
                  geom::distance(grid.position(cell),
                                 grid.position(cells[static_cast<std::size_t>(p)]));
        }
        if (!attached) {
          cost = geom::distance(grid.position(cell), grid.position(centre));
        }
        if (!have || cost < best_cost) {
          have = true;
          best_cost = cost;
          best = cell;
        }
      }
    }
    if (!have) {
      throw std::runtime_error("ELDI placement region too small");
    }
    cells[static_cast<std::size_t>(pick)] = best;
    occupancy.set(best, true);
    placed[static_cast<std::size_t>(pick)] = 1;
    for (const auto& [p, w] : partners[static_cast<std::size_t>(pick)]) {
      if (!placed[static_cast<std::size_t>(p)]) {
        attachment[static_cast<std::size_t>(p)] += w;
      }
    }
  }
  return cells;
}

}  // namespace

compiler::CompileResult eldi_compile(const circuit::Circuit& input,
                                     const hardware::HardwareConfig& config,
                                     const EldiOptions& options) {
  if (input.n_qubits() > config.n_atoms()) {
    throw compiler::CompileError("circuit too large for machine");
  }

  compiler::CompileResult result;
  result.technique = "eldi";
  circuit::Circuit transpiled = options.assume_transpiled
                                    ? input
                                    : circuit::transpile(input, options.transpile);

  // Square region at hardware pitch, with ~2x site slack so the greedy
  // mapper can keep chains contiguous (ELDI exploits long-distance
  // interactions rather than maximal packing).
  const geom::Grid grid(config.grid_side, config.pitch_um());
  const auto region_side = std::min<std::int32_t>(
      config.grid_side,
      static_cast<std::int32_t>(std::ceil(std::sqrt(
          1.45 * static_cast<double>(std::max(1, transpiled.n_qubits()))))));
  const circuit::InteractionGraph graph(transpiled);
  const auto cells = compact_grid_placement(graph, grid, region_side);

  result.topology.grid = grid;
  result.topology.sites = cells;
  // Long-range interaction radius: diagonal neighbours are reachable
  // (8-connectivity), the hardware-compatible setting the paper applies.
  result.topology.interaction_radius_um =
      grid.pitch() * std::sqrt(2.0) * (1.0 + 1e-9);
  result.topology.blockade_radius_um =
      2.5 * result.topology.interaction_radius_um;

  std::vector<geom::Point> positions;
  positions.reserve(cells.size());
  for (const auto& cell : cells) positions.push_back(grid.position(cell));

  RoutedCircuit routed = route_with_swaps(transpiled, positions,
                                          result.topology.interaction_radius_um);
  StaticScheduleOutput schedule =
      schedule_static(routed.circuit, positions,
                      result.topology.blockade_radius_um, config, options.seed);

  result.circuit = std::move(routed.circuit);
  result.layers = std::move(schedule.layers);
  result.runtime_us = schedule.runtime_us;
  result.in_aod.assign(static_cast<std::size_t>(result.circuit.n_qubits()), 0);
  result.stats.u3_gates = result.circuit.u3_count();
  result.stats.cz_gates = result.circuit.cz_count();
  result.stats.swap_gates = result.circuit.swap_count();
  result.stats.layers = result.layers.size();
  result.stats.out_of_range_cz = routed.routed_cz;
  return result;
}

}  // namespace baselines
