// Hardware-aware layering for circuits on *static* atoms (the baselines):
// same dependency/layering/blockade logic as Parallax's Algorithm 1, minus
// atom movement — routing has already made every CZ in-range.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "geometry/point.hpp"
#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::baselines {

struct StaticScheduleOutput {
  std::vector<compiler::Layer> layers;
  double runtime_us = 0.0;
};

/// Schedules `circuit` (whose qubit indices are atom indices at `positions`)
/// into blockade-respecting layers. `blockade_radius` gates CZ/SWAP
/// parallelism; U3 gates parallelize freely.
[[nodiscard]] StaticScheduleOutput schedule_static(
    const circuit::Circuit& circuit, const std::vector<geom::Point>& positions,
    double blockade_radius, const hardware::HardwareConfig& config,
    std::uint64_t shuffle_seed);

}  // namespace parallax::baselines
