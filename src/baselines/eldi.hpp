// ELDI baseline (Baker et al., ISCA'21 + Litteken et al., QCE'22): qubits
// are mapped onto a compact square grid of SLM sites with a graph-aware
// greedy placement; out-of-range CZs are resolved with SWAP chains along the
// 8-neighbour connectivity that long-range Rydberg interactions provide.
// Following the paper's methodology, the baseline is made hardware-
// compatible: the same discretization pitch, minimum separation, and
// 2.5x blockade radius as Parallax.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::baselines {

struct EldiOptions {
  circuit::TranspileOptions transpile{};
  bool assume_transpiled = false;
  std::uint64_t seed = 0xE1D1ULL;
};

/// Compiles `input` for `config` using the ELDI strategy. The result's
/// swap_gates count feeds the paper's effective-CZ metric (Fig. 9).
[[nodiscard]] compiler::CompileResult eldi_compile(
    const circuit::Circuit& input, const hardware::HardwareConfig& config,
    const EldiOptions& options = {});

}  // namespace parallax::baselines
