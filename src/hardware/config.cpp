#include "hardware/config.hpp"

namespace parallax::hardware {

HardwareConfig HardwareConfig::quera_aquila_256() {
  HardwareConfig config;
  config.name = "quera-256";
  config.grid_side = 16;
  return config;
}

HardwareConfig HardwareConfig::atom_computing_1225() {
  HardwareConfig config;
  config.name = "atom-1225";
  config.grid_side = 35;
  return config;
}

}  // namespace parallax::hardware
