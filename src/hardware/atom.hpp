// Per-atom state tracked by the machine model. An atom is one logical qubit
// of the circuit being compiled; it is trapped either by the static SLM
// (at a grid site) or by the mobile AOD (at a row/column intersection).
#pragma once

#include <cstdint>

#include "geometry/point.hpp"

namespace parallax::hardware {

enum class TrapKind : std::uint8_t { kSlm, kAod };

struct Atom {
  geom::Point position;      // physical position (um)
  TrapKind trap = TrapKind::kSlm;
  geom::Cell slm_site{};     // valid while trap == kSlm (the home site)
  std::int32_t aod_row = -1;  // valid while trap == kAod
  std::int32_t aod_col = -1;

  [[nodiscard]] bool in_aod() const noexcept { return trap == TrapKind::kAod; }
};

}  // namespace parallax::hardware
