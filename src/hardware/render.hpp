// ASCII rendering of machine topologies — handy in examples, debugging
// sessions, and documentation. Renders the SLM site grid with atoms,
// distinguishing static (SLM) from mobile (AOD) qubits.
#pragma once

#include <string>
#include <vector>

#include "parallax/result.hpp"

namespace parallax::hardware {

struct RenderOptions {
  /// Print logical qubit indices (mod 10) instead of generic markers.
  bool show_indices = true;
  /// Marker for AOD-trapped qubits when show_indices is off.
  char aod_marker = 'A';
  /// Marker for SLM-trapped qubits when show_indices is off.
  char slm_marker = 'o';
  char empty_marker = '.';
};

/// Renders the discretized topology of a compile result: one character per
/// grid site; AOD qubits are bracketed, e.g. "[3]" vs " 3 ".
[[nodiscard]] std::string render_topology(
    const compiler::CompileResult& result, const RenderOptions& options = {});

}  // namespace parallax::hardware
