// The machine model: a set of atoms (one per logical qubit) over an SLM site
// grid plus an AOD. This is the mutable state the Parallax scheduler drives;
// it exposes primitive mutations and constraint predicates, while movement
// policy (recursive displacement, trap-change fallback) lives in
// src/parallax/movement.*.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/grid.hpp"
#include "hardware/aod.hpp"
#include "hardware/atom.hpp"
#include "hardware/config.hpp"
#include "placement/discretize.hpp"

namespace parallax::hardware {

class Machine {
 public:
  /// Builds the machine with every atom loaded into its SLM site per the
  /// discretized topology.
  Machine(const HardwareConfig& config,
          const placement::PhysicalTopology& topology);

  [[nodiscard]] const HardwareConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const geom::Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::int32_t n_qubits() const noexcept {
    return static_cast<std::int32_t>(atoms_.size());
  }
  [[nodiscard]] const Atom& atom(std::int32_t q) const {
    return atoms_[static_cast<std::size_t>(q)];
  }
  [[nodiscard]] geom::Point position(std::int32_t q) const {
    return atoms_[static_cast<std::size_t>(q)].position;
  }
  [[nodiscard]] Aod& aod() noexcept { return aod_; }
  [[nodiscard]] const Aod& aod() const noexcept { return aod_; }

  [[nodiscard]] double interaction_radius() const noexcept {
    return interaction_radius_um_;
  }
  [[nodiscard]] double blockade_radius() const noexcept {
    return blockade_radius_um_;
  }
  [[nodiscard]] bool within_interaction(std::int32_t a,
                                        std::int32_t b) const {
    return geom::distance(position(a), position(b)) <=
           interaction_radius_um_;
  }

  /// Lifts a (currently SLM) atom into the AOD at the given row/column pair.
  /// The lines are positioned at the atom's coordinates — callers must have
  /// resolved ordering conflicts first (see parallax::select_aod_qubits).
  void assign_to_aod(std::int32_t q, std::int32_t row, std::int32_t col);

  /// Primitive AOD move: repositions the atom and its two lines. No
  /// validation — the movement engine performs constraint resolution and
  /// uses the predicates below.
  void move_aod_atom(std::int32_t q, geom::Point target);

  /// Nearest other atom to `point`, excluding qubit `exclude` (and a second
  /// optional exclusion); returns {qubit, distance}.
  [[nodiscard]] std::pair<std::int32_t, double> nearest_atom(
      geom::Point point, std::int32_t exclude,
      std::int32_t exclude2 = -1) const;

  /// Any atom pair violating the minimum separation (O(n^2); for tests and
  /// debug assertions).
  [[nodiscard]] std::optional<std::pair<std::int32_t, std::int32_t>>
  separation_violation() const;

  /// True if placing an atom of qubit `q` at `point` keeps min separation
  /// against all other atoms.
  [[nodiscard]] bool placement_clear(std::int32_t q, geom::Point point,
                                     std::int32_t ignore = -1) const;

  /// Records current AOD line coordinates and atom positions as "home".
  void save_home();
  /// Restores every AOD atom to its home position; returns the maximum
  /// distance any atom travelled to get back (for the timing model).
  double return_all_home();
  /// Home position of an AOD atom (valid after save_home()).
  [[nodiscard]] geom::Point home_position(std::int32_t q) const;

 private:
  HardwareConfig config_;
  geom::Grid grid_;
  double interaction_radius_um_;
  double blockade_radius_um_;
  std::vector<Atom> atoms_;
  Aod aod_;
  std::vector<geom::Point> home_positions_;
  std::vector<double> home_row_coords_;
  std::vector<double> home_col_coords_;
};

}  // namespace parallax::hardware
