#include "hardware/aod.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace parallax::hardware {

Aod::Aod(std::int32_t n_rows, std::int32_t n_cols, double extent_um,
         double min_line_gap_um)
    : min_gap_(min_line_gap_um) {
  assert(n_rows > 0 && n_cols > 0);
  rows_.resize(static_cast<std::size_t>(n_rows));
  cols_.resize(static_cast<std::size_t>(n_cols));
  // Evenly spaced home coordinates (degenerate single-line case sits in the
  // middle of the field).
  auto spread = [extent_um](std::vector<Line>& lines) {
    const auto n = lines.size();
    for (std::size_t i = 0; i < n; ++i) {
      lines[i].coord = n == 1
                           ? extent_um / 2.0
                           : extent_um * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
    }
  };
  spread(rows_);
  spread(cols_);
}

std::optional<std::int32_t> Aod::closest_free(const std::vector<Line>& lines,
                                              double coord) const {
  std::optional<std::int32_t> best;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].qubit >= 0) continue;
    const double d = std::abs(lines[i].coord - coord);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::int32_t>(i);
    }
  }
  return best;
}

std::optional<std::int32_t> Aod::closest_free_row(double coord) const {
  return closest_free(rows_, coord);
}
std::optional<std::int32_t> Aod::closest_free_col(double coord) const {
  return closest_free(cols_, coord);
}

void Aod::assign(std::int32_t row, std::int32_t col, std::int32_t qubit) {
  auto& r = rows_[static_cast<std::size_t>(row)];
  auto& c = cols_[static_cast<std::size_t>(col)];
  assert(r.qubit < 0 && c.qubit < 0);
  r.qubit = qubit;
  c.qubit = qubit;
}

void Aod::release(std::int32_t row, std::int32_t col) {
  rows_[static_cast<std::size_t>(row)].qubit = -1;
  cols_[static_cast<std::size_t>(col)].qubit = -1;
}

bool Aod::move_valid(const std::vector<Line>& lines, std::int32_t index,
                     double coord) const {
  const auto i = static_cast<std::size_t>(index);
  if (i > 0 && coord < lines[i - 1].coord + min_gap_) return false;
  if (i + 1 < lines.size() && coord > lines[i + 1].coord - min_gap_) {
    return false;
  }
  return true;
}

bool Aod::row_move_valid(std::int32_t row, double coord) const {
  return move_valid(rows_, row, coord);
}
bool Aod::col_move_valid(std::int32_t col, double coord) const {
  return move_valid(cols_, col, coord);
}

void Aod::set_row_coord(std::int32_t row, double coord) {
  rows_[static_cast<std::size_t>(row)].coord = coord;
}
void Aod::set_col_coord(std::int32_t col, double coord) {
  cols_[static_cast<std::size_t>(col)].coord = coord;
}

std::optional<std::int32_t> Aod::order_blocker(const std::vector<Line>& lines,
                                               std::int32_t index,
                                               double coord) const {
  const auto i = static_cast<std::size_t>(index);
  // Report the nearer blocker first; the movement engine recurses on it.
  if (i > 0 && coord < lines[i - 1].coord + min_gap_) {
    return static_cast<std::int32_t>(i - 1);
  }
  if (i + 1 < lines.size() && coord > lines[i + 1].coord - min_gap_) {
    return static_cast<std::int32_t>(i + 1);
  }
  return std::nullopt;
}

std::optional<std::int32_t> Aod::row_order_blocker(std::int32_t row,
                                                   double coord) const {
  return order_blocker(rows_, row, coord);
}
std::optional<std::int32_t> Aod::col_order_blocker(std::int32_t col,
                                                   double coord) const {
  return order_blocker(cols_, col, coord);
}

bool Aod::ordering_valid() const {
  auto ordered = [this](const std::vector<Line>& lines) {
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].coord - lines[i - 1].coord < min_gap_ - 1e-9) return false;
    }
    return true;
  };
  return ordered(rows_) && ordered(cols_);
}

}  // namespace parallax::hardware
