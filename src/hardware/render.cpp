#include "hardware/render.hpp"

#include <algorithm>
#include <sstream>

namespace parallax::hardware {

std::string render_topology(const compiler::CompileResult& result,
                            const RenderOptions& options) {
  const auto& grid = result.topology.grid;
  const auto side = grid.side();

  // Clip the render to the used bounding box plus one cell of margin.
  std::int32_t min_col = side, min_row = side, max_col = 0, max_row = 0;
  for (const auto& cell : result.topology.sites) {
    min_col = std::min(min_col, cell.col);
    max_col = std::max(max_col, cell.col);
    min_row = std::min(min_row, cell.row);
    max_row = std::max(max_row, cell.row);
  }
  if (result.topology.sites.empty()) {
    min_col = min_row = 0;
    max_col = max_row = side - 1;
  }
  min_col = std::max(0, min_col - 1);
  min_row = std::max(0, min_row - 1);
  max_col = std::min(side - 1, max_col + 1);
  max_row = std::min(side - 1, max_row + 1);

  // Occupancy map: qubit index per cell (-1 = empty).
  std::vector<std::vector<std::int32_t>> at(
      static_cast<std::size_t>(side),
      std::vector<std::int32_t>(static_cast<std::size_t>(side), -1));
  for (std::size_t q = 0; q < result.topology.sites.size(); ++q) {
    const auto& cell = result.topology.sites[q];
    at[static_cast<std::size_t>(cell.row)][static_cast<std::size_t>(cell.col)] =
        static_cast<std::int32_t>(q);
  }

  std::ostringstream out;
  out << "machine " << side << "x" << side << " sites, pitch "
      << grid.pitch() << " um; interaction radius "
      << result.topology.interaction_radius_um << " um\n";
  out << "[q] = AOD (mobile) qubit,  q  = SLM (static) qubit\n";
  // Render top row last so y grows upward like the paper's figures.
  for (std::int32_t row = max_row; row >= min_row; --row) {
    for (std::int32_t col = min_col; col <= max_col; ++col) {
      const std::int32_t q =
          at[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      if (q < 0) {
        out << ' ' << options.empty_marker << ' ';
        continue;
      }
      const bool mobile =
          static_cast<std::size_t>(q) < result.in_aod.size() &&
          result.in_aod[static_cast<std::size_t>(q)] != 0;
      char label;
      if (options.show_indices) {
        label = static_cast<char>('0' + (q % 10));
      } else {
        label = mobile ? options.aod_marker : options.slm_marker;
      }
      if (mobile) {
        out << '[' << label << ']';
      } else {
        out << ' ' << label << ' ';
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace parallax::hardware
