// Hardware parameters (paper Table II) plus machine-geometry presets for the
// two evaluation systems: QuEra Aquila-like (256 atoms, 16x16) and Atom
// Computing-like (1,225 atoms, 35x35). All parameters are overridable so the
// simulator "can evolve alongside advancements in neutral atom hardware"
// (paper Sec. V).
#pragma once

#include <cstdint>
#include <string>

namespace parallax::hardware {

struct HardwareConfig {
  std::string name = "custom";

  // --- geometry -------------------------------------------------------------
  /// Square SLM site grid: side x side sites.
  std::int32_t grid_side = 16;
  /// Minimum separation distance between any two atoms (um).
  double min_separation_um = 2.0;
  /// Extra padding added to the discretization pitch so AOD atoms can
  /// navigate between static SLM atoms (paper Sec. II-A).
  double discretization_padding_um = 1.0;
  /// Number of AOD rows and columns (paper default: 20; ablated in Fig. 13).
  std::int32_t aod_rows = 20;
  std::int32_t aod_cols = 20;

  // --- timing (us) ------------------------------------------------------------
  double u3_time_us = 2.0;
  double cz_time_us = 0.8;
  /// SWAP = 3 CZ executed back-to-back (baselines only).
  double swap_time_us = 2.4;
  double trap_switch_time_us = 100.0;
  /// AOD movement speed (um/us).
  double aod_speed_um_per_us = 55.0;

  // --- error rates (probabilities) --------------------------------------------
  double u3_error = 0.000127;
  double cz_error = 0.0048;
  double swap_error = 0.0143;
  double trap_switch_error = 0.001;   // <0.1% per the paper (Sec. IV)
  double movement_loss = 0.001;       // <0.1% atom loss per move
  double atom_loss_rate = 0.007;      // background loss per physical shot
  double readout_error = 0.05;

  // --- coherence (seconds) -----------------------------------------------------
  double t1_seconds = 4.0;
  double t2_seconds = 1.49;

  // --- derived -----------------------------------------------------------------
  [[nodiscard]] std::int32_t n_atoms() const noexcept {
    return grid_side * grid_side;
  }
  /// Discretization pitch: twice the minimum separation plus padding, which
  /// guarantees the separation constraint for static atoms and leaves room
  /// for a mobile atom to pass between any two of them.
  [[nodiscard]] double pitch_um() const noexcept {
    return 2.0 * min_separation_um + discretization_padding_um;
  }
  /// Physical side length of the site grid (um).
  [[nodiscard]] double extent_um() const noexcept {
    return (grid_side - 1) * pitch_um();
  }

  /// QuEra Aquila-like 256-qubit system, 16x16 sites (paper main results).
  [[nodiscard]] static HardwareConfig quera_aquila_256();
  /// Atom Computing-like 1,225-qubit system, 35x35 sites (paper scaling
  /// results).
  [[nodiscard]] static HardwareConfig atom_computing_1225();
};

}  // namespace parallax::hardware
