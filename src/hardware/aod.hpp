// The acousto-optic deflector: a crossed array of `rows` horizontal and
// `cols` vertical trap lines. Hardware constraints (paper Sec. I-A):
//   (1) lines of the same orientation can never cross (relative order of
//       coordinates is invariant),
//   (2) all traps on a line move in tandem (Parallax sidesteps this by
//       placing at most one atom per row/column pair),
//   (3) atoms obey the global minimum separation distance.
// The Aod class owns line coordinates and occupancy; constraint (1) is
// enforced by every mutation, (3) by the Machine that sees all atoms.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace parallax::hardware {

class Aod {
 public:
  /// Lines are created unassigned with evenly spaced home coordinates over
  /// [0, extent_um].
  Aod(std::int32_t n_rows, std::int32_t n_cols, double extent_um,
      double min_line_gap_um);

  [[nodiscard]] std::int32_t n_rows() const noexcept {
    return static_cast<std::int32_t>(rows_.size());
  }
  [[nodiscard]] std::int32_t n_cols() const noexcept {
    return static_cast<std::int32_t>(cols_.size());
  }
  [[nodiscard]] double min_line_gap() const noexcept { return min_gap_; }

  [[nodiscard]] double row_coord(std::int32_t row) const {
    return rows_[static_cast<std::size_t>(row)].coord;
  }
  [[nodiscard]] double col_coord(std::int32_t col) const {
    return cols_[static_cast<std::size_t>(col)].coord;
  }
  [[nodiscard]] std::int32_t row_qubit(std::int32_t row) const {
    return rows_[static_cast<std::size_t>(row)].qubit;
  }
  [[nodiscard]] std::int32_t col_qubit(std::int32_t col) const {
    return cols_[static_cast<std::size_t>(col)].qubit;
  }

  /// First unoccupied row/column, preferring the one whose current
  /// coordinate is closest to `coord`.
  [[nodiscard]] std::optional<std::int32_t> closest_free_row(
      double coord) const;
  [[nodiscard]] std::optional<std::int32_t> closest_free_col(
      double coord) const;

  /// Assigns a qubit to a (row, col) pair. Both must be free.
  void assign(std::int32_t row, std::int32_t col, std::int32_t qubit);
  /// Releases the pair holding `qubit` (row and col become free).
  void release(std::int32_t row, std::int32_t col);

  /// Whether moving `row` to `coord` keeps strict ordering with a gap of
  /// min_line_gap against both neighbours.
  [[nodiscard]] bool row_move_valid(std::int32_t row, double coord) const;
  [[nodiscard]] bool col_move_valid(std::int32_t col, double coord) const;

  /// Unchecked coordinate write (caller must have validated or be resolving
  /// a violation recursively; the class asserts ordering in debug builds).
  void set_row_coord(std::int32_t row, double coord);
  void set_col_coord(std::int32_t col, double coord);

  /// Neighbour line that would block `row` from reaching `coord`, if any.
  /// Returns the neighbour index; the caller decides whether to displace it
  /// recursively (Parallax movement engine) or give up (trap change).
  [[nodiscard]] std::optional<std::int32_t> row_order_blocker(
      std::int32_t row, double coord) const;
  [[nodiscard]] std::optional<std::int32_t> col_order_blocker(
      std::int32_t col, double coord) const;

  /// True if all row coordinates and all column coordinates are strictly
  /// increasing with the required gap (the non-crossing invariant).
  [[nodiscard]] bool ordering_valid() const;

 private:
  struct Line {
    double coord = 0.0;
    std::int32_t qubit = -1;  // -1 = free
  };

  [[nodiscard]] std::optional<std::int32_t> closest_free(
      const std::vector<Line>& lines, double coord) const;
  [[nodiscard]] bool move_valid(const std::vector<Line>& lines,
                                std::int32_t index, double coord) const;
  [[nodiscard]] std::optional<std::int32_t> order_blocker(
      const std::vector<Line>& lines, std::int32_t index, double coord) const;

  std::vector<Line> rows_;  // indexed south-to-north; coord = y
  std::vector<Line> cols_;  // indexed west-to-east; coord = x
  double min_gap_;
};

}  // namespace parallax::hardware
