#include "hardware/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace parallax::hardware {

namespace {
/// AOD lines need some slack to slot between each other; use the smaller of
/// the atom separation constraint and half the initial line spacing so that
/// even dense AOD configurations (Fig. 13's 40-line ablation) stay feasible.
double line_gap(const HardwareConfig& config) {
  const double extent = std::max(config.extent_um(), 1.0);
  const auto max_lines = std::max(config.aod_rows, config.aod_cols);
  const double spacing = extent / std::max(1, max_lines - 1);
  return std::min(config.min_separation_um, spacing / 2.0);
}
}  // namespace

Machine::Machine(const HardwareConfig& config,
                 const placement::PhysicalTopology& topology)
    : config_(config),
      grid_(topology.grid),
      interaction_radius_um_(topology.interaction_radius_um),
      blockade_radius_um_(topology.blockade_radius_um),
      aod_(config.aod_rows, config.aod_cols, config.extent_um(),
           line_gap(config)) {
  atoms_.resize(topology.sites.size());
  for (std::size_t q = 0; q < topology.sites.size(); ++q) {
    Atom& a = atoms_[q];
    a.trap = TrapKind::kSlm;
    a.slm_site = topology.sites[q];
    a.position = grid_.position(a.slm_site);
  }
}

void Machine::assign_to_aod(std::int32_t q, std::int32_t row,
                            std::int32_t col) {
  Atom& a = atoms_[static_cast<std::size_t>(q)];
  assert(!a.in_aod());
  aod_.assign(row, col, q);
  a.trap = TrapKind::kAod;
  a.aod_row = row;
  a.aod_col = col;
  // Lines meet at the atom; callers position them beforehand if the atom's
  // own coordinates would break line ordering.
  aod_.set_row_coord(row, a.position.y);
  aod_.set_col_coord(col, a.position.x);
}

void Machine::move_aod_atom(std::int32_t q, geom::Point target) {
  Atom& a = atoms_[static_cast<std::size_t>(q)];
  assert(a.in_aod());
  aod_.set_row_coord(a.aod_row, target.y);
  aod_.set_col_coord(a.aod_col, target.x);
  a.position = target;
}

std::pair<std::int32_t, double> Machine::nearest_atom(
    geom::Point point, std::int32_t exclude, std::int32_t exclude2) const {
  std::int32_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::int32_t q = 0; q < n_qubits(); ++q) {
    if (q == exclude || q == exclude2) continue;
    const double d = geom::distance(position(q), point);
    if (d < best_d) {
      best_d = d;
      best = q;
    }
  }
  return {best, best_d};
}

std::optional<std::pair<std::int32_t, std::int32_t>>
Machine::separation_violation() const {
  for (std::int32_t a = 0; a < n_qubits(); ++a) {
    for (std::int32_t b = a + 1; b < n_qubits(); ++b) {
      if (geom::distance(position(a), position(b)) <
          config_.min_separation_um - 1e-9) {
        return std::make_pair(a, b);
      }
    }
  }
  return std::nullopt;
}

bool Machine::placement_clear(std::int32_t q, geom::Point point,
                              std::int32_t ignore) const {
  for (std::int32_t other = 0; other < n_qubits(); ++other) {
    if (other == q || other == ignore) continue;
    if (geom::distance(position(other), point) <
        config_.min_separation_um - 1e-9) {
      return false;
    }
  }
  return true;
}

void Machine::save_home() {
  home_positions_.resize(atoms_.size());
  for (std::size_t q = 0; q < atoms_.size(); ++q) {
    home_positions_[q] = atoms_[q].position;
  }
  home_row_coords_.resize(static_cast<std::size_t>(aod_.n_rows()));
  for (std::int32_t r = 0; r < aod_.n_rows(); ++r) {
    home_row_coords_[static_cast<std::size_t>(r)] = aod_.row_coord(r);
  }
  home_col_coords_.resize(static_cast<std::size_t>(aod_.n_cols()));
  for (std::int32_t c = 0; c < aod_.n_cols(); ++c) {
    home_col_coords_[static_cast<std::size_t>(c)] = aod_.col_coord(c);
  }
}

double Machine::return_all_home() {
  assert(!home_positions_.empty());
  double max_distance = 0.0;
  for (std::size_t q = 0; q < atoms_.size(); ++q) {
    Atom& a = atoms_[q];
    if (!a.in_aod()) continue;
    const double d = geom::distance(a.position, home_positions_[q]);
    max_distance = std::max(max_distance, d);
    a.position = home_positions_[q];
  }
  for (std::int32_t r = 0; r < aod_.n_rows(); ++r) {
    aod_.set_row_coord(r, home_row_coords_[static_cast<std::size_t>(r)]);
  }
  for (std::int32_t c = 0; c < aod_.n_cols(); ++c) {
    aod_.set_col_coord(c, home_col_coords_[static_cast<std::size_t>(c)]);
  }
  return max_distance;
}

geom::Point Machine::home_position(std::int32_t q) const {
  return home_positions_[static_cast<std::size_t>(q)];
}

}  // namespace parallax::hardware
