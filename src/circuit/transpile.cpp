#include "circuit/transpile.hpp"

#include <algorithm>
#include <cassert>
#include <numbers>
#include <optional>
#include <vector>

#include "circuit/unitary.hpp"

namespace parallax::circuit {

namespace {
constexpr double kPi = std::numbers::pi;

/// Appends CX(control, target) in the {U3, CZ} basis.
void emit_cx(std::vector<Gate>& out, std::int32_t control,
             std::int32_t target) {
  out.push_back(Gate::u3(target, kPi / 2, 0.0, kPi));  // H
  out.push_back(Gate::cz(control, target));
  out.push_back(Gate::u3(target, kPi / 2, 0.0, kPi));  // H
}
}  // namespace

bool expand_swaps(Circuit& circuit) {
  if (circuit.swap_count() == 0) return false;
  std::vector<Gate> out;
  out.reserve(circuit.size() + 8 * circuit.swap_count());
  for (const Gate& g : circuit.gates()) {
    if (g.type != GateType::kSwap) {
      out.push_back(g);
      continue;
    }
    // SWAP(a,b) = CX(a,b) CX(b,a) CX(a,b).
    emit_cx(out, g.q[0], g.q[1]);
    emit_cx(out, g.q[1], g.q[0]);
    emit_cx(out, g.q[0], g.q[1]);
  }
  circuit.replace_gates(std::move(out));
  return true;
}

bool fuse_single_qubit_runs(Circuit& circuit, double identity_tolerance,
                            bool drop_identities) {
  // For each qubit we accumulate the pending single-qubit unitary. A pending
  // unitary is flushed (emitted as one U3) immediately before any
  // non-single-qubit event on that qubit, preserving per-qubit gate order.
  const auto nq = static_cast<std::size_t>(circuit.n_qubits());
  std::vector<std::optional<Mat2>> pending(nq);
  std::vector<Gate> out;
  out.reserve(circuit.size());
  bool changed = false;

  auto flush = [&](std::int32_t qubit) {
    auto& p = pending[static_cast<std::size_t>(qubit)];
    if (!p) return;
    if (drop_identities && is_identity_up_to_phase(*p, identity_tolerance)) {
      changed = true;  // at least one gate disappeared
      p.reset();
      return;
    }
    const Euler e = zyz_decompose(*p);
    out.push_back(Gate::u3(qubit, e.theta, e.phi, e.lambda));
    p.reset();
  };

  for (const Gate& g : circuit.gates()) {
    switch (g.type) {
      case GateType::kU3: {
        auto& p = pending[static_cast<std::size_t>(g.q[0])];
        const Mat2 m = u3_matrix(g.theta, g.phi, g.lambda);
        if (p) {
          *p = m * *p;  // later gate multiplies from the left
          changed = true;
        } else {
          p = m;
        }
        break;
      }
      case GateType::kCZ:
      case GateType::kSwap: {
        flush(g.q[0]);
        flush(g.q[1]);
        out.push_back(g);
        break;
      }
      case GateType::kMeasure: {
        flush(g.q[0]);
        out.push_back(g);
        break;
      }
      case GateType::kBarrier: {
        for (std::int32_t q = 0; q < circuit.n_qubits(); ++q) flush(q);
        out.push_back(g);
        break;
      }
    }
  }
  for (std::int32_t q = 0; q < circuit.n_qubits(); ++q) flush(q);

  if (!changed) return false;
  circuit.replace_gates(std::move(out));
  return true;
}

bool cancel_adjacent_cz(Circuit& circuit) {
  // last_cz[q] = index in `out` of the most recent CZ touching q, valid only
  // while no other gate has touched q since. Two CZs on the same unordered
  // pair with no interposed gate on either qubit are the identity.
  const auto nq = static_cast<std::size_t>(circuit.n_qubits());
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> last_cz(nq, kNone);
  std::vector<Gate> out;
  out.reserve(circuit.size());
  std::vector<char> erased;  // parallel to `out`
  bool changed = false;

  auto invalidate = [&](std::int32_t q) {
    last_cz[static_cast<std::size_t>(q)] = kNone;
  };

  for (const Gate& g : circuit.gates()) {
    if (g.type == GateType::kCZ) {
      const auto a = static_cast<std::size_t>(std::min(g.q[0], g.q[1]));
      const auto b = static_cast<std::size_t>(std::max(g.q[0], g.q[1]));
      const std::size_t prev = last_cz[a];
      if (prev != kNone && prev == last_cz[b] && !erased[prev]) {
        const Gate& pg = out[prev];
        const auto pa = static_cast<std::size_t>(std::min(pg.q[0], pg.q[1]));
        const auto pb = static_cast<std::size_t>(std::max(pg.q[0], pg.q[1]));
        if (pa == a && pb == b) {
          erased[prev] = 1;
          last_cz[a] = kNone;
          last_cz[b] = kNone;
          changed = true;
          continue;  // drop this CZ too
        }
      }
      out.push_back(g);
      erased.push_back(0);
      last_cz[a] = out.size() - 1;
      last_cz[b] = out.size() - 1;
      continue;
    }
    if (g.type == GateType::kBarrier) {
      std::fill(last_cz.begin(), last_cz.end(), kNone);
    } else {
      for (int k = 0; k < g.arity(); ++k) invalidate(g.q[k]);
    }
    out.push_back(g);
    erased.push_back(0);
  }

  if (!changed) return false;
  std::vector<Gate> compact;
  compact.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!erased[i]) compact.push_back(out[i]);
  }
  circuit.replace_gates(std::move(compact));
  return true;
}

Circuit transpile(const Circuit& input, const TranspileOptions& options) {
  Circuit circuit = input;
  expand_swaps(circuit);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    if (options.fuse_single_qubit) {
      changed |= fuse_single_qubit_runs(circuit, options.identity_tolerance,
                                        options.drop_identities);
    }
    if (options.cancel_cz_pairs) {
      changed |= cancel_adjacent_cz(circuit);
    }
    if (!changed) break;
  }
  return circuit;
}

}  // namespace parallax::circuit
