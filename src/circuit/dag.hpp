// Per-qubit dependency tracking over a circuit's gate list. This is the
// structure Algorithm 1 (the Parallax scheduler) iterates: a gate is ready
// when it is the next unexecuted gate on every qubit it touches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"

namespace parallax::circuit {

class DependencyTracker {
 public:
  explicit DependencyTracker(const Circuit& circuit);

  /// Index (into circuit.gates()) of the next unexecuted gate on `qubit`,
  /// or nullopt if the qubit has no gates left.
  [[nodiscard]] std::optional<std::size_t> next_gate(std::int32_t qubit) const;

  /// A gate is ready iff it is the head of every involved qubit's queue.
  [[nodiscard]] bool is_ready(std::size_t gate_index) const;

  /// Marks a ready gate executed and advances the involved qubits' cursors.
  /// Precondition: is_ready(gate_index).
  void mark_executed(std::size_t gate_index);

  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }

  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }

 private:
  const Circuit* circuit_;
  // per_qubit_[q] = ordered gate indices touching q; cursor_[q] = position of
  // the next unexecuted one.
  std::vector<std::vector<std::size_t>> per_qubit_;
  std::vector<std::size_t> cursor_;
  std::size_t remaining_ = 0;
};

/// ASAP layering of a circuit: gates grouped by dependency level only
/// (ignores hardware constraints). Used for depth statistics, tests, and as
/// the baseline layering the routers refine.
[[nodiscard]] std::vector<std::vector<std::size_t>> asap_layers(
    const Circuit& circuit);

}  // namespace parallax::circuit
