// Gate representation in the {U3, CZ} universal basis the paper targets.
// SWAP is representable so that baseline routers (ELDI / GRAPHINE) can count
// inserted SWAPs; the Parallax compiler itself never emits one.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace parallax::circuit {

enum class GateType : std::uint8_t {
  kU3,       // arbitrary single-qubit rotation (theta, phi, lambda)
  kCZ,       // two-qubit controlled-Z
  kSwap,     // two-qubit SWAP (= 3 CZ + single-qubit gates); baselines only
  kMeasure,  // terminal measurement on one qubit
  kBarrier,  // scheduling barrier across all qubits
};

[[nodiscard]] std::string to_string(GateType type);

struct Gate {
  GateType type = GateType::kU3;
  // q[1] < 0 for single-qubit gates and barriers.
  std::array<std::int32_t, 2> q{-1, -1};
  // U3 Euler angles; unused for other gate types.
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;

  [[nodiscard]] static Gate u3(std::int32_t qubit, double theta, double phi,
                               double lambda) noexcept {
    return Gate{GateType::kU3, {qubit, -1}, theta, phi, lambda};
  }
  [[nodiscard]] static Gate cz(std::int32_t a, std::int32_t b) noexcept {
    return Gate{GateType::kCZ, {a, b}, 0.0, 0.0, 0.0};
  }
  [[nodiscard]] static Gate swap(std::int32_t a, std::int32_t b) noexcept {
    return Gate{GateType::kSwap, {a, b}, 0.0, 0.0, 0.0};
  }
  [[nodiscard]] static Gate measure(std::int32_t qubit) noexcept {
    return Gate{GateType::kMeasure, {qubit, -1}, 0.0, 0.0, 0.0};
  }
  [[nodiscard]] static Gate barrier() noexcept {
    return Gate{GateType::kBarrier, {-1, -1}, 0.0, 0.0, 0.0};
  }

  [[nodiscard]] int arity() const noexcept {
    if (type == GateType::kBarrier) return 0;
    return q[1] >= 0 ? 2 : 1;
  }
  [[nodiscard]] bool is_two_qubit() const noexcept { return arity() == 2; }
  [[nodiscard]] bool touches(std::int32_t qubit) const noexcept {
    return q[0] == qubit || q[1] == qubit;
  }
  /// The partner of `qubit` in a two-qubit gate.
  [[nodiscard]] std::int32_t other(std::int32_t qubit) const noexcept {
    return q[0] == qubit ? q[1] : q[0];
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace parallax::circuit
