#include "circuit/circuit.hpp"

#include <algorithm>
#include <numbers>
#include <stdexcept>

namespace parallax::circuit {

namespace {
constexpr double kPi = std::numbers::pi;
}

Circuit::Circuit(std::int32_t n_qubits, std::string name)
    : n_qubits_(n_qubits), name_(std::move(name)) {
  if (n_qubits < 0) throw std::invalid_argument("negative qubit count");
}

void Circuit::append(const Gate& g) {
  for (int i = 0; i < g.arity(); ++i) {
    if (g.q[i] < 0 || g.q[i] >= n_qubits_) {
      throw std::out_of_range("gate qubit index out of range: " +
                              g.to_string());
    }
  }
  if (g.arity() == 2 && g.q[0] == g.q[1]) {
    throw std::invalid_argument("two-qubit gate on identical qubits: " +
                                g.to_string());
  }
  gates_.push_back(g);
}

void Circuit::u3(std::int32_t q, double theta, double phi, double lambda) {
  append(Gate::u3(q, theta, phi, lambda));
}
void Circuit::cz(std::int32_t a, std::int32_t b) { append(Gate::cz(a, b)); }
void Circuit::swap(std::int32_t a, std::int32_t b) {
  append(Gate::swap(a, b));
}
void Circuit::measure(std::int32_t q) { append(Gate::measure(q)); }
void Circuit::barrier() { gates_.push_back(Gate::barrier()); }

void Circuit::h(std::int32_t q) { u3(q, kPi / 2, 0.0, kPi); }
void Circuit::x(std::int32_t q) { u3(q, kPi, 0.0, kPi); }
void Circuit::y(std::int32_t q) { u3(q, kPi, kPi / 2, kPi / 2); }
void Circuit::z(std::int32_t q) { u3(q, 0.0, 0.0, kPi); }
void Circuit::s(std::int32_t q) { u3(q, 0.0, 0.0, kPi / 2); }
void Circuit::sdg(std::int32_t q) { u3(q, 0.0, 0.0, -kPi / 2); }
void Circuit::t(std::int32_t q) { u3(q, 0.0, 0.0, kPi / 4); }
void Circuit::tdg(std::int32_t q) { u3(q, 0.0, 0.0, -kPi / 4); }
void Circuit::rx(std::int32_t q, double angle) {
  u3(q, angle, -kPi / 2, kPi / 2);
}
void Circuit::ry(std::int32_t q, double angle) { u3(q, angle, 0.0, 0.0); }
void Circuit::rz(std::int32_t q, double angle) { u3(q, 0.0, 0.0, angle); }

void Circuit::cx(std::int32_t control, std::int32_t target) {
  // CX = (I x H) CZ (I x H).
  h(target);
  cz(control, target);
  h(target);
}

void Circuit::cp(std::int32_t a, std::int32_t b, double angle) {
  // Controlled-phase decomposed into CZ + single-qubit rotations:
  // CP(t) = Rz(t/2) x Rz(t/2) . CX . (I x Rz(-t/2)) . CX, with CX in the CZ
  // basis. This uses 2 CZs; for t == pi it is a plain CZ.
  if (angle == kPi) {
    cz(a, b);
    return;
  }
  rz(a, angle / 2);
  cx(a, b);
  rz(b, -angle / 2);
  cx(a, b);
  rz(b, angle / 2);
}

void Circuit::rzz(std::int32_t a, std::int32_t b, double angle) {
  cx(a, b);
  rz(b, angle);
  cx(a, b);
}

void Circuit::ccx(std::int32_t c0, std::int32_t c1, std::int32_t target) {
  // Standard 6-CX Toffoli decomposition (Nielsen & Chuang Fig. 4.9).
  h(target);
  cx(c1, target);
  tdg(target);
  cx(c0, target);
  t(target);
  cx(c1, target);
  tdg(target);
  cx(c0, target);
  t(c1);
  t(target);
  h(target);
  cx(c0, c1);
  t(c0);
  tdg(c1);
  cx(c0, c1);
}

void Circuit::ccz(std::int32_t a, std::int32_t b, std::int32_t c) {
  // CCZ = (I x I x H) CCX (I x I x H).
  h(c);
  ccx(a, b, c);
  h(c);
}

void Circuit::cswap(std::int32_t control, std::int32_t a, std::int32_t b) {
  // Fredkin via CX + Toffoli sandwich.
  cx(b, a);
  ccx(control, a, b);
  cx(b, a);
}

void Circuit::measure_all() {
  for (std::int32_t q = 0; q < n_qubits_; ++q) measure(q);
}

std::size_t Circuit::count(GateType type) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [type](const Gate& g) { return g.type == type; }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(static_cast<std::size_t>(n_qubits_), 0);
  std::size_t max_level = 0;
  for (const Gate& g : gates_) {
    if (g.type == GateType::kBarrier) {
      std::fill(level.begin(), level.end(), max_level);
      continue;
    }
    std::size_t start = 0;
    for (int i = 0; i < g.arity(); ++i) {
      start = std::max(start, level[static_cast<std::size_t>(g.q[i])]);
    }
    const std::size_t end = start + 1;
    for (int i = 0; i < g.arity(); ++i) {
      level[static_cast<std::size_t>(g.q[i])] = end;
    }
    max_level = std::max(max_level, end);
  }
  return max_level;
}

void Circuit::replace_gates(std::vector<Gate> gates) {
  gates_ = std::move(gates);
}

}  // namespace parallax::circuit
