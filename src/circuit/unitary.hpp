// Complex 2x2 unitary algebra used by the transpiler's single-qubit gate
// fusion: consecutive U3 gates on a qubit multiply into one matrix that is
// re-synthesized to a single U3 via ZYZ (Euler) decomposition.
#pragma once

#include <array>
#include <complex>

namespace parallax::circuit {

using Complex = std::complex<double>;

/// Row-major 2x2 complex matrix.
struct Mat2 {
  std::array<Complex, 4> m{};  // [ m00 m01 ; m10 m11 ]

  [[nodiscard]] static Mat2 identity() noexcept {
    return Mat2{{Complex{1, 0}, {}, {}, Complex{1, 0}}};
  }

  friend Mat2 operator*(const Mat2& a, const Mat2& b) noexcept {
    Mat2 r;
    r.m[0] = a.m[0] * b.m[0] + a.m[1] * b.m[2];
    r.m[1] = a.m[0] * b.m[1] + a.m[1] * b.m[3];
    r.m[2] = a.m[2] * b.m[0] + a.m[3] * b.m[2];
    r.m[3] = a.m[2] * b.m[1] + a.m[3] * b.m[3];
    return r;
  }
};

/// The paper's U3 convention (identical to the OpenQASM/Qiskit u3 gate):
///   U3(t, p, l) = [[cos(t/2),        -e^{il} sin(t/2)],
///                  [e^{ip} sin(t/2),  e^{i(p+l)} cos(t/2)]]
[[nodiscard]] Mat2 u3_matrix(double theta, double phi, double lambda) noexcept;

/// ZYZ decomposition: finds (theta, phi, lambda, phase) such that
/// U = e^{i*phase} * U3(theta, phi, lambda) for any unitary U.
struct Euler {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
  double phase = 0.0;
};
[[nodiscard]] Euler zyz_decompose(const Mat2& u) noexcept;

/// Frobenius distance between two matrices up to global phase; 0 for
/// equivalent unitaries. Used by tests and the fusion identity check.
[[nodiscard]] double distance_up_to_phase(const Mat2& a,
                                          const Mat2& b) noexcept;

/// True if U equals the identity up to global phase within `tol`.
[[nodiscard]] bool is_identity_up_to_phase(const Mat2& u,
                                           double tol = 1e-9) noexcept;

}  // namespace parallax::circuit
