// Transpiler passes standing in for Qiskit's optimization-level-3 transpile:
// every input circuit is reduced to the {U3, CZ} basis and simplified before
// any compilation technique (Parallax, ELDI, GRAPHINE) sees it. All three
// techniques consume the same transpiled circuit, mirroring the paper's
// methodology (Sec. III, "Experimental Framework").
#pragma once

#include "circuit/circuit.hpp"

namespace parallax::circuit {

struct TranspileOptions {
  /// Merge runs of single-qubit gates into one U3 via unitary multiplication
  /// + ZYZ re-synthesis.
  bool fuse_single_qubit = true;
  /// Cancel adjacent CZ pairs on the same qubit pair.
  bool cancel_cz_pairs = true;
  /// Drop U3 gates that are the identity up to global phase.
  bool drop_identities = true;
  /// Angle tolerance below which a fused unitary counts as identity.
  double identity_tolerance = 1e-9;
  /// Iterate passes until no pass changes the circuit.
  int max_iterations = 16;
};

/// Runs the pass pipeline and returns the optimized circuit. Barriers and
/// measurements are preserved in place. SWAP gates (if present) are expanded
/// to 3 CX = 3 CZ + 1q gates first, so the output contains only U3/CZ/
/// measure/barrier.
[[nodiscard]] Circuit transpile(const Circuit& input,
                                const TranspileOptions& options = {});

/// Individual passes (exposed for tests). Each returns true if it changed
/// the circuit.
bool expand_swaps(Circuit& circuit);
bool fuse_single_qubit_runs(Circuit& circuit, double identity_tolerance,
                            bool drop_identities);
bool cancel_adjacent_cz(Circuit& circuit);

}  // namespace parallax::circuit
