#include "circuit/interaction_graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace parallax::circuit {

InteractionGraph::InteractionGraph(const Circuit& circuit) {
  InteractionGraphBuilder builder;
  for (const Gate& g : circuit.gates()) builder.add_gate(g);
  *this = builder.build(circuit.n_qubits());
}

void InteractionGraphBuilder::add_gate(const Gate& gate) {
  if (!gate.is_two_qubit()) return;
  add_pair(gate.q[0], gate.q[1]);
}

void InteractionGraphBuilder::add_pair(std::int32_t a, std::int32_t b) {
  add_weighted(a, b, 1);
}

void InteractionGraphBuilder::add_weighted(std::int32_t a, std::int32_t b,
                                           std::int64_t weight) {
  weights_[{std::min(a, b), std::max(a, b)}] += weight;
  n_interactions_ += weight;
}

InteractionGraph InteractionGraphBuilder::build(std::int32_t n_qubits) {
  InteractionGraph graph;
  graph.n_qubits_ = n_qubits;
  graph.adjacency_.resize(static_cast<std::size_t>(n_qubits));
  graph.weighted_degree_.assign(static_cast<std::size_t>(n_qubits), 0);
  graph.edges_.reserve(weights_.size());
  for (const auto& [key, w] : weights_) {
    const auto [a, b] = key;
    graph.edges_.push_back({a, b, w});
    graph.adjacency_[static_cast<std::size_t>(a)].push_back(b);
    if (b != a) graph.adjacency_[static_cast<std::size_t>(b)].push_back(a);
    // A degenerate pair (a == b) still counts twice toward the weighted
    // degree, matching per-gate accumulation over the full gate list.
    graph.weighted_degree_[static_cast<std::size_t>(a)] += w;
    graph.weighted_degree_[static_cast<std::size_t>(b)] += w;
  }
  weights_.clear();
  n_interactions_ = 0;
  return graph;
}

std::int64_t InteractionGraph::degree(std::int32_t qubit) const {
  return weighted_degree_[static_cast<std::size_t>(qubit)];
}

std::int32_t InteractionGraph::partner_count(std::int32_t qubit) const {
  return static_cast<std::int32_t>(
      adjacency_[static_cast<std::size_t>(qubit)].size());
}

bool InteractionGraph::connected_over_active() const {
  std::vector<std::int32_t> active;
  for (std::int32_t q = 0; q < n_qubits_; ++q) {
    if (!adjacency_[static_cast<std::size_t>(q)].empty()) active.push_back(q);
  }
  if (active.size() <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n_qubits_), 0);
  std::vector<std::int32_t> stack{active.front()};
  seen[static_cast<std::size_t>(active.front())] = 1;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::int32_t q = stack.back();
    stack.pop_back();
    ++visited;
    for (std::int32_t nb : adjacency_[static_cast<std::size_t>(q)]) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = 1;
        stack.push_back(nb);
      }
    }
  }
  return visited == active.size();
}

double InteractionGraph::mean_connectivity() const {
  std::int64_t total = 0;
  std::int32_t active = 0;
  for (std::int32_t q = 0; q < n_qubits_; ++q) {
    const auto partners = partner_count(q);
    if (partners > 0) {
      total += partners;
      ++active;
    }
  }
  return active == 0 ? 0.0 : static_cast<double>(total) / active;
}

}  // namespace parallax::circuit
