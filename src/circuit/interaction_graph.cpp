#include "circuit/interaction_graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace parallax::circuit {

InteractionGraph::InteractionGraph(const Circuit& circuit)
    : n_qubits_(circuit.n_qubits()),
      adjacency_(static_cast<std::size_t>(circuit.n_qubits())),
      weighted_degree_(static_cast<std::size_t>(circuit.n_qubits()), 0) {
  std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> weights;
  for (const Gate& g : circuit.gates()) {
    if (!g.is_two_qubit()) continue;
    const auto a = std::min(g.q[0], g.q[1]);
    const auto b = std::max(g.q[0], g.q[1]);
    ++weights[{a, b}];
    ++weighted_degree_[static_cast<std::size_t>(g.q[0])];
    ++weighted_degree_[static_cast<std::size_t>(g.q[1])];
  }
  edges_.reserve(weights.size());
  for (const auto& [key, w] : weights) {
    edges_.push_back({key.first, key.second, w});
    adjacency_[static_cast<std::size_t>(key.first)].push_back(key.second);
    adjacency_[static_cast<std::size_t>(key.second)].push_back(key.first);
  }
}

std::int64_t InteractionGraph::degree(std::int32_t qubit) const {
  return weighted_degree_[static_cast<std::size_t>(qubit)];
}

std::int32_t InteractionGraph::partner_count(std::int32_t qubit) const {
  return static_cast<std::int32_t>(
      adjacency_[static_cast<std::size_t>(qubit)].size());
}

bool InteractionGraph::connected_over_active() const {
  std::vector<std::int32_t> active;
  for (std::int32_t q = 0; q < n_qubits_; ++q) {
    if (!adjacency_[static_cast<std::size_t>(q)].empty()) active.push_back(q);
  }
  if (active.size() <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n_qubits_), 0);
  std::vector<std::int32_t> stack{active.front()};
  seen[static_cast<std::size_t>(active.front())] = 1;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::int32_t q = stack.back();
    stack.pop_back();
    ++visited;
    for (std::int32_t nb : adjacency_[static_cast<std::size_t>(q)]) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = 1;
        stack.push_back(nb);
      }
    }
  }
  return visited == active.size();
}

double InteractionGraph::mean_connectivity() const {
  std::int64_t total = 0;
  std::int32_t active = 0;
  for (std::int32_t q = 0; q < n_qubits_; ++q) {
    const auto partners = partner_count(q);
    if (partners > 0) {
      total += partners;
      ++active;
    }
  }
  return active == 0 ? 0.0 : static_cast<double>(total) / active;
}

}  // namespace parallax::circuit
