// Weighted qubit interaction graph: nodes are qubits, edge weight (i, j) is
// the number of two-qubit gates between i and j. This is the input to
// Graphine's annealed placement and to the AOD selection heuristic.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace parallax::circuit {

struct WeightedEdge {
  std::int32_t a = 0;
  std::int32_t b = 0;  // invariant: a < b
  std::int64_t weight = 0;
};

class InteractionGraph {
 public:
  InteractionGraph() = default;
  explicit InteractionGraph(const Circuit& circuit);

  [[nodiscard]] std::int32_t n_qubits() const noexcept { return n_qubits_; }
  [[nodiscard]] const std::vector<WeightedEdge>& edges() const noexcept {
    return edges_;
  }

  /// Number of 2q gates touching `qubit` (weighted degree).
  [[nodiscard]] std::int64_t degree(std::int32_t qubit) const;

  /// Distinct interaction partners of `qubit`.
  [[nodiscard]] std::int32_t partner_count(std::int32_t qubit) const;

  /// True if the graph (ignoring weights) is connected over all qubits that
  /// appear in at least one 2q gate; isolated qubits are trivially fine.
  [[nodiscard]] bool connected_over_active() const;

  /// Average distinct-partner count over active qubits; the paper's notion
  /// of circuit "connectivity" (TFIM low, QV high).
  [[nodiscard]] double mean_connectivity() const;

 private:
  std::int32_t n_qubits_ = 0;
  std::vector<WeightedEdge> edges_;
  std::vector<std::vector<std::int32_t>> adjacency_;  // partner lists
  std::vector<std::int64_t> weighted_degree_;
};

}  // namespace parallax::circuit
