// Weighted qubit interaction graph: nodes are qubits, edge weight (i, j) is
// the number of two-qubit gates between i and j. This is the input to
// Graphine's annealed placement, the AOD selection heuristic, and the
// windowed-placement partitioner. InteractionGraphBuilder accumulates the
// same graph one gate at a time, so the streaming QASM front end can build
// it in the parse pass without materializing a gate list.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"

namespace parallax::circuit {

struct WeightedEdge {
  std::int32_t a = 0;
  std::int32_t b = 0;  // invariant: a < b
  std::int64_t weight = 0;
};

class InteractionGraph {
 public:
  InteractionGraph() = default;
  explicit InteractionGraph(const Circuit& circuit);

  [[nodiscard]] std::int32_t n_qubits() const noexcept { return n_qubits_; }
  [[nodiscard]] const std::vector<WeightedEdge>& edges() const noexcept {
    return edges_;
  }

  /// Number of 2q gates touching `qubit` (weighted degree).
  [[nodiscard]] std::int64_t degree(std::int32_t qubit) const;

  /// Distinct interaction partners of `qubit`.
  [[nodiscard]] std::int32_t partner_count(std::int32_t qubit) const;

  /// True if the graph (ignoring weights) is connected over all qubits that
  /// appear in at least one 2q gate; isolated qubits are trivially fine.
  [[nodiscard]] bool connected_over_active() const;

  /// Average distinct-partner count over active qubits; the paper's notion
  /// of circuit "connectivity" (TFIM low, QV high).
  [[nodiscard]] double mean_connectivity() const;

 private:
  friend class InteractionGraphBuilder;

  std::int32_t n_qubits_ = 0;
  std::vector<WeightedEdge> edges_;
  std::vector<std::vector<std::int32_t>> adjacency_;  // partner lists
  std::vector<std::int64_t> weighted_degree_;
};

/// Incremental interaction-graph accumulation in O(distinct qubit pairs)
/// memory. Feed gates (or pairs) in any order, then build(); the result is
/// identical to InteractionGraph(circuit) over the same gates. A builder can
/// be reused after build() — it is left empty.
class InteractionGraphBuilder {
 public:
  /// Accumulates `gate` if it is two-qubit; ignores everything else.
  void add_gate(const Gate& gate);
  /// Accumulates one interaction between qubits `a` and `b` directly.
  void add_pair(std::int32_t a, std::int32_t b);
  /// Accumulates `weight` interactions at once (e.g. copying an edge of an
  /// existing graph into a subgraph).
  void add_weighted(std::int32_t a, std::int32_t b, std::int64_t weight);

  /// Number of two-qubit gates accumulated so far.
  [[nodiscard]] std::int64_t n_interactions() const noexcept {
    return n_interactions_;
  }

  /// Builds the graph over qubits [0, n_qubits); every accumulated pair must
  /// fall in that range. The builder resets to empty.
  [[nodiscard]] InteractionGraph build(std::int32_t n_qubits);

 private:
  std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> weights_;
  std::int64_t n_interactions_ = 0;
};

}  // namespace parallax::circuit
