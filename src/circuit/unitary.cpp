#include "circuit/unitary.hpp"

#include <algorithm>
#include <cmath>

namespace parallax::circuit {

Mat2 u3_matrix(double theta, double phi, double lambda) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  const Complex eil = std::polar(1.0, lambda);
  const Complex eip = std::polar(1.0, phi);
  return Mat2{{Complex{c, 0}, -eil * s, eip * s, eip * eil * c}};
}

Euler zyz_decompose(const Mat2& u) noexcept {
  // |u00| = cos(theta/2), |u10| = sin(theta/2)  (unitarity).
  const double c = std::clamp(std::abs(u.m[0]), 0.0, 1.0);
  const double s = std::clamp(std::abs(u.m[2]), 0.0, 1.0);
  const double theta = 2.0 * std::atan2(s, c);

  Euler e;
  e.theta = theta;
  constexpr double kEps = 1e-12;
  if (s < kEps) {
    // Diagonal up to phase: only phi + lambda is determined; put it all in
    // lambda (a pure Z rotation).
    e.phi = 0.0;
    e.lambda = std::arg(u.m[3]) - std::arg(u.m[0]);
    e.phase = std::arg(u.m[0]);
  } else if (c < kEps) {
    // Anti-diagonal: only phi - lambda is determined.
    e.lambda = 0.0;
    e.phi = std::arg(u.m[2]) - std::arg(-u.m[1]);
    e.phase = std::arg(-u.m[1]);
  } else {
    const double a00 = std::arg(u.m[0]);
    e.phase = a00;
    e.phi = std::arg(u.m[2]) - a00;
    e.lambda = std::arg(-u.m[1]) - a00;
  }
  return e;
}

double distance_up_to_phase(const Mat2& a, const Mat2& b) noexcept {
  // Align global phase on the largest-magnitude entry of b.
  std::size_t k = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::abs(b.m[i]) > best) {
      best = std::abs(b.m[i]);
      k = i;
    }
  }
  if (best == 0.0) return 1e9;  // b is not unitary; report mismatch
  const Complex ratio = a.m[k] / b.m[k];
  const Complex phase =
      std::abs(ratio) > 0 ? ratio / std::abs(ratio) : Complex{1, 0};
  double d2 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Complex diff = a.m[i] - phase * b.m[i];
    d2 += std::norm(diff);
  }
  return std::sqrt(d2);
}

bool is_identity_up_to_phase(const Mat2& u, double tol) noexcept {
  return distance_up_to_phase(u, Mat2::identity()) < tol;
}

}  // namespace parallax::circuit
