// Quantum circuit container: an ordered gate list over n qubits. The order of
// the list is the program order; per-qubit order is what schedulers must
// preserve (gates on disjoint qubits commute freely).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace parallax::circuit {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::int32_t n_qubits, std::string name = "");

  [[nodiscard]] std::int32_t n_qubits() const noexcept { return n_qubits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return gates_.size(); }
  [[nodiscard]] bool empty() const noexcept { return gates_.empty(); }
  [[nodiscard]] const Gate& gate(std::size_t i) const noexcept {
    return gates_[i];
  }

  /// Appends a gate; validates qubit indices against n_qubits().
  void append(const Gate& g);

  // Convenience builders (all reduce to the {U3, CZ} basis immediately).
  void u3(std::int32_t q, double theta, double phi, double lambda);
  void cz(std::int32_t a, std::int32_t b);
  void swap(std::int32_t a, std::int32_t b);  // baselines/testing only
  void measure(std::int32_t q);
  void barrier();

  // Common derived gates expressed in the basis (used by generators).
  void h(std::int32_t q);
  void x(std::int32_t q);
  void y(std::int32_t q);
  void z(std::int32_t q);
  void s(std::int32_t q);
  void sdg(std::int32_t q);
  void t(std::int32_t q);
  void tdg(std::int32_t q);
  void rx(std::int32_t q, double angle);
  void ry(std::int32_t q, double angle);
  void rz(std::int32_t q, double angle);
  void cx(std::int32_t control, std::int32_t target);
  void cp(std::int32_t a, std::int32_t b, double angle);  // controlled-phase
  void rzz(std::int32_t a, std::int32_t b, double angle);
  void ccx(std::int32_t c0, std::int32_t c1, std::int32_t target);
  void ccz(std::int32_t a, std::int32_t b, std::int32_t c);
  void cswap(std::int32_t control, std::int32_t a, std::int32_t b);
  void measure_all();

  // Statistics.
  [[nodiscard]] std::size_t count(GateType type) const noexcept;
  [[nodiscard]] std::size_t cz_count() const noexcept {
    return count(GateType::kCZ);
  }
  [[nodiscard]] std::size_t u3_count() const noexcept {
    return count(GateType::kU3);
  }
  [[nodiscard]] std::size_t swap_count() const noexcept {
    return count(GateType::kSwap);
  }
  /// Number of two-qubit CZ executions including those inside SWAPs
  /// (1 SWAP = 3 CZ), i.e. the metric of the paper's Fig. 9.
  [[nodiscard]] std::size_t effective_cz_count() const noexcept {
    return cz_count() + 3 * swap_count();
  }

  /// ASAP circuit depth counting U3/CZ/SWAP gates (barriers advance all
  /// qubits; measurements count one level).
  [[nodiscard]] std::size_t depth() const;

  /// Replaces the gate list (used by transpiler passes).
  void replace_gates(std::vector<Gate> gates);

 private:
  std::int32_t n_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace parallax::circuit
