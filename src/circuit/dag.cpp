#include "circuit/dag.hpp"

#include <algorithm>
#include <cassert>

namespace parallax::circuit {

DependencyTracker::DependencyTracker(const Circuit& circuit)
    : circuit_(&circuit),
      per_qubit_(static_cast<std::size_t>(circuit.n_qubits())),
      cursor_(static_cast<std::size_t>(circuit.n_qubits()), 0) {
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.type == GateType::kBarrier) continue;  // scheduler-level concern
    for (int k = 0; k < g.arity(); ++k) {
      per_qubit_[static_cast<std::size_t>(g.q[k])].push_back(i);
    }
    ++remaining_;
  }
}

std::optional<std::size_t> DependencyTracker::next_gate(
    std::int32_t qubit) const {
  const auto& queue = per_qubit_[static_cast<std::size_t>(qubit)];
  const std::size_t pos = cursor_[static_cast<std::size_t>(qubit)];
  if (pos >= queue.size()) return std::nullopt;
  return queue[pos];
}

bool DependencyTracker::is_ready(std::size_t gate_index) const {
  const Gate& g = circuit_->gate(gate_index);
  for (int k = 0; k < g.arity(); ++k) {
    if (next_gate(g.q[k]) != gate_index) return false;
  }
  return true;
}

void DependencyTracker::mark_executed(std::size_t gate_index) {
  assert(is_ready(gate_index));
  const Gate& g = circuit_->gate(gate_index);
  for (int k = 0; k < g.arity(); ++k) {
    ++cursor_[static_cast<std::size_t>(g.q[k])];
  }
  assert(remaining_ > 0);
  --remaining_;
}

std::vector<std::vector<std::size_t>> asap_layers(const Circuit& circuit) {
  std::vector<std::size_t> level(static_cast<std::size_t>(circuit.n_qubits()),
                                 0);
  std::vector<std::vector<std::size_t>> layers;
  std::size_t barrier_floor = 0;
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.type == GateType::kBarrier) {
      for (auto l : level) barrier_floor = std::max(barrier_floor, l);
      std::fill(level.begin(), level.end(), barrier_floor);
      continue;
    }
    std::size_t start = barrier_floor;
    for (int k = 0; k < g.arity(); ++k) {
      start = std::max(start, level[static_cast<std::size_t>(g.q[k])]);
    }
    if (start >= layers.size()) layers.resize(start + 1);
    layers[start].push_back(i);
    for (int k = 0; k < g.arity(); ++k) {
      level[static_cast<std::size_t>(g.q[k])] = start + 1;
    }
  }
  return layers;
}

}  // namespace parallax::circuit
