#include "circuit/gate.hpp"

#include <cstdio>

namespace parallax::circuit {

std::string to_string(GateType type) {
  switch (type) {
    case GateType::kU3: return "u3";
    case GateType::kCZ: return "cz";
    case GateType::kSwap: return "swap";
    case GateType::kMeasure: return "measure";
    case GateType::kBarrier: return "barrier";
  }
  return "?";
}

std::string Gate::to_string() const {
  char buf[128];
  switch (type) {
    case GateType::kU3:
      std::snprintf(buf, sizeof(buf), "u3(%.6g,%.6g,%.6g) q[%d]", theta, phi,
                    lambda, q[0]);
      break;
    case GateType::kCZ:
      std::snprintf(buf, sizeof(buf), "cz q[%d],q[%d]", q[0], q[1]);
      break;
    case GateType::kSwap:
      std::snprintf(buf, sizeof(buf), "swap q[%d],q[%d]", q[0], q[1]);
      break;
    case GateType::kMeasure:
      std::snprintf(buf, sizeof(buf), "measure q[%d]", q[0]);
      break;
    case GateType::kBarrier:
      std::snprintf(buf, sizeof(buf), "barrier");
      break;
  }
  return buf;
}

}  // namespace parallax::circuit
