#include "anneal/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "anneal/kernels_impl.hpp"

namespace parallax::anneal::kernels {

namespace detail {
// Implemented in kernels_avx2.cpp (the only TU built with -mavx2).
bool avx2_tu_compiled() noexcept;
void avx2_edge_terms_gather(const std::int32_t* idx, const double* w,
                            std::size_t count, double px, double py,
                            const double* xs, const double* ys,
                            double* out) noexcept;
void avx2_edge_terms_pairs(const std::int32_t* a, const std::int32_t* b,
                           const double* w, std::size_t count,
                           const double* xs, const double* ys,
                           double* out) noexcept;
std::size_t avx2_crowding_terms_excluding_self(
    const std::int32_t* idx, std::size_t count, std::int32_t self, double px,
    double py, const double* xs, const double* ys, double d_min, double denom,
    double weight, double* out) noexcept;
std::size_t avx2_crowding_terms_above_self(
    const std::int32_t* idx, std::size_t count, std::int32_t self, double px,
    double py, const double* xs, const double* ys, double d_min, double denom,
    double weight, double* out) noexcept;
}  // namespace detail

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool sse2_usable() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return true;  // SSE2 is the x86-64 baseline.
#else
  return false;
#endif
}

Lane widest_available() noexcept {
  if (detail::avx2_tu_compiled() && cpu_has_avx2()) return Lane::kAvx2;
  if (sse2_usable()) return Lane::kSse2;
  return Lane::kScalar;
}

// Resolves PARALLAX_SIMD once; unknown or unavailable values warn to stderr
// and fall back to auto (the widest available lane).
Lane resolve_env_lane() noexcept {
  const char* raw = std::getenv("PARALLAX_SIMD");
  if (raw == nullptr || *raw == '\0' || std::strcmp(raw, "auto") == 0) {
    return widest_available();
  }
  if (std::strcmp(raw, "scalar") == 0) return Lane::kScalar;
  if (std::strcmp(raw, "sse2") == 0 && lane_available(Lane::kSse2)) {
    return Lane::kSse2;
  }
  if (std::strcmp(raw, "avx2") == 0 && lane_available(Lane::kAvx2)) {
    return Lane::kAvx2;
  }
  std::fprintf(stderr,
               "parallax: PARALLAX_SIMD=%s is unknown or unavailable on this "
               "CPU; using %s\n",
               raw, lane_name(widest_available()));
  return widest_available();
}

// -1 means "not forced"; tests pin a lane through force_lane().
std::atomic<int> g_forced_lane{-1};

}  // namespace

const char* lane_name(Lane lane) noexcept {
  switch (lane) {
    case Lane::kScalar:
      return "scalar";
    case Lane::kSse2:
      return "sse2";
    case Lane::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool lane_available(Lane lane) noexcept {
  switch (lane) {
    case Lane::kScalar:
      return true;
    case Lane::kSse2:
      return sse2_usable();
    case Lane::kAvx2:
      return detail::avx2_tu_compiled() && cpu_has_avx2();
  }
  return false;
}

Lane active_lane() noexcept {
  const int forced = g_forced_lane.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Lane>(forced);
  static const Lane resolved = resolve_env_lane();
  return resolved;
}

void force_lane(Lane lane) {
  if (!lane_available(lane)) {
    throw std::invalid_argument(std::string("kernels::force_lane: lane '") +
                                lane_name(lane) +
                                "' is unavailable on this build/CPU");
  }
  g_forced_lane.store(static_cast<int>(lane), std::memory_order_relaxed);
}

void clear_forced_lane() noexcept {
  g_forced_lane.store(-1, std::memory_order_relaxed);
}

void edge_terms_gather(const std::int32_t* idx, const double* w,
                       std::size_t count, double px, double py,
                       const double* xs, const double* ys,
                       double* out) noexcept {
  switch (active_lane()) {
    case Lane::kAvx2:
      detail::avx2_edge_terms_gather(idx, w, count, px, py, xs, ys, out);
      return;
#if defined(__x86_64__) || defined(_M_X64)
    case Lane::kSse2:
      detail::edge_terms_gather_impl<detail::Sse2Lane>(idx, w, count, px, py,
                                                       xs, ys, out);
      return;
#endif
    default:
      detail::edge_terms_gather_impl<detail::ScalarLane>(idx, w, count, px, py,
                                                         xs, ys, out);
      return;
  }
}

void edge_terms_pairs(const std::int32_t* a, const std::int32_t* b,
                      const double* w, std::size_t count, const double* xs,
                      const double* ys, double* out) noexcept {
  switch (active_lane()) {
    case Lane::kAvx2:
      detail::avx2_edge_terms_pairs(a, b, w, count, xs, ys, out);
      return;
#if defined(__x86_64__) || defined(_M_X64)
    case Lane::kSse2:
      detail::edge_terms_pairs_impl<detail::Sse2Lane>(a, b, w, count, xs, ys,
                                                      out);
      return;
#endif
    default:
      detail::edge_terms_pairs_impl<detail::ScalarLane>(a, b, w, count, xs, ys,
                                                        out);
      return;
  }
}

std::size_t crowding_terms_excluding_self(const std::int32_t* idx,
                                          std::size_t count, std::int32_t self,
                                          double px, double py,
                                          const double* xs, const double* ys,
                                          double d_min, double denom,
                                          double weight, double* out) noexcept {
  switch (active_lane()) {
    case Lane::kAvx2:
      return detail::avx2_crowding_terms_excluding_self(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
#if defined(__x86_64__) || defined(_M_X64)
    case Lane::kSse2:
      return detail::crowding_terms_impl<detail::Sse2Lane, false>(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
#endif
    default:
      return detail::crowding_terms_impl<detail::ScalarLane, false>(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
  }
}

std::size_t crowding_terms_above_self(const std::int32_t* idx,
                                      std::size_t count, std::int32_t self,
                                      double px, double py, const double* xs,
                                      const double* ys, double d_min,
                                      double denom, double weight,
                                      double* out) noexcept {
  switch (active_lane()) {
    case Lane::kAvx2:
      return detail::avx2_crowding_terms_above_self(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
#if defined(__x86_64__) || defined(_M_X64)
    case Lane::kSse2:
      return detail::crowding_terms_impl<detail::Sse2Lane, true>(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
#endif
    default:
      return detail::crowding_terms_impl<detail::ScalarLane, true>(
          idx, count, self, px, py, xs, ys, d_min, denom, weight, out);
  }
}

}  // namespace parallax::anneal::kernels
