// Dual annealing: generalized simulated annealing (GSA, Tsallis-statistics
// visiting distribution) combined with periodic local search, following
// Xiang et al. and the SciPy `dual_annealing` optimizer that GRAPHINE uses
// for qubit placement. The broad Cauchy-like visits explore the whole
// landscape early; the schedule cools toward precise local refinement.
#pragma once

#include <optional>
#include <vector>

#include "anneal/nelder_mead.hpp"
#include "util/rng.hpp"

namespace parallax::anneal {

struct DualAnnealingOptions {
  /// Visiting-distribution shape parameter q_v in (1, 3). 2.62 is the SciPy
  /// default; larger means heavier tails (wider jumps).
  double visit = 2.62;
  /// Acceptance parameter q_a (negative favors downhill moves strongly).
  double accept = -5.0;
  /// Initial temperature.
  double initial_temperature = 5230.0;
  /// Temperature restart threshold (relative); annealing restarts from the
  /// initial temperature when T falls below initial * restart_temp_ratio.
  double restart_temp_ratio = 2e-5;
  /// Total annealing iterations (global search sweeps).
  int max_iterations = 1000;
  /// Run the local minimizer every `local_search_interval` accepted moves
  /// (0 disables local search entirely).
  int local_search_interval = 50;
  NelderMeadOptions local_options{};
  std::uint64_t seed = 0x5eedULL;
  /// Optional warm start. When set, annealing begins from this state
  /// instead of a uniform random draw (and the final answer is never worse
  /// than the local refinement of this state).
  std::optional<std::vector<double>> initial;
};

struct AnnealResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  int local_searches = 0;
};

/// Minimizes `f` over the box [lower, upper]^n.
[[nodiscard]] AnnealResult dual_annealing(const Objective& f,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const DualAnnealingOptions& options =
                                              {});

}  // namespace parallax::anneal
