// Dual annealing: generalized simulated annealing (GSA, Tsallis-statistics
// visiting distribution) combined with periodic local search, following
// Xiang et al. and the SciPy `dual_annealing` optimizer that GRAPHINE uses
// for qubit placement. The broad Cauchy-like visits explore the whole
// landscape early; the schedule cools toward precise local refinement.
//
// Two proposal modes share the schedule and acceptance rule:
//   * full-vector (the reference implementation): every dimension is
//     perturbed per iteration and the objective re-scored from scratch;
//   * single-coordinate (IncrementalObjective overload): one site moves per
//     proposal and only its delta is re-scored — one outer iteration sweeps
//     every site, so an "iteration" explores comparably but each proposal
//     costs O(local interactions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anneal/nelder_mead.hpp"
#include "anneal/objective.hpp"
#include "util/rng.hpp"

namespace parallax::anneal {

struct DualAnnealingOptions {
  /// Visiting-distribution shape parameter q_v in (1, 3). 2.62 is the SciPy
  /// default; larger means heavier tails (wider jumps).
  double visit = 2.62;
  /// Acceptance parameter q_a in [-1e4, -5] (negative favors downhill moves
  /// strongly).
  double accept = -5.0;
  /// Initial temperature; must be positive and finite.
  double initial_temperature = 5230.0;
  /// Temperature restart threshold (relative, in (0, 1)); annealing restarts
  /// from the initial temperature when T falls below initial * ratio.
  double restart_temp_ratio = 2e-5;
  /// Total annealing iterations (global search sweeps); at least 1.
  int max_iterations = 1000;
  /// Run the local minimizer every `local_search_interval` accepted moves
  /// (0 disables local search entirely). The single-coordinate mode scales
  /// the interval by the site count so both modes refine at a comparable
  /// per-sweep cadence.
  int local_search_interval = 50;
  NelderMeadOptions local_options{};
  std::uint64_t seed = 0x5eedULL;
  /// Optional warm start. When set, annealing begins from this state
  /// instead of a uniform random draw (and the final answer is never worse
  /// than the local refinement of this state).
  std::optional<std::vector<double>> initial;
  /// Batched proposal generation (single-coordinate overload only): each
  /// outer iteration draws all of its visit normals and acceptance uniforms
  /// up front from a counter-based stream (derive_seed(seed, "visit-block",
  /// iteration)), so the accept loop carries no RNG calls and the draw order
  /// is independent of acceptance decisions and SIMD vector width. A
  /// different (still deterministic) random walk than the per-site stream —
  /// callers expose it only behind fingerprint-visible modes. Local search
  /// uses the lean incremental Nelder-Mead overload.
  bool batched_proposals = false;
};

/// Per-optimizer accounting of a portfolio race (see anneal/portfolio.hpp).
struct EntrantAccount {
  std::string name;
  double value = 0.0;
  double wall_seconds = 0.0;
  std::int64_t evaluations = 0;
  std::int64_t delta_evaluations = 0;
  bool winner = false;
};

struct AnnealResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  int local_searches = 0;
  /// Full objective evaluations (initial score, full-vector proposals,
  /// Nelder-Mead probes, reloads after local search).
  std::int64_t evaluations = 0;
  /// Incremental single-site evaluations (zero in full-vector mode).
  std::int64_t delta_evaluations = 0;
  /// Times the temperature schedule re-annealed from the hot end.
  int restarts = 0;
  /// Portfolio accounting, filled only by anneal::race: the winning
  /// entrant's name and every entrant's budget spend (wall time is
  /// observational — selection never reads it).
  std::string winner;
  std::vector<EntrantAccount> entrants;
};

/// Minimizes `f` over the box [lower, upper]^n (full-vector proposals).
/// Throws std::invalid_argument for out-of-range options or mismatched
/// bounds.
[[nodiscard]] AnnealResult dual_annealing(const Objective& f,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const DualAnnealingOptions& options =
                                              {});

/// Single-coordinate mode: minimizes `objective` over the box (bounds sized
/// 2 * objective.sites(), interleaved x,y). Each outer iteration proposes
/// one heavy-tailed move per site, scored incrementally; local search runs
/// on the exact full() objective. Same option validation as above.
[[nodiscard]] AnnealResult dual_annealing(IncrementalObjective& objective,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const DualAnnealingOptions& options =
                                              {});

}  // namespace parallax::anneal
