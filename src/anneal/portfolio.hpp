// Deterministic optimizer portfolio: K configured entrants (single-chain
// dual annealing, multi-chain reduction, Nelder-Mead polish, fresh restart)
// race on the same objective under one configured budget, and the winner is
// selected in fixed ascending-entrant order with strict-< on the final
// objective value — exact ties keep the lower index. Like multi_chain, the
// winner is a pure function of (objective, bounds, options): thread count
// and completion order never influence it, so portfolio techniques inherit
// content-addressed caching, sharding, and serving unchanged.
//
// Budgeting: each entrant carries its own DualAnnealingOptions — the roster
// builder (see placement::graphine) splits one anneal budget across the
// entrants so a race costs about as much as the single-chain run it
// replaces. Per-entrant wall time is measured and reported but NEVER read
// by selection (wall clocks are not deterministic; objective values are).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anneal/dual_annealing.hpp"
#include "anneal/objective.hpp"

namespace parallax::util {
class ThreadPool;
}  // namespace parallax::util

namespace parallax::anneal {

struct PortfolioEntrant {
  /// Stable display name ("delta", "mc4", "nm", "restart", ...); reported in
  /// AnnealResult::winner and the per-entrant accounts.
  std::string name;
  /// Entrant budget + schedule. `seed` is re-derived per entrant index by
  /// race() (derive_seed(seed, "entrant", index)), so entrants with the same
  /// base options still explore independently.
  DualAnnealingOptions anneal{};
  /// > 1 runs the entrant as a deterministic multi-chain reduction (the
  /// chains run sequentially inside the entrant — entrants are the unit of
  /// parallelism, so a racing pool is never re-entered).
  int chains = 1;
  /// Skip annealing entirely: one lean Nelder-Mead descent from the warm
  /// start (budgeted by anneal.local_options.max_evaluations).
  bool polish_only = false;
  /// Drop the shared warm start and explore from the entrant's own uniform
  /// draw.
  bool fresh_start = false;
};

struct PortfolioOptions {
  /// At least one entrant; selection prefers lower indices on exact ties.
  std::vector<PortfolioEntrant> entrants;
  /// Optional borrowed pool: entrants fan out across it (the caller must
  /// not race from one of the pool's own workers — parallel_for blocks).
  /// Null runs entrants sequentially; the winner is identical either way.
  util::ThreadPool* pool = nullptr;
};

/// Races the configured entrants, each over a fresh objective from
/// `make_objective` (entrants mutate their objective). Returns the winning
/// entrant's AnnealResult with `winner` set to its name and `entrants`
/// holding every entrant's accounting. Throws std::invalid_argument for an
/// empty roster, a non-positive chain count, or invalid entrant options.
[[nodiscard]] AnnealResult race(
    const std::function<std::unique_ptr<IncrementalObjective>()>&
        make_objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    const PortfolioOptions& options);

}  // namespace parallax::anneal
