// Deterministic multi-chain annealing: K independent single-coordinate
// dual-annealing chains, each with a seed derived from the master via
// util::derive_seed(seed, "chain", k), reduced in fixed ascending-index
// order with a strict-improvement tie-break. The winner therefore depends
// only on (objective, bounds, options) — never on thread count or
// completion order — which is what lets multi-chain technique variants
// inherit content-addressed caching, sharding, and serving unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "anneal/dual_annealing.hpp"
#include "anneal/objective.hpp"

namespace parallax::util {
class ThreadPool;
}  // namespace parallax::util

namespace parallax::anneal {

struct MultiChainOptions {
  /// Independent chains; at least 1.
  int chains = 4;
  /// Per-chain annealing options. `anneal.seed` is the master seed; chain k
  /// runs with derive_seed(seed, "chain", k).
  DualAnnealingOptions anneal{};
  /// Optional borrowed pool: chains fan out across it (the caller must not
  /// invoke this from one of the pool's own workers — parallel_for blocks).
  /// Null runs the chains sequentially; results are identical either way.
  util::ThreadPool* pool = nullptr;
};

struct MultiChainResult {
  /// The winning chain's result (lowest value; lowest index on exact ties).
  AnnealResult best;
  int winner = 0;
  int chains = 0;
  /// Work totals aggregated over every chain (best.* holds the winner's
  /// own counters).
  std::int64_t evaluations = 0;
  std::int64_t delta_evaluations = 0;
  int restarts = 0;
  int local_searches = 0;
};

/// Runs `options.chains` chains, each over a fresh objective from
/// `make_objective` (chains mutate their objective, so every chain needs
/// its own instance). Throws std::invalid_argument for chains < 1 or
/// invalid annealing options.
[[nodiscard]] MultiChainResult multi_chain(
    const std::function<std::unique_ptr<IncrementalObjective>()>&
        make_objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    const MultiChainOptions& options);

}  // namespace parallax::anneal
