#include "anneal/nelder_mead.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parallax::anneal {

namespace {
void clamp_to_box(std::vector<double>& x, const std::vector<double>& lower,
                  const std::vector<double>& upper) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}
}  // namespace

LocalResult nelder_mead(const Objective& f, std::vector<double> x0,
                        const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  assert(lower.size() == n && upper.size() == n);
  int evals = 0;
  auto eval = [&](std::vector<double>& x) {
    clamp_to_box(x, lower, upper);
    ++evals;
    return f(x);
  };

  // Initial simplex: x0 plus a step along each axis.
  struct Vertex {
    std::vector<double> x;
    double value;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  {
    Vertex v{x0, 0.0};
    v.value = eval(v.x);
    simplex.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < n; ++i) {
    Vertex v{x0, 0.0};
    const double span = upper[i] - lower[i];
    const double step = options.initial_step * (span > 0 ? span : 1.0);
    v.x[i] += (v.x[i] + step <= upper[i]) ? step : -step;
    v.value = eval(v.x);
    simplex.push_back(std::move(v));
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  while (evals < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.value < b.value; });

    // Convergence: simplex diameter and value spread.
    double x_spread = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double lo = simplex.front().x[i], hi = lo;
      for (const Vertex& v : simplex) {
        lo = std::min(lo, v.x[i]);
        hi = std::max(hi, v.x[i]);
      }
      x_spread = std::max(x_spread, hi - lo);
    }
    const double f_spread =
        std::abs(simplex.back().value - simplex.front().value);
    if (x_spread < options.x_tolerance && f_spread < options.f_tolerance) {
      break;
    }

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    Vertex& worst = simplex.back();
    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = centroid[i] + coeff * (centroid[i] - worst.x[i]);
      }
      return x;
    };

    std::vector<double> xr = blend(kAlpha);
    const double fr = eval(xr);
    if (fr < simplex.front().value) {
      std::vector<double> xe = blend(kGamma);
      const double fe = eval(xe);
      if (fe < fr) {
        worst = {std::move(xe), fe};
      } else {
        worst = {std::move(xr), fr};
      }
      continue;
    }
    if (fr < simplex[simplex.size() - 2].value) {
      worst = {std::move(xr), fr};
      continue;
    }
    // Contraction (outside if reflected point improved on worst).
    const bool outside = fr < worst.value;
    std::vector<double> xc = blend(outside ? kRho : -kRho);
    const double fc = eval(xc);
    if (fc < std::min(fr, worst.value)) {
      worst = {std::move(xc), fc};
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        simplex[v].x[i] = simplex[0].x[i] +
                          kSigma * (simplex[v].x[i] - simplex[0].x[i]);
      }
      simplex[v].value = eval(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.value < b.value; });
  return LocalResult{simplex.front().x, simplex.front().value, evals};
}

}  // namespace parallax::anneal
