#include "anneal/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace parallax::anneal {

namespace {

constexpr double kAlpha = 1.0;  // reflection
constexpr double kGamma = 2.0;  // expansion
constexpr double kRho = 0.5;    // contraction
constexpr double kSigma = 0.5;  // shrink

void clamp_to_box(std::vector<double>& x, const std::vector<double>& lower,
                  const std::vector<double>& upper) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

void validate_inputs(std::size_t n, const std::vector<double>& lower,
                     const std::vector<double>& upper,
                     const NelderMeadOptions& options) {
  if (n == 0) {
    throw std::invalid_argument("nelder_mead: x0 must be non-empty");
  }
  if (lower.size() != n || upper.size() != n) {
    throw std::invalid_argument(
        "nelder_mead: bounds must match the dimension of x0");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lower[i] <= upper[i])) {
      throw std::invalid_argument(
          "nelder_mead: every lower bound must be <= its upper bound");
    }
  }
  if (options.max_evaluations < 1) {
    throw std::invalid_argument("nelder_mead: max_evaluations must be >= 1");
  }
  if (!(options.x_tolerance > 0.0) || !(options.f_tolerance > 0.0)) {
    throw std::invalid_argument("nelder_mead: tolerances must be positive");
  }
  if (!(options.initial_step > 0.0)) {
    throw std::invalid_argument("nelder_mead: initial_step must be positive");
  }
}

/// Axis step for simplex vertex i, identical in both overloads: a fixed
/// fraction of the axis span, flipped inward at the upper bound.
double axis_step(double x, std::size_t i, const std::vector<double>& lower,
                 const std::vector<double>& upper,
                 const NelderMeadOptions& options) {
  const double span = upper[i] - lower[i];
  const double step = options.initial_step * (span > 0 ? span : 1.0);
  return (x + step <= upper[i]) ? step : -step;
}

}  // namespace

LocalResult nelder_mead(const Objective& f, std::vector<double> x0,
                        const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  validate_inputs(n, lower, upper, options);
  int evals = 0;
  auto eval = [&](std::vector<double>& x) {
    clamp_to_box(x, lower, upper);
    ++evals;
    return f(x);
  };

  // Initial simplex: x0 plus a step along each axis.
  struct Vertex {
    std::vector<double> x;
    double value;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  {
    Vertex v{x0, 0.0};
    v.value = eval(v.x);
    simplex.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < n; ++i) {
    Vertex v{x0, 0.0};
    v.x[i] += axis_step(v.x[i], i, lower, upper, options);
    v.value = eval(v.x);
    simplex.push_back(std::move(v));
  }

  // Probe buffers hoisted out of the loop; everything inside computes the
  // exact same values in the exact same order as before the hoist (the
  // legacy iterates are fingerprint-relevant).
  std::vector<double> centroid(n), xr(n), xe(n), xc(n);

  while (evals < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.value < b.value; });

    // Convergence: value spread first (O(1)); the O(n^2) diameter scan only
    // runs once values have collapsed — the break needs BOTH below
    // tolerance, so short-circuiting cannot change the outcome.
    const double f_spread =
        std::abs(simplex.back().value - simplex.front().value);
    if (f_spread < options.f_tolerance) {
      double x_spread = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double lo = simplex.front().x[i], hi = lo;
        for (const Vertex& v : simplex) {
          lo = std::min(lo, v.x[i]);
          hi = std::max(hi, v.x[i]);
        }
        x_spread = std::max(x_spread, hi - lo);
      }
      if (x_spread < options.x_tolerance) break;
    }

    // Centroid of all but the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    Vertex& worst = simplex.back();
    auto blend = [&](double coeff, std::vector<double>& out) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = centroid[i] + coeff * (centroid[i] - worst.x[i]);
      }
    };

    blend(kAlpha, xr);
    const double fr = eval(xr);
    if (fr < simplex.front().value) {
      blend(kGamma, xe);
      const double fe = eval(xe);
      if (fe < fr) {
        worst.x = xe;
        worst.value = fe;
      } else {
        worst.x = xr;
        worst.value = fr;
      }
      continue;
    }
    if (fr < simplex[simplex.size() - 2].value) {
      worst.x = xr;
      worst.value = fr;
      continue;
    }
    // Contraction (outside if reflected point improved on worst).
    const bool outside = fr < worst.value;
    blend(outside ? kRho : -kRho, xc);
    const double fc = eval(xc);
    if (fc < std::min(fr, worst.value)) {
      worst.x = xc;
      worst.value = fc;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        simplex[v].x[i] = simplex[0].x[i] +
                          kSigma * (simplex[v].x[i] - simplex[0].x[i]);
      }
      simplex[v].value = eval(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.value < b.value; });
  return LocalResult{simplex.front().x, simplex.front().value, evals};
}

LocalResult nelder_mead(IncrementalObjective& f, std::vector<double> x0,
                        const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  validate_inputs(n, lower, upper, options);
  if (n != 2 * f.sites()) {
    throw std::invalid_argument(
        "nelder_mead: x0 must have 2 * sites() coordinates");
  }
  int evals = 0;
  auto eval = [&](std::vector<double>& x) {
    clamp_to_box(x, lower, upper);
    ++evals;
    return f.full(x);
  };

  // Flat vertex storage: row r of `verts` is vertex r, never moved after
  // construction — ranking lives in `order` (indices sorted by value, ties
  // by index so the walk is deterministic). `total[i]` carries the sum of
  // coordinate i over ALL rows, so the all-but-worst centroid is one O(n)
  // pass instead of the legacy O(n^2) rebuild.
  const std::size_t rows = n + 1;
  std::vector<double> verts(rows * n);
  std::vector<double> values(rows);
  std::vector<std::size_t> order(rows);
  std::vector<double> total(n, 0.0);
  std::vector<double> xbuf(n), centroid(n), xr(n), xe(n), xc(n);
  auto row_of = [&](std::size_t r) { return verts.data() + r * n; };

  xbuf = x0;
  values[0] = eval(xbuf);
  std::copy(xbuf.begin(), xbuf.end(), row_of(0));
  for (std::size_t i = 0; i < n; ++i) {
    xbuf = x0;
    xbuf[i] += axis_step(xbuf[i], i, lower, upper, options);
    values[i + 1] = eval(xbuf);
    std::copy(xbuf.begin(), xbuf.end(), row_of(i + 1));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const double* v = row_of(r);
    for (std::size_t i = 0; i < n; ++i) total[i] += v[i];
  }
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto resort = [&] {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (values[a] != values[b]) return values[a] < values[b];
      return a < b;
    });
  };
  resort();

  auto replace_worst = [&](std::size_t worst, const std::vector<double>& x,
                           double fx) {
    double* w = row_of(worst);
    for (std::size_t i = 0; i < n; ++i) {
      total[i] += x[i] - w[i];
      w[i] = x[i];
    }
    values[worst] = fx;
    resort();
  };

  while (evals < options.max_evaluations) {
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const double f_spread = std::abs(values[worst] - values[best]);
    if (f_spread < options.f_tolerance) {
      double x_spread = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double lo = row_of(best)[i], hi = lo;
        for (std::size_t r = 0; r < rows; ++r) {
          lo = std::min(lo, row_of(r)[i]);
          hi = std::max(hi, row_of(r)[i]);
        }
        x_spread = std::max(x_spread, hi - lo);
      }
      if (x_spread < options.x_tolerance) break;
    }

    const double* w = row_of(worst);
    for (std::size_t i = 0; i < n; ++i) {
      centroid[i] = (total[i] - w[i]) / static_cast<double>(n);
    }
    auto blend = [&](double coeff, std::vector<double>& out) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = centroid[i] + coeff * (centroid[i] - w[i]);
      }
    };

    blend(kAlpha, xr);
    const double fr = eval(xr);
    if (fr < values[best]) {
      blend(kGamma, xe);
      const double fe = eval(xe);
      if (fe < fr) {
        replace_worst(worst, xe, fe);
      } else {
        replace_worst(worst, xr, fr);
      }
      continue;
    }
    if (fr < values[order[rows - 2]]) {
      replace_worst(worst, xr, fr);
      continue;
    }
    const bool outside = fr < values[worst];
    blend(outside ? kRho : -kRho, xc);
    const double fc = eval(xc);
    if (fc < std::min(fr, values[worst])) {
      replace_worst(worst, xc, fc);
      continue;
    }
    // Shrink toward the best row; totals are rebuilt once afterwards.
    const double* b = row_of(best);
    for (std::size_t ri = 1; ri < rows; ++ri) {
      const std::size_t r = order[ri];
      double* v = row_of(r);
      for (std::size_t i = 0; i < n; ++i) {
        xbuf[i] = b[i] + kSigma * (v[i] - b[i]);
      }
      values[r] = eval(xbuf);
      std::copy(xbuf.begin(), xbuf.end(), v);
    }
    std::fill(total.begin(), total.end(), 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* v = row_of(r);
      for (std::size_t i = 0; i < n; ++i) total[i] += v[i];
    }
    resort();
  }

  const std::size_t best = order.front();
  return LocalResult{std::vector<double>(row_of(best), row_of(best) + n),
                     values[best], evals};
}

}  // namespace parallax::anneal
