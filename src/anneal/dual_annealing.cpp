#include "anneal/dual_annealing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace parallax::anneal {

namespace {

/// Draws a step from the Tsallis visiting distribution at temperature
/// `temperature` with shape `qv`. Implementation follows the standard GSA
/// formulation (Tsallis & Stariolo, 1996): a ratio of a Gaussian to a
/// power of another Gaussian's magnitude produces the heavy-tailed visit.
double visit_step(util::Rng& rng, double qv, double temperature) {
  const double factor1 = std::exp(std::log(temperature) / (qv - 1.0));
  const double factor2 = std::exp((4.0 - qv) * std::log(qv - 1.0));
  const double factor3 =
      std::exp((2.0 - qv) / (qv - 1.0) * std::log(2.0 / (3.0 - qv)));
  const double factor4 =
      std::sqrt(std::numbers::pi) * factor1 * factor2 /
      (factor3 * (3.0 - qv));
  const double factor5 = 1.0 / (qv - 1.0) - 0.5;
  const double d1 = 2.0 - factor5;
  const double factor6 = std::numbers::pi * (1.0 - factor5) /
                         std::sin(std::numbers::pi * (1.0 - factor5)) /
                         std::exp(std::lgamma(d1));
  const double sigma_x =
      std::exp(-(qv - 1.0) * std::log(factor6 / factor4) / (3.0 - qv));

  const double x = sigma_x * rng.normal();
  const double y = rng.normal();
  const double den =
      std::exp((qv - 1.0) * std::log(std::abs(y)) / (3.0 - qv));
  return den != 0.0 ? x / den : x;
}

}  // namespace

AnnealResult dual_annealing(const Objective& f,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper,
                            const DualAnnealingOptions& options) {
  const std::size_t n = lower.size();
  assert(upper.size() == n);
  assert(options.visit > 1.0 && options.visit < 3.0);
  util::Rng rng(options.seed);

  auto clamp_wrap = [&](std::vector<double>& x) {
    // GSA wraps out-of-box coordinates back into the box (SciPy does the
    // same) so boundary states are not oversampled.
    for (std::size_t i = 0; i < n; ++i) {
      const double span = upper[i] - lower[i];
      if (span <= 0.0) {
        x[i] = lower[i];
        continue;
      }
      double v = std::fmod(x[i] - lower[i], span);
      if (v < 0) v += span;
      x[i] = lower[i] + v;
    }
  };

  std::vector<double> current(n);
  if (options.initial) {
    assert(options.initial->size() == n);
    current = *options.initial;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = std::clamp(current[i], lower[i], upper[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = rng.uniform(lower[i], upper[i]);
    }
  }
  double current_value = f(current);

  AnnealResult best{current, current_value, 0, 0};

  const double t0 = options.initial_temperature;
  const double qv = options.visit;
  const double qa = options.accept;
  // GSA temperature schedule: T(k) = T0 * (2^{qv-1} - 1) /
  //                                   ((1+k)^{qv-1} - 1).
  const double t_coeff = std::pow(2.0, qv - 1.0) - 1.0;

  int accepted_since_local = 0;
  int k = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter, ++k) {
    double temperature =
        t0 * t_coeff / (std::pow(static_cast<double>(k) + 2.0, qv - 1.0) - 1.0);
    if (temperature < t0 * options.restart_temp_ratio) {
      k = 0;  // reanneal from the hot end
      temperature = t0;
    }

    // Propose: perturb every dimension with a heavy-tailed visit.
    std::vector<double> candidate = current;
    for (std::size_t i = 0; i < n; ++i) {
      const double span = upper[i] - lower[i];
      double step = visit_step(rng, qv, temperature);
      // Scale the raw step to the box size; clamp pathological tails.
      step = std::clamp(step, -1e8, 1e8);
      candidate[i] += step * span * 1e-2;
    }
    clamp_wrap(candidate);
    const double candidate_value = f(candidate);

    bool accept = false;
    if (candidate_value <= current_value) {
      accept = true;
    } else {
      // Generalized Metropolis acceptance (Tsallis statistics).
      const double t_accept = temperature / static_cast<double>(k + 1);
      const double delta = (candidate_value - current_value) / t_accept;
      const double base = 1.0 + (qa - 1.0) * delta;
      if (base > 0.0) {
        const double p = std::exp(std::log(base) / (1.0 - qa));
        accept = rng.next_double() < std::min(1.0, p);
      }
    }

    if (accept) {
      current = candidate;
      current_value = candidate_value;
      ++accepted_since_local;
      if (current_value < best.value) {
        best.x = current;
        best.value = current_value;
      }
    }

    if (options.local_search_interval > 0 &&
        accepted_since_local >= options.local_search_interval) {
      accepted_since_local = 0;
      LocalResult local = nelder_mead(f, best.x, lower, upper,
                                      options.local_options);
      ++best.local_searches;
      if (local.value < best.value) {
        best.x = local.x;
        best.value = local.value;
        current = best.x;
        current_value = best.value;
      }
    }
    ++best.iterations;
  }

  // Final polish from the best state found.
  if (options.local_search_interval > 0) {
    LocalResult local =
        nelder_mead(f, best.x, lower, upper, options.local_options);
    ++best.local_searches;
    if (local.value < best.value) {
      best.x = local.x;
      best.value = local.value;
    }
  }
  return best;
}

}  // namespace parallax::anneal
