#include "anneal/dual_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace parallax::anneal {

namespace {

/// Rejects out-of-range options with a real error in release builds — the
/// same strictness util/parse applies to external input. Ranges follow
/// SciPy's dual_annealing parameter domain.
void validate(const std::vector<double>& lower,
              const std::vector<double>& upper, std::size_t n,
              const DualAnnealingOptions& options) {
  if (lower.size() != n || upper.size() != n) {
    throw std::invalid_argument(
        "dual_annealing: bounds must both have " + std::to_string(n) +
        " dimensions (got lower=" + std::to_string(lower.size()) +
        ", upper=" + std::to_string(upper.size()) + ")");
  }
  if (!(options.visit > 1.0) || !(options.visit < 3.0)) {
    throw std::invalid_argument(
        "dual_annealing: visit must be in (1, 3), got " +
        std::to_string(options.visit));
  }
  if (!(options.accept >= -1e4) || !(options.accept <= -5.0)) {
    throw std::invalid_argument(
        "dual_annealing: accept must be in [-1e4, -5], got " +
        std::to_string(options.accept));
  }
  if (!(options.initial_temperature > 0.0) ||
      !std::isfinite(options.initial_temperature)) {
    throw std::invalid_argument(
        "dual_annealing: initial_temperature must be positive and finite, "
        "got " +
        std::to_string(options.initial_temperature));
  }
  if (!(options.restart_temp_ratio > 0.0) ||
      !(options.restart_temp_ratio < 1.0)) {
    throw std::invalid_argument(
        "dual_annealing: restart_temp_ratio must be in (0, 1), got " +
        std::to_string(options.restart_temp_ratio));
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument(
        "dual_annealing: max_iterations must be >= 1, got " +
        std::to_string(options.max_iterations));
  }
  if (options.local_search_interval < 0) {
    throw std::invalid_argument(
        "dual_annealing: local_search_interval must be >= 0, got " +
        std::to_string(options.local_search_interval));
  }
  if (options.initial && options.initial->size() != n) {
    throw std::invalid_argument(
        "dual_annealing: initial state has " +
        std::to_string(options.initial->size()) + " dimensions, expected " +
        std::to_string(n));
  }
}

/// Draws a step from the Tsallis visiting distribution at temperature
/// `temperature` with shape `qv`. Implementation follows the standard GSA
/// formulation (Tsallis & Stariolo, 1996): a ratio of a Gaussian to a
/// power of another Gaussian's magnitude produces the heavy-tailed visit.
double visit_step(util::Rng& rng, double qv, double temperature) {
  const double factor1 = std::exp(std::log(temperature) / (qv - 1.0));
  const double factor2 = std::exp((4.0 - qv) * std::log(qv - 1.0));
  const double factor3 =
      std::exp((2.0 - qv) / (qv - 1.0) * std::log(2.0 / (3.0 - qv)));
  const double factor4 =
      std::sqrt(std::numbers::pi) * factor1 * factor2 /
      (factor3 * (3.0 - qv));
  const double factor5 = 1.0 / (qv - 1.0) - 0.5;
  const double d1 = 2.0 - factor5;
  const double factor6 = std::numbers::pi * (1.0 - factor5) /
                         std::sin(std::numbers::pi * (1.0 - factor5)) /
                         std::exp(std::lgamma(d1));
  const double sigma_x =
      std::exp(-(qv - 1.0) * std::log(factor6 / factor4) / (3.0 - qv));

  const double x = sigma_x * rng.normal();
  const double y = rng.normal();
  const double den =
      std::exp((qv - 1.0) * std::log(std::abs(y)) / (3.0 - qv));
  return den != 0.0 ? x / den : x;
}

/// Temperature-independent constants of the visiting distribution; the
/// single-coordinate hot path draws a million-plus steps per anneal, so the
/// six transcendental factors the legacy path recomputes per step are
/// hoisted here (factor1 — and through it sigma — is the only
/// temperature-dependent piece).
struct VisitConstants {
  double factor4_base = 0.0;  // factor4 without the factor1 term
  double factor6 = 0.0;
  double tail_exponent = 0.0;  // (qv - 1) / (3 - qv)

  explicit VisitConstants(double qv) {
    const double factor2 = std::exp((4.0 - qv) * std::log(qv - 1.0));
    const double factor3 =
        std::exp((2.0 - qv) / (qv - 1.0) * std::log(2.0 / (3.0 - qv)));
    factor4_base =
        std::sqrt(std::numbers::pi) * factor2 / (factor3 * (3.0 - qv));
    const double factor5 = 1.0 / (qv - 1.0) - 0.5;
    const double d1 = 2.0 - factor5;
    factor6 = std::numbers::pi * (1.0 - factor5) /
              std::sin(std::numbers::pi * (1.0 - factor5)) /
              std::exp(std::lgamma(d1));
    tail_exponent = (qv - 1.0) / (3.0 - qv);
  }

  /// sigma_x at this temperature (legacy visit_step's value, reassembled).
  [[nodiscard]] double sigma(double qv, double temperature) const {
    const double factor1 = std::exp(std::log(temperature) / (qv - 1.0));
    return std::exp(-(qv - 1.0) *
                    std::log(factor6 / (factor4_base * factor1)) /
                    (3.0 - qv));
  }

  [[nodiscard]] double step(util::Rng& rng, double sigma_x) const {
    const double x = sigma_x * rng.normal();
    const double y = rng.normal();
    const double den = std::exp(tail_exponent * std::log(std::abs(y)));
    return den != 0.0 ? x / den : x;
  }

  /// The same heavy-tailed step assembled from two pre-drawn normals (the
  /// batched stream's layout: numerator first, tail normal second).
  [[nodiscard]] double step_from(double num, double tail,
                                 double sigma_x) const {
    const double x = sigma_x * num;
    const double den = std::exp(tail_exponent * std::log(std::abs(tail)));
    return den != 0.0 ? x / den : x;
  }
};

/// Fills `out[0, count)` with standard normals via Box-Muller, keeping BOTH
/// halves of every pair (util::Rng::normal draws the same u1/u2 but discards
/// the sin half — one of the reasons the batched walk is a distinct stream).
void fill_normals(util::Rng& rng, double* out, std::size_t count) {
  std::size_t i = 0;
  while (i < count) {
    double u1 = rng.next_double();
    while (u1 <= 0.0) u1 = rng.next_double();
    const double u2 = rng.next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    out[i++] = r * std::cos(2.0 * std::numbers::pi * u2);
    if (i < count) out[i++] = r * std::sin(2.0 * std::numbers::pi * u2);
  }
}

}  // namespace

AnnealResult dual_annealing(const Objective& f,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper,
                            const DualAnnealingOptions& options) {
  const std::size_t n = lower.size();
  validate(lower, upper, n, options);
  if (options.batched_proposals) {
    throw std::invalid_argument(
        "dual_annealing: batched_proposals requires the incremental "
        "(single-coordinate) overload");
  }
  util::Rng rng(options.seed);

  auto clamp_wrap = [&](std::vector<double>& x) {
    // GSA wraps out-of-box coordinates back into the box (SciPy does the
    // same) so boundary states are not oversampled.
    for (std::size_t i = 0; i < n; ++i) {
      const double span = upper[i] - lower[i];
      if (span <= 0.0) {
        x[i] = lower[i];
        continue;
      }
      double v = std::fmod(x[i] - lower[i], span);
      if (v < 0) v += span;
      x[i] = lower[i] + v;
    }
  };

  std::vector<double> current(n);
  if (options.initial) {
    current = *options.initial;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = std::clamp(current[i], lower[i], upper[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = rng.uniform(lower[i], upper[i]);
    }
  }
  double current_value = f(current);

  AnnealResult best;
  best.x = current;
  best.value = current_value;
  best.evaluations = 1;

  const double t0 = options.initial_temperature;
  const double qv = options.visit;
  const double qa = options.accept;
  // GSA temperature schedule: T(k) = T0 * (2^{qv-1} - 1) /
  //                                   ((1+k)^{qv-1} - 1).
  const double t_coeff = std::pow(2.0, qv - 1.0) - 1.0;

  int accepted_since_local = 0;
  int k = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter, ++k) {
    double temperature =
        t0 * t_coeff / (std::pow(static_cast<double>(k) + 2.0, qv - 1.0) - 1.0);
    if (temperature < t0 * options.restart_temp_ratio) {
      k = 0;  // reanneal from the hot end
      temperature = t0;
      ++best.restarts;
    }

    // Propose: perturb every dimension with a heavy-tailed visit.
    std::vector<double> candidate = current;
    for (std::size_t i = 0; i < n; ++i) {
      const double span = upper[i] - lower[i];
      double step = visit_step(rng, qv, temperature);
      // Scale the raw step to the box size; clamp pathological tails.
      step = std::clamp(step, -1e8, 1e8);
      candidate[i] += step * span * 1e-2;
    }
    clamp_wrap(candidate);
    const double candidate_value = f(candidate);
    ++best.evaluations;

    bool accept = false;
    if (candidate_value <= current_value) {
      accept = true;
    } else {
      // Generalized Metropolis acceptance (Tsallis statistics).
      const double t_accept = temperature / static_cast<double>(k + 1);
      const double delta = (candidate_value - current_value) / t_accept;
      const double base = 1.0 + (qa - 1.0) * delta;
      if (base > 0.0) {
        const double p = std::exp(std::log(base) / (1.0 - qa));
        accept = rng.next_double() < std::min(1.0, p);
      }
    }

    if (accept) {
      current = candidate;
      current_value = candidate_value;
      ++accepted_since_local;
      if (current_value < best.value) {
        best.x = current;
        best.value = current_value;
      }
    }

    if (options.local_search_interval > 0 &&
        accepted_since_local >= options.local_search_interval) {
      accepted_since_local = 0;
      LocalResult local = nelder_mead(f, best.x, lower, upper,
                                      options.local_options);
      ++best.local_searches;
      best.evaluations += local.evaluations;
      if (local.value < best.value) {
        best.x = local.x;
        best.value = local.value;
        current = best.x;
        current_value = best.value;
      }
    }
    ++best.iterations;
  }

  // Final polish from the best state found.
  if (options.local_search_interval > 0) {
    LocalResult local =
        nelder_mead(f, best.x, lower, upper, options.local_options);
    ++best.local_searches;
    best.evaluations += local.evaluations;
    if (local.value < best.value) {
      best.x = local.x;
      best.value = local.value;
    }
  }
  return best;
}

AnnealResult dual_annealing(IncrementalObjective& objective,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper,
                            const DualAnnealingOptions& options) {
  const std::size_t sites = objective.sites();
  const std::size_t n = 2 * sites;
  validate(lower, upper, n, options);

  AnnealResult best;
  if (sites == 0) {
    best.value = objective.reset({});
    best.evaluations = 1;
    return best;
  }
  util::Rng rng(options.seed);

  auto wrap = [](double v, double lo, double hi) {
    const double span = hi - lo;
    if (span <= 0.0) return lo;
    double w = std::fmod(v - lo, span);
    if (w < 0) w += span;
    return lo + w;
  };

  std::vector<double> current(n);
  if (options.initial) {
    current = *options.initial;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = std::clamp(current[i], lower[i], upper[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = rng.uniform(lower[i], upper[i]);
    }
  }
  double current_value = objective.reset(current);

  best.x = current;
  best.value = current_value;
  best.evaluations = 1;

  const double t0 = options.initial_temperature;
  const double qv = options.visit;
  const double qa = options.accept;
  const double t_coeff = std::pow(2.0, qv - 1.0) - 1.0;
  const VisitConstants visit(qv);

  // Nelder-Mead probes score the exact full objective (same bits the
  // incremental path maintains), so a local win reloads cleanly via
  // reset().
  const Objective polish = [&](const std::vector<double>& x) {
    ++best.evaluations;
    return objective.full(x);
  };

  // One outer iteration proposes `sites` single-site moves, so the local
  // search cadence scales with the site count to match the full-vector
  // mode's per-sweep rhythm.
  const std::int64_t local_interval =
      static_cast<std::int64_t>(options.local_search_interval) *
      static_cast<std::int64_t>(sites);
  std::int64_t accepted_since_local = 0;

  const auto run_local_search = [&] {
    if (options.batched_proposals) {
      // Lean simplex over the shared incremental interface: O(n) per
      // iteration bookkeeping, probes scored with objective.full().
      LocalResult local =
          nelder_mead(objective, best.x, lower, upper, options.local_options);
      ++best.local_searches;
      best.evaluations += local.evaluations;
      if (local.value < best.value) {
        best.x = std::move(local.x);
        best.value = local.value;
        current = best.x;
        current_value = objective.reset(current);
        ++best.evaluations;
      }
      return;
    }
    LocalResult local =
        nelder_mead(polish, best.x, lower, upper, options.local_options);
    ++best.local_searches;
    if (local.value < best.value) {
      best.x = std::move(local.x);
      best.value = local.value;
      current = best.x;
      current_value = objective.reset(current);
      ++best.evaluations;
    }
  };

  // Batched proposal staging: every draw an outer iteration needs, in a
  // fixed layout (4 normals per site: x numerator, x tail, y numerator, y
  // tail; then one acceptance uniform per site), from a counter-based
  // stream keyed on the iteration number alone — so the accept loop below
  // is branch-light and the sequence never depends on acceptance history
  // or on the SIMD width of the scoring kernels.
  std::vector<double> normals, uniforms, steps;
  if (options.batched_proposals) {
    normals.resize(4 * sites);
    uniforms.resize(sites);
    steps.resize(2 * sites);
  }

  int k = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter, ++k) {
    double temperature =
        t0 * t_coeff / (std::pow(static_cast<double>(k) + 2.0, qv - 1.0) - 1.0);
    if (temperature < t0 * options.restart_temp_ratio) {
      k = 0;
      temperature = t0;
      ++best.restarts;
    }
    const double sigma = visit.sigma(qv, temperature);
    const double t_accept = temperature / static_cast<double>(k + 1);

    if (options.batched_proposals) {
      // `iter` (not the reanneal-reset k) keys the block so every outer
      // iteration consumes a distinct stream.
      util::Rng block(util::derive_seed(options.seed, "visit-block",
                                        static_cast<std::uint64_t>(iter)));
      fill_normals(block, normals.data(), normals.size());
      for (std::size_t q = 0; q < sites; ++q) {
        uniforms[q] = block.next_double();
      }
      for (std::size_t j = 0; j < 2 * sites; ++j) {
        steps[j] = std::clamp(
            visit.step_from(normals[2 * j], normals[2 * j + 1], sigma), -1e8,
            1e8);
      }
    }

    for (std::size_t q = 0; q < sites; ++q) {
      const std::size_t xi = 2 * q, yi = 2 * q + 1;
      double sx, sy;
      if (options.batched_proposals) {
        sx = steps[xi];
        sy = steps[yi];
      } else {
        sx = std::clamp(visit.step(rng, sigma), -1e8, 1e8);
        sy = std::clamp(visit.step(rng, sigma), -1e8, 1e8);
      }
      const double cx = wrap(current[xi] + sx * (upper[xi] - lower[xi]) * 1e-2,
                             lower[xi], upper[xi]);
      const double cy = wrap(current[yi] + sy * (upper[yi] - lower[yi]) * 1e-2,
                             lower[yi], upper[yi]);
      const double candidate_value = objective.propose(q, cx, cy);
      ++best.delta_evaluations;

      bool accept = false;
      if (candidate_value <= current_value) {
        accept = true;
      } else {
        const double delta = (candidate_value - current_value) / t_accept;
        const double base = 1.0 + (qa - 1.0) * delta;
        if (base > 0.0) {
          const double p = std::exp(std::log(base) / (1.0 - qa));
          const double u = options.batched_proposals ? uniforms[q]
                                                     : rng.next_double();
          accept = u < std::min(1.0, p);
        }
      }

      if (accept) {
        objective.commit();
        current[xi] = cx;
        current[yi] = cy;
        current_value = candidate_value;
        ++accepted_since_local;
        if (current_value < best.value) {
          best.x = current;
          best.value = current_value;
        }
      }

      if (local_interval > 0 && accepted_since_local >= local_interval) {
        accepted_since_local = 0;
        run_local_search();
      }
    }
    ++best.iterations;
  }

  if (options.local_search_interval > 0) run_local_search();
  return best;
}

}  // namespace parallax::anneal
