#include "anneal/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "anneal/multi_chain.hpp"
#include "anneal/nelder_mead.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parallax::anneal {

namespace {

/// Polish-only entrant: one lean Nelder-Mead descent from the entrant's
/// start state (warm start when present, else its own uniform draw).
AnnealResult run_polish(IncrementalObjective& objective,
                        const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        const DualAnnealingOptions& opts) {
  AnnealResult out;
  const std::size_t n = 2 * objective.sites();
  if (n == 0) {
    out.value = objective.reset({});
    out.evaluations = 1;
    return out;
  }
  std::vector<double> start(n);
  if (opts.initial) {
    if (opts.initial->size() != n) {
      throw std::invalid_argument(
          "race: polish entrant initial state has " +
          std::to_string(opts.initial->size()) + " dimensions, expected " +
          std::to_string(n));
    }
    start = *opts.initial;
    for (std::size_t i = 0; i < n; ++i) {
      start[i] = std::clamp(start[i], lower[i], upper[i]);
    }
  } else {
    util::Rng rng(opts.seed);
    for (std::size_t i = 0; i < n; ++i) {
      start[i] = rng.uniform(lower[i], upper[i]);
    }
  }
  const LocalResult local =
      nelder_mead(objective, std::move(start), lower, upper,
                  opts.local_options);
  out.x = local.x;
  out.value = local.value;
  out.evaluations = local.evaluations;
  out.local_searches = 1;
  return out;
}

}  // namespace

AnnealResult race(
    const std::function<std::unique_ptr<IncrementalObjective>()>&
        make_objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    const PortfolioOptions& options) {
  if (options.entrants.empty()) {
    throw std::invalid_argument("race: at least one entrant is required");
  }
  for (const PortfolioEntrant& e : options.entrants) {
    if (e.chains < 1) {
      throw std::invalid_argument("race: entrant '" + e.name +
                                  "' has chains < 1");
    }
  }

  const std::size_t count = options.entrants.size();
  std::vector<AnnealResult> results(count);
  std::vector<double> walls(count, 0.0);

  const auto run_entrant = [&](std::size_t i) {
    const PortfolioEntrant& e = options.entrants[i];
    DualAnnealingOptions opts = e.anneal;
    // Entrants explore independently even when configured identically.
    opts.seed = util::derive_seed(e.anneal.seed, "entrant", i);
    if (e.fresh_start) opts.initial.reset();

    const auto start = std::chrono::steady_clock::now();
    if (e.polish_only) {
      const std::unique_ptr<IncrementalObjective> objective = make_objective();
      results[i] = run_polish(*objective, lower, upper, opts);
    } else if (e.chains > 1) {
      // Chains run sequentially inside the entrant (pool = nullptr):
      // entrants are the unit of parallelism, and a pool's worker must not
      // re-enter parallel_for.
      MultiChainOptions mc;
      mc.chains = e.chains;
      mc.anneal = opts;
      mc.pool = nullptr;
      MultiChainResult reduced =
          multi_chain(make_objective, lower, upper, mc);
      AnnealResult r = std::move(reduced.best);
      // The account tracks the entrant's full spend, not just the winning
      // chain's share.
      r.evaluations = reduced.evaluations;
      r.delta_evaluations = reduced.delta_evaluations;
      r.restarts = reduced.restarts;
      r.local_searches = reduced.local_searches;
      results[i] = std::move(r);
    } else {
      const std::unique_ptr<IncrementalObjective> objective = make_objective();
      results[i] = dual_annealing(*objective, lower, upper, opts);
    }
    walls[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };

  if (options.pool != nullptr && count > 1) {
    options.pool->parallel_for(count, run_entrant);
  } else {
    for (std::size_t i = 0; i < count; ++i) run_entrant(i);
  }

  // Fixed selection order: ascending entrant index, strict `<` only — an
  // exact value tie keeps the lower index. Wall time is reported below but
  // never read here.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < count; ++i) {
    if (results[i].value < results[winner].value) winner = i;
  }

  std::vector<EntrantAccount> accounts(count);
  for (std::size_t i = 0; i < count; ++i) {
    accounts[i].name = options.entrants[i].name;
    accounts[i].value = results[i].value;
    accounts[i].wall_seconds = walls[i];
    accounts[i].evaluations = results[i].evaluations;
    accounts[i].delta_evaluations = results[i].delta_evaluations;
    accounts[i].winner = i == winner;
  }

  AnnealResult best = std::move(results[winner]);
  best.winner = options.entrants[winner].name;
  best.entrants = std::move(accounts);
  return best;
}

}  // namespace parallax::anneal
