// The only translation unit built with -mavx2 (plus -ffp-contract=off, see
// CMakeLists.txt). When the toolchain lacks -mavx2 support this file still
// compiles — the __AVX2__ guard swaps in never-called stubs and
// avx2_tu_compiled() reports false, so runtime dispatch simply skips the
// lane. Nothing here may be called unless avx2_tu_compiled() && the CPU
// reports AVX2; kernels.cpp enforces that.
#include "anneal/kernels_impl.hpp"

#include <cstddef>
#include <cstdint>

namespace parallax::anneal::kernels::detail {

#if defined(__AVX2__)

bool avx2_tu_compiled() noexcept { return true; }

void avx2_edge_terms_gather(const std::int32_t* idx, const double* w,
                            std::size_t count, double px, double py,
                            const double* xs, const double* ys,
                            double* out) noexcept {
  edge_terms_gather_impl<Avx2Lane>(idx, w, count, px, py, xs, ys, out);
}

void avx2_edge_terms_pairs(const std::int32_t* a, const std::int32_t* b,
                           const double* w, std::size_t count,
                           const double* xs, const double* ys,
                           double* out) noexcept {
  edge_terms_pairs_impl<Avx2Lane>(a, b, w, count, xs, ys, out);
}

std::size_t avx2_crowding_terms_excluding_self(
    const std::int32_t* idx, std::size_t count, std::int32_t self, double px,
    double py, const double* xs, const double* ys, double d_min, double denom,
    double weight, double* out) noexcept {
  return crowding_terms_impl<Avx2Lane, false>(idx, count, self, px, py, xs, ys,
                                              d_min, denom, weight, out);
}

std::size_t avx2_crowding_terms_above_self(
    const std::int32_t* idx, std::size_t count, std::int32_t self, double px,
    double py, const double* xs, const double* ys, double d_min, double denom,
    double weight, double* out) noexcept {
  return crowding_terms_impl<Avx2Lane, true>(idx, count, self, px, py, xs, ys,
                                             d_min, denom, weight, out);
}

#else  // !__AVX2__ — toolchain could not target AVX2; dispatch never lands here.

bool avx2_tu_compiled() noexcept { return false; }

void avx2_edge_terms_gather(const std::int32_t*, const double*, std::size_t,
                            double, double, const double*, const double*,
                            double*) noexcept {}

void avx2_edge_terms_pairs(const std::int32_t*, const std::int32_t*,
                           const double*, std::size_t, const double*,
                           const double*, double*) noexcept {}

std::size_t avx2_crowding_terms_excluding_self(const std::int32_t*,
                                               std::size_t, std::int32_t,
                                               double, double, const double*,
                                               const double*, double, double,
                                               double, double*) noexcept {
  return 0;
}

std::size_t avx2_crowding_terms_above_self(const std::int32_t*, std::size_t,
                                           std::int32_t, double, double,
                                           const double*, const double*,
                                           double, double, double,
                                           double*) noexcept {
  return 0;
}

#endif  // __AVX2__

}  // namespace parallax::anneal::kernels::detail
