#include "anneal/multi_chain.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parallax::anneal {

MultiChainResult multi_chain(
    const std::function<std::unique_ptr<IncrementalObjective>()>&
        make_objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    const MultiChainOptions& options) {
  if (options.chains < 1) {
    throw std::invalid_argument("multi_chain: chains must be >= 1, got " +
                                std::to_string(options.chains));
  }
  const auto chains = static_cast<std::size_t>(options.chains);
  std::vector<AnnealResult> results(chains);
  const auto run_chain = [&](std::size_t c) {
    DualAnnealingOptions chain_options = options.anneal;
    chain_options.seed =
        util::derive_seed(options.anneal.seed, "chain", c);
    const std::unique_ptr<IncrementalObjective> objective = make_objective();
    results[c] = dual_annealing(*objective, lower, upper, chain_options);
  };
  if (options.pool != nullptr && chains > 1) {
    options.pool->parallel_for(chains, run_chain);
  } else {
    for (std::size_t c = 0; c < chains; ++c) run_chain(c);
  }

  // Fixed reduction order: ascending chain index, strict `<` only — an
  // exact value tie keeps the lower index, so the winner is a pure
  // function of the seeds.
  MultiChainResult out;
  out.chains = options.chains;
  std::size_t winner = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    if (results[c].value < results[winner].value) winner = c;
    out.evaluations += results[c].evaluations;
    out.delta_evaluations += results[c].delta_evaluations;
    out.restarts += results[c].restarts;
    out.local_searches += results[c].local_searches;
  }
  out.winner = static_cast<int>(winner);
  out.best = std::move(results[winner]);
  return out;
}

}  // namespace parallax::anneal
