// Shared lane abstraction + kernel bodies, included by kernels.cpp (scalar,
// SSE2) and kernels_avx2.cpp (AVX2, compiled with -mavx2). Each lane policy
// exposes the same 4-wide vocabulary so the kernel bodies are written once;
// kWidth is uniformly 4 (SSE2 pairs two __m128d) so blocking decisions never
// depend on the dispatched lane. All arithmetic here must stay plain
// sub/mul/add/sqrt — both TUs are built with -ffp-contract=off so the
// compiler cannot fuse them into FMAs, which is what makes every lane
// bit-identical to the scalar expressions in placement/objective.cpp.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace parallax::anneal::kernels::detail {

struct ScalarLane {
  static constexpr unsigned kWidth = 4;
  struct Vec {
    double v[kWidth];
  };
  static Vec broadcast(double x) noexcept { return {{x, x, x, x}}; }
  static Vec load(const double* p) noexcept { return {{p[0], p[1], p[2], p[3]}}; }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    return {{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]}};
  }
  static Vec add(Vec a, Vec b) noexcept {
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
  }
  static Vec sub(Vec a, Vec b) noexcept {
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2], a.v[3] - b.v[3]}};
  }
  static Vec mul(Vec a, Vec b) noexcept {
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
  }
  static Vec sqrt(Vec a) noexcept {
    return {{std::sqrt(a.v[0]), std::sqrt(a.v[1]), std::sqrt(a.v[2]),
             std::sqrt(a.v[3])}};
  }
  static void store(double* p, Vec a) noexcept {
    p[0] = a.v[0];
    p[1] = a.v[1];
    p[2] = a.v[2];
    p[3] = a.v[3];
  }
  static int lt_mask(Vec a, Vec b) noexcept {
    int mask = 0;
    for (unsigned l = 0; l < kWidth; ++l) {
      if (a.v[l] < b.v[l]) mask |= 1 << l;
    }
    return mask;
  }
};

#if defined(__x86_64__) || defined(_M_X64)
// SSE2 is part of the x86-64 baseline, so this lane needs no extra -m flags.
struct Sse2Lane {
  static constexpr unsigned kWidth = 4;
  struct Vec {
    __m128d lo, hi;
  };
  static Vec broadcast(double x) noexcept {
    const __m128d v = _mm_set1_pd(x);
    return {v, v};
  }
  static Vec load(const double* p) noexcept {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    return {_mm_set_pd(base[idx[1]], base[idx[0]]),
            _mm_set_pd(base[idx[3]], base[idx[2]])};
  }
  static Vec add(Vec a, Vec b) noexcept {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  static Vec sub(Vec a, Vec b) noexcept {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  static Vec mul(Vec a, Vec b) noexcept {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  static Vec sqrt(Vec a) noexcept {
    return {_mm_sqrt_pd(a.lo), _mm_sqrt_pd(a.hi)};
  }
  static void store(double* p, Vec a) noexcept {
    _mm_storeu_pd(p, a.lo);
    _mm_storeu_pd(p + 2, a.hi);
  }
  static int lt_mask(Vec a, Vec b) noexcept {
    return _mm_movemask_pd(_mm_cmplt_pd(a.lo, b.lo)) |
           (_mm_movemask_pd(_mm_cmplt_pd(a.hi, b.hi)) << 2);
  }
};
#endif  // x86-64

#if defined(__AVX2__)
struct Avx2Lane {
  static constexpr unsigned kWidth = 4;
  using Vec = __m256d;
  static Vec broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  static Vec load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_pd(base, vi, 8);
  }
  static Vec add(Vec a, Vec b) noexcept { return _mm256_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) noexcept { return _mm256_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm256_mul_pd(a, b); }
  static Vec sqrt(Vec a) noexcept { return _mm256_sqrt_pd(a); }
  static void store(double* p, Vec a) noexcept { _mm256_storeu_pd(p, a); }
  static int lt_mask(Vec a, Vec b) noexcept {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LT_OQ));
  }
};
#endif  // __AVX2__

// out[i] = w[i] * sqrt((px - xs[idx[i]])^2 + (py - ys[idx[i]])^2)
template <class L>
void edge_terms_gather_impl(const std::int32_t* idx, const double* w,
                            std::size_t count, double px, double py,
                            const double* xs, const double* ys,
                            double* out) noexcept {
  const auto vpx = L::broadcast(px);
  const auto vpy = L::broadcast(py);
  std::size_t i = 0;
  for (; i + L::kWidth <= count; i += L::kWidth) {
    const auto dx = L::sub(vpx, L::gather(xs, idx + i));
    const auto dy = L::sub(vpy, L::gather(ys, idx + i));
    const auto dsq = L::add(L::mul(dx, dx), L::mul(dy, dy));
    L::store(out + i, L::mul(L::load(w + i), L::sqrt(dsq)));
  }
  for (; i < count; ++i) {
    const double dx = px - xs[idx[i]];
    const double dy = py - ys[idx[i]];
    out[i] = w[i] * std::sqrt(dx * dx + dy * dy);
  }
}

// out[e] = w[e] * sqrt((xs[a[e]] - xs[b[e]])^2 + (ys[a[e]] - ys[b[e]])^2)
template <class L>
void edge_terms_pairs_impl(const std::int32_t* a, const std::int32_t* b,
                           const double* w, std::size_t count,
                           const double* xs, const double* ys,
                           double* out) noexcept {
  std::size_t i = 0;
  for (; i + L::kWidth <= count; i += L::kWidth) {
    const auto dx = L::sub(L::gather(xs, a + i), L::gather(xs, b + i));
    const auto dy = L::sub(L::gather(ys, a + i), L::gather(ys, b + i));
    const auto dsq = L::add(L::mul(dx, dx), L::mul(dy, dy));
    L::store(out + i, L::mul(L::load(w + i), L::sqrt(dsq)));
  }
  for (; i < count; ++i) {
    const double dx = xs[a[i]] - xs[b[i]];
    const double dy = ys[a[i]] - ys[b[i]];
    out[i] = w[i] * std::sqrt(dx * dx + dy * dy);
  }
}

// Crowding scan. The vector part computes dsq 4-wide and uses a movemask to
// skip blocks with no candidate inside the cutoff; the (rare) passing lanes
// finish with the exact scalar formula ((weight * v) * v) / denom, where dsq
// is already bit-identical either way. kAboveSelf selects the pair-dedup
// rule (keep j > self) instead of the skip-self rule (drop j == self).
template <class L, bool kAboveSelf>
std::size_t crowding_terms_impl(const std::int32_t* idx, std::size_t count,
                                std::int32_t self, double px, double py,
                                const double* xs, const double* ys,
                                double d_min, double denom, double weight,
                                double* out) noexcept {
  const auto vpx = L::broadcast(px);
  const auto vpy = L::broadcast(py);
  const auto vdenom = L::broadcast(denom);
  std::size_t produced = 0;
  std::size_t i = 0;
  for (; i + L::kWidth <= count; i += L::kWidth) {
    const auto dx = L::sub(vpx, L::gather(xs, idx + i));
    const auto dy = L::sub(vpy, L::gather(ys, idx + i));
    const auto dsq = L::add(L::mul(dx, dx), L::mul(dy, dy));
    const int mask = L::lt_mask(dsq, vdenom);
    if (mask == 0) continue;
    double dsqv[L::kWidth];
    L::store(dsqv, dsq);
    for (unsigned l = 0; l < L::kWidth; ++l) {
      if (((mask >> l) & 1) == 0) continue;
      const std::int32_t j = idx[i + l];
      if (kAboveSelf ? (j <= self) : (j == self)) continue;
      const double v = d_min - std::sqrt(dsqv[l]);
      out[produced++] = weight * v * v / denom;
    }
  }
  for (; i < count; ++i) {
    const std::int32_t j = idx[i];
    if (kAboveSelf ? (j <= self) : (j == self)) continue;
    const double dx = px - xs[j];
    const double dy = py - ys[j];
    const double dsq = dx * dx + dy * dy;
    if (!(dsq < denom)) continue;
    const double v = d_min - std::sqrt(dsq);
    out[produced++] = weight * v * v / denom;
  }
  return produced;
}

}  // namespace parallax::anneal::kernels::detail
