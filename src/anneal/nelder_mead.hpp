// Nelder-Mead downhill simplex, used as the local-search phase of dual
// annealing (mirroring SciPy's dual_annealing, which runs a local minimizer
// from promising annealer states).
//
// Two overloads share the options/result types and the box-clamp semantics:
//   * the legacy callable overload — numerics frozen (its iterates are part
//     of the legacy full-vector anneal fingerprint);
//   * the IncrementalObjective overload — the shared anneal objective/budget
//     interface, so Nelder-Mead can participate in a raced portfolio budget.
//     It evaluates f.full() and keeps simplex bookkeeping O(n) per iteration
//     (flat vertex storage, running coordinate totals for the centroid)
//     instead of the legacy O(n^2), which is what makes polish affordable at
//     placement dimensionality. Deterministic, but not bit-equal to the
//     legacy overload — callers expose it only behind fingerprint-visible
//     modes.
//
// Both overloads validate their inputs with std::invalid_argument (like
// dual_annealing) instead of debug asserts.
#pragma once

#include <functional>
#include <vector>

#include "anneal/objective.hpp"

namespace parallax::anneal {

using Objective = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  int max_evaluations = 2000;
  double x_tolerance = 1e-8;
  double f_tolerance = 1e-10;
  double initial_step = 0.05;
};

struct LocalResult {
  std::vector<double> x;
  double value = 0.0;
  int evaluations = 0;
};

/// Minimizes `f` starting from `x0`. Coordinates are clamped to
/// [lower, upper] per dimension before each evaluation (box constraints).
[[nodiscard]] LocalResult nelder_mead(const Objective& f,
                                      std::vector<double> x0,
                                      const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      const NelderMeadOptions& options = {});

/// Same optimizer over the shared incremental-objective interface: each
/// probe is scored with f.full() (the loaded state is never touched), and
/// `options.max_evaluations` is the evaluation budget a portfolio race
/// charges against. x0 must have exactly 2 * f.sites() coordinates.
[[nodiscard]] LocalResult nelder_mead(IncrementalObjective& f,
                                      std::vector<double> x0,
                                      const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      const NelderMeadOptions& options = {});

}  // namespace parallax::anneal
