// Nelder-Mead downhill simplex, used as the local-search phase of dual
// annealing (mirroring SciPy's dual_annealing, which runs a local minimizer
// from promising annealer states).
#pragma once

#include <functional>
#include <vector>

namespace parallax::anneal {

using Objective = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  int max_evaluations = 2000;
  double x_tolerance = 1e-8;
  double f_tolerance = 1e-10;
  double initial_step = 0.05;
};

struct LocalResult {
  std::vector<double> x;
  double value = 0.0;
  int evaluations = 0;
};

/// Minimizes `f` starting from `x0`. Coordinates are clamped to
/// [lower, upper] per dimension before each evaluation (box constraints).
[[nodiscard]] LocalResult nelder_mead(const Objective& f,
                                      std::vector<double> x0,
                                      const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      const NelderMeadOptions& options = {});

}  // namespace parallax::anneal
