// Batched distance/edge-cost kernels for the anneal hot loops, dispatched at
// runtime over SIMD lanes (scalar / SSE2 / AVX2). Every kernel computes the
// *same per-term doubles* as the scalar expressions in
// placement::DeltaPlacementObjective — sub/mul/add/div/sqrt are all IEEE-754
// correctly rounded elementwise, the kernel translation units are compiled
// with -ffp-contract=off (no FMA contraction), and term accumulation stays in
// util::ExactSum (whose add/subtract are associative) — so kernel output is
// bit-identical to the scalar path on every lane, which is what keeps cached
// fingerprints and goldens valid regardless of the host CPU. Locked by the
// cross-lane fuzz tests in tests/test_kernels.cpp.
//
// Lane selection: widest available lane by default (AVX2 when the binary
// carries the AVX2 translation unit and the CPU reports support, else SSE2 on
// x86-64, else the portable scalar fallback). The PARALLAX_SIMD environment
// knob (scalar|sse2|avx2|auto) overrides the choice for CI legs and bit-
// identity tests; tests can also force a lane programmatically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace parallax::anneal::kernels {

enum class Lane : std::uint8_t {
  kScalar = 0,  // portable 4-wide manually unrolled fallback
  kSse2 = 1,    // 2x2 doubles per step (x86-64 baseline)
  kAvx2 = 2,    // 4 doubles per step, hardware gather
};

/// Stable lowercase name ("scalar", "sse2", "avx2") — the PARALLAX_SIMD
/// vocabulary and the perf-snapshot field value.
[[nodiscard]] const char* lane_name(Lane lane) noexcept;

/// Whether this build + CPU can run the lane (kScalar is always available).
[[nodiscard]] bool lane_available(Lane lane) noexcept;

/// The lane every kernel below currently dispatches to. Resolved once from
/// PARALLAX_SIMD (an unavailable or unknown value falls back to the widest
/// available lane, with a one-time stderr note), unless a test forced one.
[[nodiscard]] Lane active_lane() noexcept;

/// Test hook: pin dispatch to `lane` until clear_forced_lane(). Throws
/// std::invalid_argument if the lane is unavailable on this build/CPU. Not
/// thread-safe against concurrent kernel calls — tests only.
void force_lane(Lane lane);
void clear_forced_lane() noexcept;

// --- kernels ------------------------------------------------------------------
// out[i] = w[i] * sqrt((px - xs[idx[i]])^2 + (py - ys[idx[i]])^2)
// (the per-qubit CSR adjacency gather of DeltaPlacementObjective::propose).
void edge_terms_gather(const std::int32_t* idx, const double* w,
                       std::size_t count, double px, double py,
                       const double* xs, const double* ys,
                       double* out) noexcept;

// out[e] = w[e] * sqrt((xs[a[e]] - xs[b[e]])^2 + (ys[a[e]] - ys[b[e]])^2)
// (the full re-score edge loop over the SoA edge list).
void edge_terms_pairs(const std::int32_t* a, const std::int32_t* b,
                      const double* w, std::size_t count, const double* xs,
                      const double* ys, double* out) noexcept;

// Crowding-grid neighbor scan: for each candidate j = idx[i], computes
// dsq = (px - xs[j])^2 + (py - ys[j])^2 and, when dsq < denom and j passes
// the exclusion rule, appends weight * v * v / denom with v = d_min -
// sqrt(dsq) to `out` (caller guarantees capacity >= count). Returns the
// number of terms appended. Two exclusion rules match the two scalar loops:
//   * excluding_self: skips j == self (propose's scan against all others);
//   * above_self:     keeps only j > self (the pair-dedup full re-score).
std::size_t crowding_terms_excluding_self(const std::int32_t* idx,
                                          std::size_t count, std::int32_t self,
                                          double px, double py,
                                          const double* xs, const double* ys,
                                          double d_min, double denom,
                                          double weight, double* out) noexcept;

std::size_t crowding_terms_above_self(const std::int32_t* idx,
                                      std::size_t count, std::int32_t self,
                                      double px, double py, const double* xs,
                                      const double* ys, double d_min,
                                      double denom, double weight,
                                      double* out) noexcept;

}  // namespace parallax::anneal::kernels
