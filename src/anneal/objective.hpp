// Incremental (delta-cost) objective interface for single-coordinate
// annealing. A state is `sites()` movable 2D sites, exposed at the interface
// boundary as a flat interleaved vector (x0, y0, x1, y1, ...) so warm starts
// and Nelder-Mead refinement interoperate with the full-vector code paths;
// implementations keep whatever internal layout (typically SoA) they like.
//
// Contract — the reason this interface exists at all:
//   * value() after any sequence of reset/propose/commit calls is
//     bit-identical to full() of the same geometry. No drifting
//     accumulators: implementations must use exact or recompute-local
//     arithmetic (see util::ExactSum).
//   * propose() is read-only on the logical state and costs
//     O(local interactions of the moved site), not O(all sites).
//   * commit() applies exactly the last propose()d move.
#pragma once

#include <cstddef>
#include <vector>

namespace parallax::anneal {

class IncrementalObjective {
 public:
  virtual ~IncrementalObjective() = default;

  /// Number of movable sites; state vectors have 2 * sites() coordinates.
  [[nodiscard]] virtual std::size_t sites() const noexcept = 0;

  /// Loads a full state and returns its cost (one full evaluation).
  virtual double reset(const std::vector<double>& coords) = 0;

  /// Cost of the currently loaded state — the same bits the loading
  /// reset()/commit() produced.
  [[nodiscard]] virtual double value() const noexcept = 0;

  /// Cost if site q moved to (x, y). Does not change the logical state;
  /// the move may be applied afterwards with commit().
  virtual double propose(std::size_t q, double x, double y) = 0;

  /// Applies the last propose()d move; value() becomes the proposed cost.
  virtual void commit() = 0;

  /// Writes the current state into `coords` (resized to 2 * sites()).
  virtual void snapshot(std::vector<double>& coords) const = 0;

  /// Scores an arbitrary state from scratch without touching the loaded
  /// one (scratch buffers may be reused, hence non-const). Exactly the
  /// arithmetic reset() uses — the fuzz oracle for the bit-identity
  /// contract.
  virtual double full(const std::vector<double>& coords) = 0;
};

}  // namespace parallax::anneal
