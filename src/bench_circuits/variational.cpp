// Variational / chemistry benchmarks: GCM (generator coordinate method),
// QGAN (quantum generative adversarial network), VQE (variational quantum
// eigensolver), QAOA (quantum alternating operator ansatz).
#include <numbers>

#include "bench_circuits/registry.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

namespace {
constexpr double kPi = std::numbers::pi;

/// Pauli-string evolution exp(-i theta/2 * P) for P a Z-string over
/// `qubits`, with X/Y basis changes given per qubit ('x', 'y', 'z'). The
/// CX ladder entangles the string onto its last qubit — the workhorse of
/// UCCSD-style ansatze.
void pauli_evolution(circuit::Circuit& c,
                     const std::vector<std::int32_t>& qubits,
                     const std::string& basis, double theta) {
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (basis[i] == 'x') {
      c.h(qubits[i]);
    } else if (basis[i] == 'y') {
      c.rx(qubits[i], kPi / 2);
    }
  }
  for (std::size_t i = 0; i + 1 < qubits.size(); ++i) {
    c.cx(qubits[i], qubits[i + 1]);
  }
  c.rz(qubits.back(), theta);
  for (std::size_t i = qubits.size() - 1; i >= 1; --i) {
    c.cx(qubits[i - 1], qubits[i]);
  }
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (basis[i] == 'x') {
      c.h(qubits[i]);
    } else if (basis[i] == 'y') {
      c.rx(qubits[i], -kPi / 2);
    }
  }
}

}  // namespace

circuit::Circuit make_gcm(std::int32_t n_qubits, const GenOptions& options) {
  // Generator coordinate method (Li et al., QASMBench): short Hamiltonian-
  // ansatz blocks — paired XX/YY rotations between neighbouring orbitals
  // plus single-qubit generator rotations.
  circuit::Circuit c(n_qubits, "GCM");
  util::Rng rng(options.seed);
  // 11 blocks x 12 neighbour pairs x 4 CZ = 528 CZs at 13 qubits — the
  // paper's Fig. 9 GCM count.
  const int blocks = 11;
  for (int block = 0; block < blocks; ++block) {
    for (std::int32_t q = 0; q < n_qubits; ++q) {
      c.ry(q, rng.uniform(-kPi, kPi));
    }
    for (int parity = 0; parity < 2; ++parity) {
      for (std::int32_t q = parity; q + 1 < n_qubits; q += 2) {
        pauli_evolution(c, {q, q + 1}, "xx", rng.uniform(-1, 1));
        pauli_evolution(c, {q, q + 1}, "yy", rng.uniform(-1, 1));
      }
    }
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_qgan(std::int32_t n_qubits, int layers,
                           const GenOptions& options) {
  // QGAN ansatz (Zoufal et al. style): alternating RY rotation layers and
  // linear CZ entanglement, with a final "discriminator" block coupling the
  // two register halves.
  circuit::Circuit c(n_qubits, "QGAN");
  util::Rng rng(options.seed);
  for (int layer = 0; layer < layers; ++layer) {
    for (std::int32_t q = 0; q < n_qubits; ++q) {
      c.ry(q, rng.uniform(-kPi, kPi));
    }
    for (std::int32_t q = 0; q + 1 < n_qubits; ++q) c.cz(q, q + 1);
  }
  // Generator-discriminator coupling: half-to-half CX bridges.
  const std::int32_t half = n_qubits / 2;
  for (std::int32_t q = 0; q < half; ++q) {
    c.cx(q, half + q);
    c.ry(half + q, rng.uniform(-kPi, kPi));
  }
  for (std::int32_t q = 0; q < n_qubits; ++q) c.ry(q, rng.uniform(-kPi, kPi));
  c.measure_all();
  return c;
}

circuit::Circuit make_vqe(std::int32_t n_qubits, int layers,
                          const GenOptions& options) {
  // UCCSD-flavoured VQE: single-excitation (2-qubit XY) terms between
  // orbital neighbours and double-excitation (4-qubit) terms across orbital
  // quadruples. The paper's 28-qubit instance is ~450k gates; `layers`
  // scales the term count (GenOptions::full_scale selects the paper scale
  // via the registry).
  circuit::Circuit c(n_qubits, "VQE");
  util::Rng rng(options.seed);
  // Hartree-Fock-like reference state.
  for (std::int32_t q = 0; q < n_qubits / 2; ++q) c.x(q);

  for (int layer = 0; layer < layers; ++layer) {
    // Single excitations: neighbouring orbital pairs.
    for (std::int32_t q = 0; q + 1 < n_qubits; ++q) {
      const double theta = rng.uniform(-0.5, 0.5);
      pauli_evolution(c, {q, q + 1}, "xy", theta);
      pauli_evolution(c, {q, q + 1}, "yx", -theta);
    }
    // Double excitations: stride-based quadruples (i, i+1, j, j+1).
    for (std::int32_t i = 0; i + 3 < n_qubits; i += 2) {
      const std::int32_t j = i + 2;
      const double theta = rng.uniform(-0.25, 0.25);
      pauli_evolution(c, {i, i + 1, j, j + 1}, "xxxy", theta);
      pauli_evolution(c, {i, i + 1, j, j + 1}, "yyyx", -theta);
    }
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_qaoa(std::int32_t n_nodes, int p_rounds,
                           const GenOptions& options) {
  // MaxCut QAOA on a random 3-regular graph (Farhi & Harrow instance
  // family): H^n, then p rounds of cost (RZZ per edge) + mixer (RX).
  circuit::Circuit c(n_nodes, "QAOA");
  util::Rng rng(options.seed);

  // Random near-3-regular graph by edge swapping on a ring + chords.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t q = 0; q < n_nodes; ++q) {
    edges.push_back({q, (q + 1) % n_nodes});
  }
  for (std::int32_t q = 0; q < n_nodes / 2; ++q) {
    const auto a = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(n_nodes)));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(n_nodes)));
    if (a != b) edges.push_back({std::min(a, b), std::max(a, b)});
  }

  for (std::int32_t q = 0; q < n_nodes; ++q) c.h(q);
  for (int round = 0; round < p_rounds; ++round) {
    const double gamma = rng.uniform(0, kPi);
    const double beta = rng.uniform(0, kPi / 2);
    for (const auto& [a, b] : edges) c.rzz(a, b, gamma);
    for (std::int32_t q = 0; q < n_nodes; ++q) c.rx(q, 2 * beta);
  }
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
