// Arithmetic benchmarks: ADD (Cuccaro ripple-carry adder), MLT (shift-and-
// add multiplier), SQRT (Grover-based square-root search).
#include <numbers>

#include "bench_circuits/registry.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

namespace {
constexpr double kPi = std::numbers::pi;

/// MAJ block of the Cuccaro adder (quant-ph/0410184 Fig. 2).
void maj(circuit::Circuit& c, std::int32_t a, std::int32_t b,
         std::int32_t carry) {
  c.cx(carry, b);
  c.cx(carry, a);
  c.ccx(a, b, carry);
}

/// UMA (2-CNOT version) block of the Cuccaro adder.
void uma(circuit::Circuit& c, std::int32_t a, std::int32_t b,
         std::int32_t carry) {
  c.ccx(a, b, carry);
  c.cx(carry, a);
  c.cx(a, b);
}

/// Multi-controlled X with a clean-ancilla Toffoli ladder. `ancillas` must
/// hold at least controls.size() - 2 qubits for controls.size() > 2.
void mcx(circuit::Circuit& c, const std::vector<std::int32_t>& controls,
         std::int32_t target, const std::vector<std::int32_t>& ancillas) {
  if (controls.empty()) {
    c.x(target);
    return;
  }
  if (controls.size() == 1) {
    c.cx(controls[0], target);
    return;
  }
  if (controls.size() == 2) {
    c.ccx(controls[0], controls[1], target);
    return;
  }
  // Ladder up: anc[0] = c0 AND c1; anc[i] = anc[i-1] AND c[i+1].
  const std::size_t k = controls.size();
  c.ccx(controls[0], controls[1], ancillas[0]);
  for (std::size_t i = 2; i + 1 < k; ++i) {
    c.ccx(ancillas[i - 2], controls[i], ancillas[i - 1]);
  }
  c.ccx(ancillas[k - 3], controls[k - 1], target);
  // Uncompute the ladder.
  for (std::size_t i = k - 2; i >= 2; --i) {
    c.ccx(ancillas[i - 2], controls[i], ancillas[i - 1]);
  }
  c.ccx(controls[0], controls[1], ancillas[0]);
}

}  // namespace

circuit::Circuit make_add(std::int32_t n_bits, const GenOptions& options) {
  // Layout: cin | a[0..n) | b[0..n)  ->  2n + 1 qubits (paper: n = 4 -> 9).
  const std::int32_t n = n_bits;
  circuit::Circuit c(2 * n + 1, "ADD");
  util::Rng rng(options.seed);
  const std::int32_t cin = 0;
  auto qa = [n](std::int32_t i) { return 1 + i; };
  auto qb = [n](std::int32_t i) { return 1 + n + i; };
  (void)n;

  // Random input state so the adder computes something nontrivial.
  for (std::int32_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.5)) c.x(qa(i));
    if (rng.bernoulli(0.5)) c.x(qb(i));
  }

  maj(c, cin, qb(0), qa(0));
  for (std::int32_t i = 1; i < n; ++i) maj(c, qa(i - 1), qb(i), qa(i));
  // No explicit carry-out qubit at the paper's size; fold straight back.
  for (std::int32_t i = n - 1; i >= 1; --i) uma(c, qa(i - 1), qb(i), qa(i));
  uma(c, cin, qb(0), qa(0));
  c.measure_all();
  return c;
}

circuit::Circuit make_mlt(std::int32_t n_bits, const GenOptions& options) {
  // Shift-and-add multiplier for two n-bit registers into a 2n-bit product
  // would need 4n+ qubits; the QASMBench-scale MLT uses truncated partial
  // products. Layout (n=2 -> 10 qubits): a[2] b[2] p[4] anc[2].
  const std::int32_t n = n_bits;
  circuit::Circuit c(4 * n + 2, "MLT");
  util::Rng rng(options.seed);
  auto qa = [](std::int32_t i) { return i; };
  auto qb = [n](std::int32_t i) { return n + i; };
  auto qp = [n](std::int32_t i) { return 2 * n + i; };
  auto anc = [n](std::int32_t i) { return 4 * n + i; };

  for (std::int32_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.5)) c.x(qa(i));
    if (rng.bernoulli(0.5)) c.x(qb(i));
  }

  // Multiply-accumulate passes of schoolbook partial products:
  // p[i+j] ^= a[i] AND b[j], with carry propagation via a Toffoli into the
  // next product bit. Four passes mirror the repeated controlled-adder
  // structure (and gate count) of the QASMBench multiplier.
  const int passes = 4;
  for (int pass = 0; pass < passes; ++pass) {
    for (std::int32_t i = 0; i < n; ++i) {
      for (std::int32_t j = 0; j < n; ++j) {
        // anc0 = a[i] AND b[j]
        c.ccx(qa(i), qb(j), anc(0));
        // Carry: if the product bit is already set, carry into the next bit.
        if (i + j + 1 < 2 * n) c.ccx(anc(0), qp(i + j), qp(i + j + 1));
        c.cx(anc(0), qp(i + j));
        // Uncompute the ancilla.
        c.ccx(qa(i), qb(j), anc(0));
      }
    }
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_sqrt(std::int32_t n_qubits, const GenOptions& options) {
  // Grover search for x with x*x == N over a small register (Grover 1998);
  // QASMBench's sqrt uses an arithmetic oracle + diffusion. We build the
  // same shape: search register s, work register w, oracle flag, ancillas.
  // Layout (paper: 18): s[5] w[5] flag anc[7].
  const std::int32_t n = n_qubits;
  const std::int32_t s_bits = (n - 1) / 3 + 1;      // 5 for n = 18
  const std::int32_t w_bits = s_bits;
  const std::int32_t flag = 2 * s_bits;
  const std::int32_t n_anc = n - 2 * s_bits - 1;
  circuit::Circuit c(n, "SQRT");
  util::Rng rng(options.seed);

  std::vector<std::int32_t> search(static_cast<std::size_t>(s_bits));
  for (std::int32_t i = 0; i < s_bits; ++i) search[static_cast<std::size_t>(i)] = i;
  std::vector<std::int32_t> ancillas;
  for (std::int32_t i = 0; i < n_anc; ++i) ancillas.push_back(flag + 1 + i);

  for (std::int32_t q : search) c.h(q);
  c.x(flag);
  c.h(flag);  // phase-kickback flag in |->

  const int grover_rounds = 2;
  for (int round = 0; round < grover_rounds; ++round) {
    // Oracle: squaring sketch into w (CCX partial products), compare, kick
    // back, uncompute. The arithmetic mirrors MLT's partial-product core.
    // Squaring sketch: cross terms x_i AND x_j via CCX; the diagonal
    // x_i AND x_i = x_i is a plain CX.
    auto product_term = [&](std::int32_t i, std::int32_t j) {
      if (i == j) {
        c.cx(search[static_cast<std::size_t>(i)], s_bits + i);
      } else {
        c.ccx(search[static_cast<std::size_t>(i)],
              search[static_cast<std::size_t>(j)], s_bits + i);
      }
    };
    for (std::int32_t i = 0; i < s_bits; ++i) {
      for (std::int32_t j = 0; j <= i && i + j < w_bits; ++j) {
        product_term(i, j);
      }
    }
    mcx(c, {s_bits + 0, s_bits + 1, s_bits + 2}, flag, ancillas);
    for (std::int32_t i = s_bits - 1; i >= 0; --i) {
      for (std::int32_t j = std::min(i, w_bits - 1 - i); j >= 0; --j) {
        product_term(i, j);
      }
    }
    // Diffusion over the search register.
    for (std::int32_t q : search) c.h(q);
    for (std::int32_t q : search) c.x(q);
    c.h(search.back());
    mcx(c, std::vector<std::int32_t>(search.begin(), search.end() - 1),
        search.back(), ancillas);
    c.h(search.back());
    for (std::int32_t q : search) c.x(q);
    for (std::int32_t q : search) c.h(q);
  }
  c.rz(flag, rng.uniform(0, kPi));  // dephase the flag (cosmetic variety)
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
