// The paper's evaluation suite (Table III): C++ generators for all 18
// benchmarks at the paper's qubit counts. The original evaluation reads
// QASMBench/ArQTiC QASM files; we regenerate each circuit from its published
// construction so the repository is self-contained — the structural
// properties that drive every result (qubit connectivity, 2q-gate density,
// depth) match the source circuits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace parallax::bench_circuits {

struct GenOptions {
  std::uint64_t seed = 0xBE7CULL;
  /// VQE at the paper's ~450k-gate scale did not finish compiling under
  /// ELDI in 24 hours; the default generates a reduced-depth VQE so the
  /// whole harness runs in minutes. Set true (or PARALLAX_FULL_SCALE=1 in
  /// the benches) for the paper-scale circuit.
  bool full_scale = false;
};

struct BenchmarkInfo {
  std::string acronym;     // paper Table III name (e.g. "QAOA")
  std::int32_t qubits;     // paper qubit count
  std::string description; // paper Table III description
  std::function<circuit::Circuit(const GenOptions&)> make;
};

/// All 18 benchmarks in the paper's Table III order.
[[nodiscard]] const std::vector<BenchmarkInfo>& all_benchmarks();

/// Generates one benchmark by acronym (case-sensitive). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] circuit::Circuit make_benchmark(const std::string& acronym,
                                              const GenOptions& options = {});

// Individual generators (exposed for tests and custom scales).
[[nodiscard]] circuit::Circuit make_add(std::int32_t n_bits,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_adv(std::int32_t side, int depth,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_gcm(std::int32_t n_qubits,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_hsb(std::int32_t n_qubits, int steps,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_hlf(std::int32_t n_qubits,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_knn(std::int32_t n_features,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_mlt(std::int32_t n_bits,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_qaoa(std::int32_t n_nodes, int p_rounds,
                                         const GenOptions& options);
[[nodiscard]] circuit::Circuit make_qec(std::int32_t distance, int rounds,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_qft(std::int32_t n_qubits,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_qgan(std::int32_t n_qubits, int layers,
                                         const GenOptions& options);
[[nodiscard]] circuit::Circuit make_qv(std::int32_t n_qubits, int depth,
                                       const GenOptions& options);
[[nodiscard]] circuit::Circuit make_sat(std::int32_t n_vars,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_seca(const GenOptions& options);
[[nodiscard]] circuit::Circuit make_sqrt(std::int32_t n_qubits,
                                         const GenOptions& options);
[[nodiscard]] circuit::Circuit make_tfim(std::int32_t n_qubits, int steps,
                                         const GenOptions& options);
[[nodiscard]] circuit::Circuit make_vqe(std::int32_t n_qubits, int layers,
                                        const GenOptions& options);
[[nodiscard]] circuit::Circuit make_wst(std::int32_t n_qubits,
                                        const GenOptions& options);

}  // namespace parallax::bench_circuits
