// State-preparation and search benchmarks: QFT (quantum Fourier transform),
// WST (W-state preparation and assessment), KNN (quantum k-nearest-
// neighbours swap test), SAT (Grover-style satisfiability oracle).
#include <array>
#include <cmath>
#include <numbers>

#include "bench_circuits/registry.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

namespace {
constexpr double kPi = std::numbers::pi;
}

circuit::Circuit make_qft(std::int32_t n_qubits, const GenOptions& options) {
  // Textbook QFT: H + controlled-phase ladder, then the qubit-order
  // reversal SWAPs (expanded to CZ by the transpiler, as in the paper's
  // Qiskit flow).
  (void)options;
  circuit::Circuit c(n_qubits, "QFT");
  for (std::int32_t i = 0; i < n_qubits; ++i) {
    c.h(i);
    for (std::int32_t j = i + 1; j < n_qubits; ++j) {
      c.cp(j, i, kPi / std::pow(2.0, j - i));
    }
  }
  for (std::int32_t i = 0; i < n_qubits / 2; ++i) {
    c.swap(i, n_qubits - 1 - i);
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_wst(std::int32_t n_qubits, const GenOptions& options) {
  // W-state preparation (Fleischhauer & Lukin style cascade): the |1>
  // excitation is distributed by a chain of controlled rotations, each a
  // controlled-RY (2 CX) followed by a CX back.
  (void)options;
  circuit::Circuit c(n_qubits, "WST");
  c.x(0);
  for (std::int32_t i = 0; i + 1 < n_qubits; ++i) {
    // Controlled-RY(theta_i) from qubit i onto i+1 with
    // theta = 2*acos(sqrt(1/(n-i))), splitting amplitude evenly.
    const double theta =
        2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(n_qubits - i)));
    c.ry(i + 1, theta / 2);
    c.cx(i, i + 1);
    c.ry(i + 1, -theta / 2);
    c.cx(i, i + 1);
    c.cx(i + 1, i);
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_knn(std::int32_t n_features, const GenOptions& options) {
  // Quantum k-nearest-neighbours distance kernel: a swap test between a
  // test-feature register and a train-feature register (paper: 25 qubits =
  // 1 ancilla + 2 x 12 features).
  const std::int32_t n = 2 * n_features + 1;
  circuit::Circuit c(n, "KNN");
  util::Rng rng(options.seed);
  const std::int32_t ancilla = 0;
  auto test_q = [](std::int32_t i) { return 1 + i; };
  auto train_q = [n_features](std::int32_t i) { return 1 + n_features + i; };

  // Feature encoding: arbitrary rotations per feature amplitude.
  for (std::int32_t i = 0; i < n_features; ++i) {
    c.ry(test_q(i), rng.uniform(0, kPi));
    c.ry(train_q(i), rng.uniform(0, kPi));
  }
  // Swap test.
  c.h(ancilla);
  for (std::int32_t i = 0; i < n_features; ++i) {
    c.cswap(ancilla, test_q(i), train_q(i));
  }
  c.h(ancilla);
  c.measure(ancilla);
  return c;
}

circuit::Circuit make_sat(std::int32_t n_vars, const GenOptions& options) {
  // Grover-amplified 3-SAT (Su et al. style): clause oracles mark
  // satisfying assignments via Toffoli ladders onto a flag qubit, followed
  // by the diffusion operator. Layout (paper: 11) = vars + clause ancillas
  // + flag.
  const std::int32_t n_clause_anc = 3;
  const std::int32_t n = n_vars + n_clause_anc + 1;  // callers size n_vars
  circuit::Circuit c(n, "SAT");
  util::Rng rng(options.seed);
  const std::int32_t flag = n - 1;
  auto clause_anc = [n_vars](std::int32_t i) { return n_vars + i; };

  // Random 3-SAT instance.
  struct Clause {
    std::array<std::int32_t, 3> vars;
    std::array<bool, 3> negated;
  };
  std::vector<Clause> clauses;
  for (int k = 0; k < n_clause_anc; ++k) {
    Clause clause{};
    for (int l = 0; l < 3; ++l) {
      // Literals within a clause must be distinct variables.
      std::int32_t v;
      bool duplicate;
      do {
        v = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(n_vars)));
        duplicate = false;
        for (int m = 0; m < l; ++m) {
          duplicate |= (clause.vars[static_cast<std::size_t>(m)] == v);
        }
      } while (duplicate);
      clause.vars[static_cast<std::size_t>(l)] = v;
      clause.negated[static_cast<std::size_t>(l)] = rng.bernoulli(0.5);
    }
    clauses.push_back(clause);
  }

  auto apply_clause = [&](const Clause& clause, std::int32_t anc) {
    // anc = OR of literals = NOT(AND of negated literals).
    for (int l = 0; l < 3; ++l) {
      if (!clause.negated[static_cast<std::size_t>(l)]) {
        c.x(clause.vars[static_cast<std::size_t>(l)]);
      }
    }
    c.x(anc);
    // 3-control AND via a cascading pair of Toffolis through the flag's
    // neighbour ancilla is overkill at this size; chain two CCX instead.
    c.ccx(clause.vars[0], clause.vars[1], anc);
    c.ccx(clause.vars[1], clause.vars[2], anc);
    for (int l = 0; l < 3; ++l) {
      if (!clause.negated[static_cast<std::size_t>(l)]) {
        c.x(clause.vars[static_cast<std::size_t>(l)]);
      }
    }
  };

  for (std::int32_t q = 0; q < n_vars; ++q) c.h(q);
  c.x(flag);
  c.h(flag);

  const int rounds = 2;
  for (int round = 0; round < rounds; ++round) {
    // Oracle: clause ancillas, AND them onto the flag, uncompute.
    for (std::size_t k = 0; k < clauses.size(); ++k) {
      apply_clause(clauses[k], clause_anc(static_cast<std::int32_t>(k)));
    }
    c.ccx(clause_anc(0), clause_anc(1), flag);
    c.ccx(clause_anc(1), clause_anc(2), flag);
    for (std::size_t k = clauses.size(); k-- > 0;) {
      apply_clause(clauses[k], clause_anc(static_cast<std::int32_t>(k)));
    }
    // Diffusion over variables.
    for (std::int32_t q = 0; q < n_vars; ++q) c.h(q);
    for (std::int32_t q = 0; q < n_vars; ++q) c.x(q);
    c.h(n_vars - 1);
    c.ccx(0, 1, n_vars - 1);  // truncated multi-control at benchmark scale
    c.h(n_vars - 1);
    for (std::int32_t q = 0; q < n_vars; ++q) c.x(q);
    for (std::int32_t q = 0; q < n_vars; ++q) c.h(q);
  }
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
