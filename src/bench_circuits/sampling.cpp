// Sampling-hardness benchmarks: ADV (Google's quantum-advantage random
// circuit on a 2D grid), QV (IBM's quantum-volume model circuit), and HLF
// (hidden-linear-function shallow circuit).
#include <array>
#include <numbers>

#include "bench_circuits/registry.hpp"
#include "circuit/unitary.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

namespace {
constexpr double kPi = std::numbers::pi;

/// A Haar-ish random single-qubit gate.
void random_u3(circuit::Circuit& c, std::int32_t q, util::Rng& rng) {
  c.u3(q, rng.uniform(0, kPi), rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi));
}

/// Random SU(4) on a pair via the standard 3-CX (here 3-CZ) KAK template.
void random_su4(circuit::Circuit& c, std::int32_t a, std::int32_t b,
                util::Rng& rng) {
  random_u3(c, a, rng);
  random_u3(c, b, rng);
  c.cz(a, b);
  c.ry(a, rng.uniform(-kPi, kPi));
  c.rz(b, rng.uniform(-kPi, kPi));
  c.cz(a, b);
  c.ry(a, rng.uniform(-kPi, kPi));
  c.rz(b, rng.uniform(-kPi, kPi));
  c.cz(a, b);
  random_u3(c, a, rng);
  random_u3(c, b, rng);
}

}  // namespace

circuit::Circuit make_adv(std::int32_t side, int depth,
                          const GenOptions& options) {
  // Sycamore-style random circuit (Arute et al. 2019): alternating layers
  // of random {sqrt(X), sqrt(Y), sqrt(W)} and 2q gates along one of four
  // grid-coupling patterns (A, B, C, D cycling).
  const std::int32_t n = side * side;
  circuit::Circuit c(n, "ADV");
  util::Rng rng(options.seed);
  auto q = [side](std::int32_t row, std::int32_t col) {
    return row * side + col;
  };

  std::vector<int> last_gate(static_cast<std::size_t>(n), -1);
  auto random_sqrt_gate = [&](std::int32_t qubit) {
    // sqrt(X), sqrt(Y), sqrt(W) — never repeating on the same qubit.
    int g = static_cast<int>(rng.next_below(3));
    while (g == last_gate[static_cast<std::size_t>(qubit)]) {
      g = static_cast<int>(rng.next_below(3));
    }
    last_gate[static_cast<std::size_t>(qubit)] = g;
    switch (g) {
      case 0: c.u3(qubit, kPi / 2, -kPi / 2, kPi / 2); break;   // sqrt(X)
      case 1: c.u3(qubit, kPi / 2, 0.0, 0.0); break;            // sqrt(Y)
      default: c.u3(qubit, kPi / 2, -kPi / 4, kPi / 4); break;  // sqrt(W)
    }
  };

  for (int layer = 0; layer < depth; ++layer) {
    for (std::int32_t qubit = 0; qubit < n; ++qubit) random_sqrt_gate(qubit);
    // Coupling pattern: horizontal even/odd, vertical even/odd.
    const int pattern = layer % 4;
    for (std::int32_t row = 0; row < side; ++row) {
      for (std::int32_t col = 0; col < side; ++col) {
        if (pattern < 2) {  // horizontal pairs
          if (col % 2 == pattern % 2 && col + 1 < side) {
            c.cz(q(row, col), q(row, col + 1));
          }
        } else {  // vertical pairs
          if (row % 2 == pattern % 2 && row + 1 < side) {
            c.cz(q(row, col), q(row + 1, col));
          }
        }
      }
    }
  }
  for (std::int32_t qubit = 0; qubit < n; ++qubit) random_sqrt_gate(qubit);
  c.measure_all();
  return c;
}

circuit::Circuit make_qv(std::int32_t n_qubits, int depth,
                         const GenOptions& options) {
  // IBM quantum-volume model circuit (Cross et al. 2019): `depth` rounds of
  // a random qubit permutation followed by random SU(4) on adjacent pairs.
  circuit::Circuit c(n_qubits, "QV");
  util::Rng rng(options.seed);
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n_qubits));
  for (std::int32_t i = 0; i < n_qubits; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  for (int round = 0; round < depth; ++round) {
    rng.shuffle(perm);
    for (std::int32_t pair = 0; pair + 1 < n_qubits; pair += 2) {
      random_su4(c, perm[static_cast<std::size_t>(pair)],
                 perm[static_cast<std::size_t>(pair + 1)], rng);
    }
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_hlf(std::int32_t n_qubits, const GenOptions& options) {
  // Hidden linear function (Bravyi, Gosset, Koenig 2018): H^n, then the
  // quadratic form q(x) = sum A_ij x_i x_j + sum b_i x_i realized with CZ
  // and S gates, then H^n.
  circuit::Circuit c(n_qubits, "HLF");
  util::Rng rng(options.seed);
  for (std::int32_t q = 0; q < n_qubits; ++q) c.h(q);
  // Random symmetric adjacency: dense short-range couplings plus sparse
  // long-range ones, matching the QASMBench HLF instances' density.
  for (std::int32_t a = 0; a < n_qubits; ++a) {
    for (std::int32_t b = a + 1; b < n_qubits; ++b) {
      const double p = (b - a <= 4) ? 0.85 : 0.35;
      if (rng.bernoulli(p)) c.cz(a, b);
    }
  }
  for (std::int32_t q = 0; q < n_qubits; ++q) {
    if (rng.bernoulli(0.5)) c.s(q);
  }
  for (std::int32_t q = 0; q < n_qubits; ++q) c.h(q);
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
