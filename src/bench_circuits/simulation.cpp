// Physical-simulation benchmarks: HSB (time-dependent Heisenberg model,
// ArQTiC) and TFIM (transverse-field Ising model, ArQTiC). Both are
// first-order Trotterizations over a 1D chain — the paper's examples of
// structured, low-connectivity workloads (TFIM: each qubit talks to at most
// two neighbours).
#include <cmath>
#include <numbers>

#include "bench_circuits/registry.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

namespace {
constexpr double kPi = std::numbers::pi;

/// exp(-i theta XX/2) on a pair, in the CZ basis.
void rxx(circuit::Circuit& c, std::int32_t a, std::int32_t b, double theta) {
  c.h(a);
  c.h(b);
  c.cx(a, b);
  c.rz(b, theta);
  c.cx(a, b);
  c.h(a);
  c.h(b);
}

/// exp(-i theta YY/2).
void ryy(circuit::Circuit& c, std::int32_t a, std::int32_t b, double theta) {
  c.rx(a, kPi / 2);
  c.rx(b, kPi / 2);
  c.cx(a, b);
  c.rz(b, theta);
  c.cx(a, b);
  c.rx(a, -kPi / 2);
  c.rx(b, -kPi / 2);
}

/// exp(-i theta ZZ/2).
void rzz(circuit::Circuit& c, std::int32_t a, std::int32_t b, double theta) {
  c.cx(a, b);
  c.rz(b, theta);
  c.cx(a, b);
}

}  // namespace

circuit::Circuit make_hsb(std::int32_t n_qubits, int steps,
                          const GenOptions& options) {
  // H = sum_i Jx XX + Jy YY + Jz ZZ (chain) + h(t) sum_i Z_i, Trotterized;
  // the time-dependent field makes the Z angle vary per step.
  circuit::Circuit c(n_qubits, "HSB");
  util::Rng rng(options.seed);
  const double jx = 0.8, jy = 0.6, jz = 1.0;
  const double dt = 0.1;

  for (std::int32_t q = 0; q < n_qubits; ++q) c.h(q);  // initial state
  for (int step = 0; step < steps; ++step) {
    const double h_field =
        1.0 + 0.5 * std::sin(2.0 * kPi * step / static_cast<double>(steps));
    // Even bonds then odd bonds (maximally parallelizable ordering).
    for (int parity = 0; parity < 2; ++parity) {
      for (std::int32_t q = parity; q + 1 < n_qubits; q += 2) {
        rxx(c, q, q + 1, 2 * jx * dt);
        ryy(c, q, q + 1, 2 * jy * dt);
        rzz(c, q, q + 1, 2 * jz * dt);
      }
    }
    for (std::int32_t q = 0; q < n_qubits; ++q) {
      c.rz(q, 2 * h_field * dt);
    }
  }
  c.measure_all();
  return c;
}

circuit::Circuit make_tfim(std::int32_t n_qubits, int steps,
                           const GenOptions& options) {
  // H = -J sum ZZ (open chain) - g sum X. 10 Trotter steps over a 127-bond
  // chain yields 2 CZ x 127 x 10 = 2,540 CZs at the paper's 128-qubit size,
  // matching Fig. 9's TFIM count.
  (void)options;
  circuit::Circuit c(n_qubits, "TFIM");
  const double j_coupling = 1.0, g_field = 1.5, dt = 0.05;

  for (std::int32_t q = 0; q < n_qubits; ++q) c.h(q);
  for (int step = 0; step < steps; ++step) {
    for (int parity = 0; parity < 2; ++parity) {
      for (std::int32_t q = parity; q + 1 < n_qubits; q += 2) {
        rzz(c, q, q + 1, -2 * j_coupling * dt);
      }
    }
    for (std::int32_t q = 0; q < n_qubits; ++q) {
      c.rx(q, -2 * g_field * dt);
    }
  }
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
