#include "bench_circuits/registry.hpp"

#include <stdexcept>

namespace parallax::bench_circuits {

// Scale parameters are chosen so that qubit counts match Table III exactly
// and CZ counts land near the paper's Fig. 9 values (e.g. TFIM: 10 Trotter
// steps x 127 bonds x 2 CZ = 2,540; QV: 31 rounds x 16 pairs x 3 CZ = 1,488;
// GCM: 11 blocks x 12 pairs x 4 CZ = 528).
const std::vector<BenchmarkInfo>& all_benchmarks() {
  static const std::vector<BenchmarkInfo> registry = {
      {"ADD", 9, "Quantum arithmetic algorithm for adding",
       [](const GenOptions& o) { return make_add(4, o); }},
      {"ADV", 9, "Google's quantum advantage benchmark",
       [](const GenOptions& o) { return make_adv(3, 11, o); }},
      {"GCM", 13, "Generator coordinate method",
       [](const GenOptions& o) { return make_gcm(13, o); }},
      {"HSB", 16, "Time-dependent hamiltonian simulation",
       [](const GenOptions& o) { return make_hsb(16, 34, o); }},
      {"HLF", 10, "Hidden linear function application",
       [](const GenOptions& o) { return make_hlf(10, o); }},
      {"KNN", 25, "Quantum k nearest neighbors algorithm",
       [](const GenOptions& o) { return make_knn(12, o); }},
      {"MLT", 10, "Quantum arithmetic algorithm for multiplying",
       [](const GenOptions& o) { return make_mlt(2, o); }},
      {"QAOA", 10, "Quantum alternating operator ansatz",
       [](const GenOptions& o) { return make_qaoa(10, 5, o); }},
      {"QEC", 17, "Quantum repetition error correction code",
       [](const GenOptions& o) { return make_qec(9, 1, o); }},
      {"QFT", 10, "Quantum Fourier transform",
       [](const GenOptions& o) { return make_qft(10, o); }},
      {"QGAN", 39, "Quantum generative adversarial network",
       [](const GenOptions& o) { return make_qgan(39, 5, o); }},
      {"QV", 32, "IBM's quantum volume benchmark",
       [](const GenOptions& o) { return make_qv(32, 31, o); }},
      {"SAT", 11, "Quantum code for satisfiability solving",
       [](const GenOptions& o) { return make_sat(7, o); }},
      {"SECA", 11, "Shor's error correction algorithm",
       [](const GenOptions& o) { return make_seca(o); }},
      {"SQRT", 18, "Quantum code for square root calculation",
       [](const GenOptions& o) { return make_sqrt(18, o); }},
      {"TFIM", 128, "Transverse-field ising model",
       [](const GenOptions& o) { return make_tfim(128, 10, o); }},
      {"VQE", 28, "Variational quantum eigensolver",
       [](const GenOptions& o) {
         // Paper scale (~450k gates / ~195k CZ) needs ~740 ansatz layers;
         // the default keeps the harness runnable in minutes.
         return make_vqe(28, o.full_scale ? 740 : 8, o);
       }},
      {"WST", 27, "W-State preparation and assessment",
       [](const GenOptions& o) { return make_wst(27, o); }},
  };
  return registry;
}

circuit::Circuit make_benchmark(const std::string& acronym,
                                const GenOptions& options) {
  for (const auto& info : all_benchmarks()) {
    if (info.acronym == acronym) return info.make(options);
  }
  throw std::invalid_argument("unknown benchmark: " + acronym);
}

}  // namespace parallax::bench_circuits
