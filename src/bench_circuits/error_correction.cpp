// Error-correction benchmarks: QEC (distance-d repetition code with
// syndrome-extraction rounds) and SECA (Shor's 9-qubit error-correction
// code: encode, fault window, decode).
#include "bench_circuits/registry.hpp"
#include "util/rng.hpp"

namespace parallax::bench_circuits {

circuit::Circuit make_qec(std::int32_t distance, int rounds,
                          const GenOptions& options) {
  // Bit-flip repetition code: d data qubits interleaved with d-1 syndrome
  // ancillas (paper: 17 qubits -> d = 9).
  (void)options;
  const std::int32_t d = distance;
  const std::int32_t n = 2 * d - 1;
  circuit::Circuit c(n, "QEC");
  auto data = [](std::int32_t i) { return 2 * i; };
  auto syndrome = [](std::int32_t i) { return 2 * i + 1; };

  // Encode |+> into the logical qubit.
  c.h(data(0));
  for (std::int32_t i = 0; i + 1 < d; ++i) c.cx(data(i), data(i + 1));

  for (int round = 0; round < rounds; ++round) {
    // Syndrome extraction: each ancilla compares neighbouring data qubits.
    for (std::int32_t i = 0; i + 1 < d; ++i) {
      c.cx(data(i), syndrome(i));
      c.cx(data(i + 1), syndrome(i));
    }
    for (std::int32_t i = 0; i + 1 < d; ++i) {
      c.measure(syndrome(i));
    }
  }
  for (std::int32_t i = 0; i < d; ++i) c.measure(data(i));
  return c;
}

circuit::Circuit make_seca(const GenOptions& options) {
  // Shor's 9-qubit code (paper: SECA, 11 qubits = 9 code + 2 ancilla used
  // as the fault-injection / verification pair).
  circuit::Circuit c(11, "SECA");
  util::Rng rng(options.seed);
  // Qubit 0 carries the state; blocks {0,1,2}, {3,4,5}, {6,7,8}.
  // --- encode -----------------------------------------------------------
  c.cx(0, 3);
  c.cx(0, 6);
  c.h(0);
  c.h(3);
  c.h(6);
  for (const std::int32_t block : {0, 3, 6}) {
    c.cx(block, block + 1);
    c.cx(block, block + 2);
  }
  // --- fault window: a random single-qubit error, heralded by ancillas ---
  const auto victim =
      static_cast<std::int32_t>(rng.next_below(9));
  c.cx(victim, 9);
  if (rng.bernoulli(0.5)) {
    c.z(victim);
  } else {
    c.x(victim);
  }
  c.cx(victim, 10);
  // --- decode (inverse of encode) ----------------------------------------
  for (const std::int32_t block : {0, 3, 6}) {
    c.cx(block, block + 1);
    c.cx(block, block + 2);
    c.ccx(block + 2, block + 1, block);
  }
  c.h(0);
  c.h(3);
  c.h(6);
  c.cx(0, 3);
  c.cx(0, 6);
  c.ccx(6, 3, 0);
  c.measure_all();
  return c;
}

}  // namespace parallax::bench_circuits
