// Deterministic random number generation for all stochastic components
// (annealer, layer shuffling, benchmark circuit generators).
//
// Every consumer owns its own Rng instance seeded explicitly; there is no
// global RNG state, so independent compilations can run on different threads
// without synchronization and every experiment is reproducible from its
// printed seed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace parallax::util {

/// Salts for derive_seed: every compiler stage that consumes randomness draws
/// its seed from (master seed, circuit name, stage salt), so Parallax, the
/// baselines, and the sweep driver all derive identical per-circuit seeds —
/// which is what lets the sweep driver share one memoized Graphine placement
/// across every technique and machine config of the same circuit.
inline constexpr std::uint64_t kPlacementSeedSalt = 1;
inline constexpr std::uint64_t kShuffleSeedSalt = 2;
/// Per-circuit master seed of the discrete-event simulator (src/sim); each
/// shot k then derives its own stream via derive_seed(sim_seed, "shot", k),
/// which is what makes Monte Carlo runs thread-count invariant.
inline constexpr std::uint64_t kSimSeedSalt = 3;

/// Derives a per-component seed from a master seed, a component name
/// (typically the circuit name), and a stage salt. FNV-1a over the name,
/// offset by a golden-ratio multiple of the salt.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::string_view name,
                                        std::uint64_t salt) noexcept;

/// SplitMix64: used to expand a single 64-bit seed into a full state vector.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ generator. Fast, high quality, and trivially splittable via
/// `split()`, which derives an independent stream for a child component.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1ce4e5b9bf5847ULL) noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (no cached second value: keeps the
  /// generator state a pure function of the call count).
  double normal() noexcept;

  /// True with probability p.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator (stream split).
  Rng split() noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  std::size_t pick_index(std::size_t size) noexcept {
    return static_cast<std::size_t>(next_below(size));
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace parallax::util
