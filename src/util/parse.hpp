// Strict numeric parsing for untrusted text (CLI flag values, request
// lines). Unlike std::atoi/std::strtoull — which silently yield 0 for
// garbage and accept trailing junk — these helpers succeed only when the
// whole string is one well-formed number in range, so `--aod-count banana`
// is a reported error, never a silent 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace parallax::util {

/// Whole-string decimal unsigned parse; nullopt on empty input, sign,
/// non-digits, trailing garbage, or overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// parse_u64 narrowed; nullopt when the value exceeds uint32.
[[nodiscard]] std::optional<std::uint32_t> parse_u32(std::string_view text);

/// Whole-string decimal signed parse; nullopt outside int32 or on garbage.
[[nodiscard]] std::optional<std::int32_t> parse_i32(std::string_view text);

/// Whole-string floating-point parse (fixed or scientific); nullopt on
/// garbage, trailing characters, or values that do not fit a double.
[[nodiscard]] std::optional<double> parse_f64(std::string_view text);

}  // namespace parallax::util
