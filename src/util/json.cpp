#include "util/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace parallax::util {

JsonValue JsonValue::object() {
  JsonValue v;
  v.value_ = std::make_shared<Object>();
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.value_ = std::make_shared<Array>();
  return v;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  auto* object = std::get_if<std::shared_ptr<Object>>(&value_);
  assert(object != nullptr && *object != nullptr);
  for (auto& [k, v] : (*object)->fields) {
    if (k == key) return v;
  }
  (*object)->fields.emplace_back(key, JsonValue());
  return (*object)->fields.back().second;
}

void JsonValue::push_back(JsonValue value) {
  auto* array = std::get_if<std::shared_ptr<Array>>(&value_);
  assert(array != nullptr && *array != nullptr);
  (*array)->items.push_back(std::move(value));
}

void JsonValue::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                                ' ')
                  : "";
  const std::string close_pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                  : "";
  const char* newline = indent >= 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", *d);
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", *d);
      out += buf;
    }
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const auto* object = std::get_if<std::shared_ptr<Object>>(&value_)) {
    const auto& fields = (*object)->fields;
    if (fields.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += newline;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out += pad;
      write_escaped(out, fields[i].first);
      out += indent >= 0 ? ": " : ":";
      fields[i].second.write(out, indent, depth + 1);
      if (i + 1 < fields.size()) out += ',';
      out += newline;
    }
    out += close_pad;
    out += '}';
  } else if (const auto* array = std::get_if<std::shared_ptr<Array>>(&value_)) {
    const auto& items = (*array)->items;
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += newline;
    for (std::size_t i = 0; i < items.size(); ++i) {
      out += pad;
      items[i].write(out, indent, depth + 1);
      if (i + 1 < items.size()) out += ',';
      out += newline;
    }
    out += close_pad;
    out += ']';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace parallax::util
