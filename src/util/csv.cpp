#include "util/csv.hpp"

#include <cassert>
#include <stdexcept>

namespace parallax::util {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string csv_line(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(cells[i]);
  }
  line += '\n';
  return line;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  out_ << csv_line(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  assert(row.size() == cols_);
  out_ << csv_line(row);
}

}  // namespace parallax::util
