#include "util/csv.hpp"

#include <cassert>
#include <stdexcept>

namespace parallax::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_line(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  assert(row.size() == cols_);
  write_line(row);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace parallax::util
