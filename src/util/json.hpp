// Minimal JSON writer (objects, arrays, strings, numbers, booleans) used to
// export compile reports for downstream tooling. Write-only by design — the
// repository has no need to parse JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace parallax::util {

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::size_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}

  /// Creates an (initially empty) object / array.
  static JsonValue object();
  static JsonValue array();

  /// Object field access (creates the field); asserts object-ness.
  JsonValue& operator[](const std::string& key);
  /// Array append.
  void push_back(JsonValue value);

  /// Serializes; `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  struct Object {
    std::vector<std::pair<std::string, JsonValue>> fields;
  };
  struct Array {
    std::vector<JsonValue> items;
  };
  // Recursive types via unique_ptr-free vectors of JsonValue (JsonValue is
  // complete inside Object/Array thanks to indirection through vector).
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      value_;

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);
};

}  // namespace parallax::util
