#include "util/parse.hpp"

#include <charconv>

namespace parallax::util {

namespace {

template <typename T>
std::optional<T> parse_whole(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  // Signs are rejected up front (from_chars already refuses '+', and '-'
  // must never wrap into a huge unsigned value).
  if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    return std::nullopt;
  }
  return parse_whole<std::uint64_t>(text);
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  const auto wide = parse_u64(text);
  if (!wide || *wide > 0xffffffffull) return std::nullopt;
  return static_cast<std::uint32_t>(*wide);
}

std::optional<std::int32_t> parse_i32(std::string_view text) {
  return parse_whole<std::int32_t>(text);
}

std::optional<double> parse_f64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

}  // namespace parallax::util
