#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace parallax::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  const char c = s.front();
  return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.';
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = width[c] - row[c].size();
      if (looks_numeric(row[c]) && c > 0) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string format_compact(double v) {
  if (std::abs(v) >= 1e4) {
    return format_sci(v, 1);
  }
  if (v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  return format_fixed(v, 1);
}

std::string format_percent(double fraction) {
  return format_fixed(fraction * 100.0, 1) + "%";
}

}  // namespace parallax::util
