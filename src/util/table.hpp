// Plain-text table rendering for the bench harness. Every bench binary prints
// the same rows/series the paper reports; this keeps the formatting uniform.
#pragma once

#include <string>
#include <vector>

namespace parallax::util {

/// A simple column-aligned text table. Cells are strings; numeric formatting
/// is the caller's responsibility (see format_* helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header separator and right-aligned numeric-looking cells.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
[[nodiscard]] std::string format_fixed(double v, int precision);

/// Scientific formatting matching the paper's figures ("1.8e-02").
[[nodiscard]] std::string format_sci(double v, int precision = 1);

/// Compact formatting: integers print without decimals; large values use
/// scientific notation like the paper's tables ("5.7e4").
[[nodiscard]] std::string format_compact(double v);

/// Percentage with one decimal ("46.2%").
[[nodiscard]] std::string format_percent(double fraction);

}  // namespace parallax::util
