#include "util/exact_sum.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace parallax::util {

namespace {

constexpr std::uint64_t kFracMask = (std::uint64_t{1} << 52) - 1;

}  // namespace

void ExactSum::accumulate(double value, bool negate) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const int exp_field = static_cast<int>((bits >> 52) & 0x7ff);
  assert(exp_field != 0x7ff && "ExactSum requires finite values");
  std::uint64_t mant = bits & kFracMask;
  if (exp_field != 0) mant |= std::uint64_t{1} << 52;
  if (mant == 0) return;  // +-0 contributes nothing

  // A normal double is mant * 2^(exp_field - 1075); placing its lowest bit
  // at accumulator index exp_field - 1075 + kBias = exp_field + 13.
  // Subnormals (exp_field == 0) sit at fixed index -1074 + kBias = 14.
  const int bitpos = exp_field != 0 ? exp_field + 13 : 14;
  const int limb = bitpos >> 6;
  const int shift = bitpos & 63;
  const auto wide = static_cast<unsigned __int128>(mant) << shift;
  const auto lo = static_cast<std::uint64_t>(wide);
  const auto hi = static_cast<std::uint64_t>(wide >> 64);

  const bool subtract = ((bits >> 63) != 0) != negate;
  if (!subtract) {
    unsigned __int128 acc =
        static_cast<unsigned __int128>(limbs_[limb]) + lo;
    limbs_[limb] = static_cast<std::uint64_t>(acc);
    std::uint64_t carry = static_cast<std::uint64_t>(acc >> 64);
    acc = static_cast<unsigned __int128>(limbs_[limb + 1]) + hi + carry;
    limbs_[limb + 1] = static_cast<std::uint64_t>(acc);
    carry = static_cast<std::uint64_t>(acc >> 64);
    for (int i = limb + 2; carry != 0 && i < kLimbs; ++i) {
      carry = ++limbs_[i] == 0 ? 1 : 0;
    }
  } else {
    std::uint64_t borrow = limbs_[limb] < lo ? 1 : 0;
    limbs_[limb] -= lo;
    const std::uint64_t sub = hi + borrow;  // hi <= 2^63, no overflow
    borrow = limbs_[limb + 1] < sub ? 1 : 0;
    limbs_[limb + 1] -= sub;
    for (int i = limb + 2; borrow != 0 && i < kLimbs; ++i) {
      borrow = limbs_[i]-- == 0 ? 1 : 0;
    }
  }
}

double ExactSum::round() const noexcept {
  std::array<std::uint64_t, kLimbs> mag = limbs_;
  const bool negative = (mag[kLimbs - 1] >> 63) != 0;
  if (negative) {
    std::uint64_t carry = 1;
    for (auto& limb : mag) {
      limb = ~limb + carry;
      carry = (carry != 0 && limb == 0) ? 1 : 0;
    }
  }

  int top = kLimbs - 1;
  while (top >= 0 && mag[top] == 0) --top;
  if (top < 0) return 0.0;
  const int p = top * 64 + 63 - std::countl_zero(mag[top]);

  // Keep 53 significand bits starting at u; below u = 14 the accumulator is
  // exact subnormal territory (no contribution ever lands under bit 14).
  const int u = p - 52 > 14 ? p - 52 : 14;
  const int limb = u >> 6;
  const int shift = u & 63;
  std::uint64_t window = mag[limb] >> shift;
  if (shift != 0 && limb + 1 < kLimbs) {
    window |= mag[limb + 1] << (64 - shift);
  }
  std::uint64_t mant = window & ((std::uint64_t{1} << 53) - 1);

  // Round half to even on the discarded tail [0, u).
  if (u > 0) {
    const int g = u - 1;
    const bool guard = ((mag[g >> 6] >> (g & 63)) & 1) != 0;
    bool sticky = false;
    if (guard) {
      for (int i = 0; i < (g >> 6) && !sticky; ++i) sticky = mag[i] != 0;
      if (!sticky && (g & 63) != 0) {
        sticky = (mag[g >> 6] & ((std::uint64_t{1} << (g & 63)) - 1)) != 0;
      }
    }
    if (guard && (sticky || (mant & 1) != 0)) ++mant;  // 2^53 stays exact
  }

  const double result = std::ldexp(static_cast<double>(mant), u - kBias);
  return negative ? -result : result;
}

}  // namespace parallax::util
