#include "util/hash.hpp"

#include <bit>
#include <cstring>

namespace parallax::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  v = ((v & 0x00ff00ff00ff00ffULL) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffULL);
  v = ((v & 0x0000ffff0000ffffULL) << 16) |
      ((v >> 16) & 0x0000ffff0000ffffULL);
  return (v << 32) | (v >> 32);
}

/// SplitMix64 finalizer: full avalanche over one word.
constexpr std::uint64_t avalanche(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest128::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

std::optional<Digest128> Digest128::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  Digest128 digest;
  for (int i = 0; i < 32; ++i) {
    const int v = hex_value(hex[static_cast<std::size_t>(i)]);
    if (v < 0) return std::nullopt;
    auto& word = i < 16 ? digest.hi : digest.lo;
    word = (word << 4) | static_cast<std::uint64_t>(v);
  }
  return digest;
}

void Hash128::mix_word(std::uint64_t word) noexcept {
  a_ = rotl((a_ ^ word) * kMulA, 29) + b_;
  b_ = rotl((b_ ^ word) * kMulB, 31) + a_;
}

void Hash128::update(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  length_ += size;
  // Top up a partial word left by a previous chunk.
  while (pending_bytes_ != 0 && pending_bytes_ < 8 && size != 0) {
    pending_ |= static_cast<std::uint64_t>(*bytes++) << (8 * pending_bytes_++);
    --size;
  }
  if (pending_bytes_ == 8) {
    mix_word(pending_);
    pending_ = 0;
    pending_bytes_ = 0;
  }
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, 8);
    // Canonical little-endian words on every target, matching the
    // byte-at-a-time pending_ path, so digests are platform-independent.
    if constexpr (std::endian::native == std::endian::big) {
      word = byteswap64(word);
    }
    mix_word(word);
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    pending_ |= static_cast<std::uint64_t>(bytes[i]) << (8 * pending_bytes_++);
  }
}

Digest128 Hash128::digest() const noexcept {
  std::uint64_t a = a_;
  std::uint64_t b = b_;
  // Fold in the trailing partial word tagged with its width, then the total
  // length, so "abc" + "" and "ab" + "c" agree but "abc\0" and "abc" do not.
  const std::uint64_t tail =
      pending_ ^ (static_cast<std::uint64_t>(pending_bytes_) << 56);
  a = rotl((a ^ tail) * kMulA, 29) + b;
  b = rotl((b ^ tail) * kMulB, 31) + a;
  a ^= length_;
  b ^= rotl(length_, 32);
  const std::uint64_t hi = avalanche(a + rotl(b, 27));
  const std::uint64_t lo = avalanche(b + rotl(a, 25) + 0x38b34ae5a1e38b93ULL);
  return {hi, lo};
}

Digest128 hash128(const void* data, std::size_t size,
                  std::uint64_t seed) noexcept {
  Hash128 hasher(seed);
  hasher.update(data, size);
  return hasher.digest();
}

std::uint64_t checksum64(const void* data, std::size_t size) noexcept {
  return hash128(data, size, 0x5eedc0dedULL).lo;
}

}  // namespace parallax::util
