#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace parallax::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&f, i] { f(i); }));
  }
  // Drain every future before rethrowing: the queued tasks capture `f` by
  // reference, so propagating the first exception while later tasks are
  // still queued/running would let them race a dangling reference (and a
  // caller's frame). The first failure wins; later ones are swallowed.
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace parallax::util
