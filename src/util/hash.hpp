// 128-bit streaming content hash for the compilation cache's
// content-addressed keys (src/cache). Not cryptographic: the goal is a
// stable, collision-resistant-enough fingerprint whose value is identical
// across runs, platforms, and compilers, so cache entries written by one
// process are found by the next. Inputs are canonicalized by the caller
// (cache/fingerprint.hpp feeds fixed-width little-endian bytes); the hash
// itself is a two-lane multiply-xor mixer with cross-lane diffusion and a
// SplitMix64-style finalizer per lane.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace parallax::util {

/// A 128-bit digest, printable as 32 lowercase hex characters. Ordered so it
/// can key std::map and name content-addressed files.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Digest128&,
                                   const Digest128&) noexcept = default;
  friend constexpr auto operator<=>(const Digest128&,
                                    const Digest128&) noexcept = default;

  /// 32 lowercase hex characters, hi word first.
  [[nodiscard]] std::string hex() const;
  /// Parses the hex() format; nullopt on malformed input.
  [[nodiscard]] static std::optional<Digest128> from_hex(std::string_view hex);
};

/// Streaming hasher. update() may be called any number of times with any
/// chunking — the digest depends only on the byte sequence (and the seed),
/// never on chunk boundaries.
class Hash128 {
 public:
  explicit constexpr Hash128(std::uint64_t seed = 0) noexcept
      : a_(kOffsetA ^ seed), b_(kOffsetB ^ (seed * kMulB)) {}

  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view bytes) noexcept {
    update(bytes.data(), bytes.size());
  }

  /// Finalizes a copy of the state; the hasher stays usable.
  [[nodiscard]] Digest128 digest() const noexcept;

 private:
  static constexpr std::uint64_t kOffsetA = 0x9ae16a3b2f90404fULL;
  static constexpr std::uint64_t kOffsetB = 0xc949d7c7509e6557ULL;
  static constexpr std::uint64_t kMulA = 0x9ddfea08eb382d69ULL;
  static constexpr std::uint64_t kMulB = 0xff51afd7ed558ccdULL;

  void mix_word(std::uint64_t word) noexcept;

  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t length_ = 0;
  // Partial word buffer so chunk boundaries don't affect the digest.
  std::uint64_t pending_ = 0;
  unsigned pending_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Digest128 hash128(const void* data, std::size_t size,
                                std::uint64_t seed = 0) noexcept;

/// 64-bit checksum used by cache entry headers (cheaper to store than the
/// full digest; corruption detection only).
[[nodiscard]] std::uint64_t checksum64(const void* data,
                                       std::size_t size) noexcept;

}  // namespace parallax::util
