#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace parallax::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::string_view name,
                          std::uint64_t salt) noexcept {
  std::uint64_t h = master ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

Rng Rng::split() noexcept {
  // Derive a child seed from two draws; the child stream is independent for
  // all practical purposes (distinct SplitMix64 expansions).
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 32) ^ 0xa0761d6478bd642fULL);
}

}  // namespace parallax::util
