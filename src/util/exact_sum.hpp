// Exact (Kulisch-style) fixed-point superaccumulator for doubles.
//
// A 2560-bit two's-complement integer holds every finite double exactly
// (bit i carries weight 2^(i - 1088), spanning 2^-1074 through 2^1023 with
// ~400 bits of carry headroom), so add()/subtract() are *associative and
// commutative* — unlike floating-point addition. round() collapses the
// accumulator to the nearest double (ties to even), and is a pure function
// of the exact sum.
//
// This is what lets the incremental placement objective promise bit-identical
// costs to a fresh full re-score: removing a term and re-adding it later
// restores the accumulator bit-for-bit, no matter how many moves happened in
// between or in what order terms were enumerated.
#pragma once

#include <array>
#include <cstdint>

namespace parallax::util {

class ExactSum {
 public:
  static constexpr int kLimbs = 40;   // 40 x 64 = 2560 bits
  static constexpr int kBias = 1088;  // bit i weighs 2^(i - kBias)

  /// Adds a finite double exactly. NaN/Inf are undefined (asserted in
  /// debug); every caller in the repo accumulates finite cost terms.
  void add(double value) noexcept { accumulate(value, false); }
  /// Subtracts a finite double exactly: add(x); subtract(x) restores the
  /// previous accumulator bits for any x and any interleaving.
  void subtract(double value) noexcept { accumulate(value, true); }

  void clear() noexcept { limbs_.fill(0); }

  /// Nearest double to the exact sum (round half to even). Exact when the
  /// sum fits in 53 bits of significand — in particular an empty or fully
  /// cancelled accumulator returns +0.0.
  [[nodiscard]] double round() const noexcept;

  friend bool operator==(const ExactSum& a, const ExactSum& b) noexcept {
    return a.limbs_ == b.limbs_;
  }

 private:
  void accumulate(double value, bool negate) noexcept;

  std::array<std::uint64_t, kLimbs> limbs_{};
};

}  // namespace parallax::util
