// Monotonic wall-clock timer shared by the sweep driver and the bench
// harness.
#pragma once

#include <chrono>

namespace parallax::util {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parallax::util
