// A small fixed-size thread pool used to compile independent circuits in
// parallel (e.g. 18 benchmarks x 3 techniques in a bench binary). Tasks must
// be independent; the pool provides no ordering guarantees beyond
// wait_idle()/futures.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace parallax::util {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `f(i)` for i in [0, n) across the pool and blocks until all done.
  /// If any invocation throws, every task still runs to completion (or
  /// throws itself) before the first exception is rethrown here — `f` is
  /// never referenced after parallel_for returns.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace parallax::util
