// Minimal CSV writer used by the bench harness to dump machine-readable
// results next to the human-readable tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace parallax::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header line. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

 private:
  std::ofstream out_;
  std::size_t cols_;

  static std::string escape(const std::string& cell);
  void write_line(const std::vector<std::string>& cells);
};

}  // namespace parallax::util
