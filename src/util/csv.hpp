// Minimal CSV writing: RFC-4180-style escaping as reusable string helpers
// (what the report layer's --format csv renderer emits) plus a small
// file-backed writer around them.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace parallax::util {

/// Quotes `cell` when it contains a comma, quote, or newline; embedded
/// quotes are doubled. Cells without special characters pass through.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// One CSV record: escaped cells joined by commas, newline-terminated.
[[nodiscard]] std::string csv_line(const std::vector<std::string>& cells);

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header line. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

 private:
  std::ofstream out_;
  std::size_t cols_;
};

}  // namespace parallax::util
