// Two-tier content-addressed byte store behind the compilation cache: an
// in-memory LRU (bounded by bytes) in front of an on-disk directory of
// entries named by their 128-bit key, plus an append-only index file.
//
// Disk layout under `directory`:
//   objects/<hh>/<32-hex>.bin   one entry; <hh> = first two hex chars
//   index.log                   one line per store: "<32-hex> <kind> <bytes>"
//   tmp/                        staging for atomic writes
//
// Entry file format: a fixed header (magic, payload version, kind, payload
// size, 64-bit payload checksum) followed by the payload. get() re-validates
// everything; a truncated file, a flipped byte, a version from a newer or
// older build, or a kind mismatch all degrade to a silent miss (and the bad
// file is unlinked best-effort) — never an exception to the caller.
//
// Concurrency: every operation is safe to call from the sweep driver's
// worker threads. The LRU/stats bookkeeping sits behind one mutex held only
// for map operations; file reads and writes run outside it, so worker
// threads' cache IO proceeds in parallel (the content address makes a
// doubly-read or doubly-written entry harmless — identical bytes). Across
// processes, object writes are write-to-tmp + rename (atomic on POSIX), so
// readers never observe a partial entry; the worst cross-process race is a
// duplicate index line, which the index reader dedups.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace parallax::cache {

using util::Digest128;

/// Payload kinds; folded into the entry header so a key collision across
/// kinds (impossible by construction, cheap to double-check) misses.
enum class Kind : std::uint32_t {
  kPlacement = 1,
  kResult = 2,
};

[[nodiscard]] const char* to_string(Kind kind) noexcept;

/// Bump to retire every existing on-disk entry (serialization change).
inline constexpr std::uint32_t kPayloadVersion = 1;

struct StoreOptions {
  /// On-disk root; empty disables the disk tier (memory-only cache).
  std::string directory;
  /// Memory-tier budget; entries beyond it are evicted least-recently-used
  /// (they remain on disk). 0 disables the memory tier.
  std::size_t max_memory_bytes = 64ull << 20;
};

struct StoreStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
  std::size_t evictions = 0;
  /// Entries dropped because validation failed (truncation, checksum,
  /// version, kind).
  std::size_t corrupt = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class Store {
 public:
  explicit Store(StoreOptions options);

  /// Payload bytes for `key`, or nullopt (absent or invalid).
  [[nodiscard]] std::optional<std::string> get(Kind kind, const Digest128& key);

  /// Stores a payload in both tiers. Overwrites are idempotent — the content
  /// address guarantees identical bytes.
  void put(Kind kind, const Digest128& key, const std::string& payload);

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return options_.directory;
  }
  [[nodiscard]] bool has_disk_tier() const noexcept {
    return !options_.directory.empty();
  }

  /// One row per distinct on-disk entry (from the index, falling back to a
  /// directory scan when the index is missing), existence-checked.
  struct IndexEntry {
    Digest128 key;
    Kind kind = Kind::kPlacement;
    std::uint64_t payload_bytes = 0;
  };
  [[nodiscard]] std::vector<IndexEntry> entries() const;

  /// Drops both tiers; returns the number of disk entries removed.
  std::size_t clear();

 private:
  struct MemKey {
    Kind kind;
    Digest128 key;
    friend auto operator<=>(const MemKey&, const MemKey&) noexcept = default;
  };
  using LruList = std::list<std::pair<MemKey, std::string>>;

  [[nodiscard]] std::string object_path(const Digest128& key) const;
  /// Inserts or replaces; replacement matters when a stale-but-checksummed
  /// payload was loaded before its entry was recomputed and re-put.
  void memory_insert_locked(const MemKey& key, const std::string& payload);

  /// Lock-free disk helpers: all shared state they touch is atomic or
  /// guarded separately; callers fold the returned accounting into stats_
  /// under the mutex.
  struct DiskRead {
    std::optional<std::string> payload;
    std::uint64_t bytes_read = 0;
    bool corrupt = false;
  };
  [[nodiscard]] DiskRead disk_read(Kind kind, const Digest128& key);
  /// Returns bytes written (0 when the write was skipped or failed).
  [[nodiscard]] std::uint64_t disk_write(Kind kind, const Digest128& key,
                                         const std::string& payload);

  StoreOptions options_;
  mutable std::mutex mutex_;  // LRU + stats bookkeeping only, never IO
  LruList lru_;  // front = most recently used
  std::map<MemKey, LruList::iterator> by_key_;
  std::size_t memory_bytes_ = 0;
  std::atomic<std::uint64_t> tmp_counter_{0};
  std::mutex index_mutex_;  // serializes in-process index.log appends
  StoreStats stats_;
};

}  // namespace parallax::cache
