// Two-tier content-addressed byte store behind the compilation cache: an
// in-memory LRU (bounded by bytes) in front of an on-disk directory of
// entries named by their 128-bit key, plus an append-only index file.
//
// Disk layout under `directory`:
//   objects/<hh>/<32-hex>.bin   one entry; <hh> = first two hex chars
//   index.log                   one line per store: "<32-hex> <kind> <bytes>"
//   tmp/                        staging for atomic writes
//
// Entry file format: a fixed header (magic, payload version, kind, payload
// size, 64-bit payload checksum) followed by the payload. get() re-validates
// everything; a truncated file, a flipped byte, a version from a newer or
// older build, or a kind mismatch all degrade to a silent miss (and the bad
// file is unlinked best-effort) — never an exception to the caller.
//
// Concurrency: every operation is safe to call from the sweep driver's
// worker threads. The LRU/stats bookkeeping sits behind one mutex held only
// for map operations; file reads and writes run outside it, so worker
// threads' cache IO proceeds in parallel (the content address makes a
// doubly-read or doubly-written entry harmless — identical bytes). Across
// processes, object writes are write-to-tmp + rename (atomic on POSIX), so
// readers never observe a partial entry; the worst cross-process race is a
// duplicate index line, which the index reader dedups.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace parallax::cache {

using util::Digest128;

/// Payload kinds; folded into the entry header so a key collision across
/// kinds (impossible by construction, cheap to double-check) misses.
enum class Kind : std::uint32_t {
  kPlacement = 1,
  kResult = 2,
};

[[nodiscard]] const char* to_string(Kind kind) noexcept;

/// Bump to retire every existing on-disk entry (serialization change).
/// v2: Layer::aod_moves joined the layer codec (per-layer movement-loss
/// accounting for the discrete-event simulator).
inline constexpr std::uint32_t kPayloadVersion = 2;

struct StoreOptions {
  /// On-disk root; empty disables the disk tier (memory-only cache).
  std::string directory;
  /// Memory-tier budget; entries beyond it are evicted least-recently-used
  /// (they remain on disk). 0 disables the memory tier.
  std::size_t max_memory_bytes = 64ull << 20;
  /// Disk-tier budget (entry files including headers); 0 = unbounded.
  /// When exceeded, entries are evicted LRU-by-index-order: index.log
  /// append order is the recency order (a re-put moves an entry to the
  /// back), so the least-recently-written entry goes first. Evicted entries
  /// degrade to clean misses — exactly like an entry that was never
  /// written. This is what keeps long sharded campaigns from growing a
  /// shared cache directory without bound. The budget is enforced per
  /// process over its open-time snapshot plus its own writes: N concurrent
  /// writers can transiently overshoot toward N x budget, and the next
  /// budgeted open trims the directory back. Sequential shard runs (the
  /// common campaign shape) stay within budget throughout.
  std::uint64_t max_disk_bytes = 0;
};

struct StoreStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
  std::size_t evictions = 0;
  /// Disk-tier entries evicted to honor max_disk_bytes.
  std::size_t disk_evictions = 0;
  /// Current disk-tier usage (tracked only when max_disk_bytes > 0).
  std::uint64_t disk_bytes = 0;
  /// Entries dropped because validation failed (truncation, checksum,
  /// version, kind).
  std::size_t corrupt = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class Store {
 public:
  explicit Store(StoreOptions options);

  /// Payload bytes for `key`, or nullopt (absent or invalid).
  [[nodiscard]] std::optional<std::string> get(Kind kind, const Digest128& key);

  /// Stores a payload in both tiers. Overwrites are idempotent — the content
  /// address guarantees identical bytes.
  void put(Kind kind, const Digest128& key, const std::string& payload);

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return options_.directory;
  }
  [[nodiscard]] bool has_disk_tier() const noexcept {
    return !options_.directory.empty();
  }

  /// One row per distinct on-disk entry (from the index, falling back to a
  /// directory scan when the index is missing), existence-checked.
  struct IndexEntry {
    Digest128 key;
    Kind kind = Kind::kPlacement;
    std::uint64_t payload_bytes = 0;
  };
  [[nodiscard]] std::vector<IndexEntry> entries() const;

  /// Drops both tiers; returns the number of disk entries removed.
  std::size_t clear();

 private:
  struct MemKey {
    Kind kind;
    Digest128 key;
    friend auto operator<=>(const MemKey&, const MemKey&) noexcept = default;
  };
  using LruList = std::list<std::pair<MemKey, std::string>>;

  [[nodiscard]] std::string object_path(const Digest128& key) const;
  /// Lists object files by reading each header (32 bytes, never the
  /// payload) — the index-less fallback shared by entries() and
  /// load_disk_usage(). Scan order stands in for the lost recency order.
  [[nodiscard]] std::vector<IndexEntry> scan_objects() const;
  /// Inserts or replaces; replacement matters when a stale-but-checksummed
  /// payload was loaded before its entry was recomputed and re-put.
  void memory_insert_locked(const MemKey& key, const std::string& payload);

  /// Lock-free disk helpers: all shared state they touch is atomic or
  /// guarded separately; callers fold the returned accounting into stats_
  /// under the mutex.
  struct DiskRead {
    std::optional<std::string> payload;
    std::uint64_t bytes_read = 0;
    bool corrupt = false;
  };
  [[nodiscard]] DiskRead disk_read(Kind kind, const Digest128& key);
  struct DiskWrite {
    /// 0 when the write was skipped or failed.
    std::uint64_t bytes_written = 0;
    /// Entries unlinked to honor max_disk_bytes.
    std::size_t evictions = 0;
  };
  [[nodiscard]] DiskWrite disk_write(Kind kind, const Digest128& key,
                                     const std::string& payload);

  // --- disk budget tracking (only active when max_disk_bytes > 0) ------------
  struct DiskEntryInfo {
    Digest128 key;
    Kind kind = Kind::kPlacement;
    std::uint64_t file_bytes = 0;
  };
  /// Entries in index-append order (front = least recently written); the
  /// tracking members below are guarded by index_mutex_.
  using DiskList = std::list<DiskEntryInfo>;
  /// Rebuilds the tracking state from index.log (existence-checked), or
  /// from an object-directory scan when the index is missing — a budget
  /// must bound pre-existing files even if the user deleted the log.
  void load_disk_usage();
  /// Unlinks least-recently-written entries until within budget. Caller
  /// holds index_mutex_. Returns the number of evictions.
  std::size_t evict_over_budget_locked();
  /// Records/refreshes an entry and evicts front entries while over budget.
  /// Caller holds index_mutex_. Returns the number of evictions.
  std::size_t track_disk_entry_locked(const Digest128& key, Kind kind,
                                      std::uint64_t file_bytes);
  /// Forgets an entry whose file was dropped outside eviction (corruption).
  void untrack_disk_entry(const Digest128& key);
  /// Rewrites index.log from disk_order_ once dead lines (evicted or
  /// re-put entries) dominate, so a churning budgeted campaign keeps the
  /// log bounded too, not just the objects. Caller holds index_mutex_.
  void maybe_compact_index_locked();
  /// Unconditional index.log rewrite from disk_order_ (atomic
  /// write-to-tmp + rename, failures quietly keep the old log). Caller
  /// holds index_mutex_.
  void compact_index_locked();

  StoreOptions options_;
  mutable std::mutex mutex_;  // LRU + stats bookkeeping only, never IO
  LruList lru_;  // front = most recently used
  std::map<MemKey, LruList::iterator> by_key_;
  std::size_t memory_bytes_ = 0;
  std::atomic<std::uint64_t> tmp_counter_{0};
  mutable std::mutex index_mutex_;  // index.log appends + disk tracking
  DiskList disk_order_;
  std::map<Digest128, DiskList::iterator> disk_by_key_;
  std::uint64_t disk_bytes_ = 0;
  std::uint64_t stale_index_lines_ = 0;
  StoreStats stats_;
};

}  // namespace parallax::cache
