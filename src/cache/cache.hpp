// The persistent compilation cache: a typed facade over the two-tier store
// that persists annealed Graphine placements and whole compile results
// across processes. This is the subsystem that makes sweeps incremental —
// a rerun of a bench or figure script only re-anneals (O(q^5), paper
// Sec. III) circuits whose fingerprints actually changed, and whole sweep
// cells short-circuit on result hits with byte-identical payloads.
//
// Consumers:
//   * sweep::run (sweep/sweep.hpp) consults it beneath the in-memory memos
//     when sweep::Options::cache is set.
//   * technique::Registry::compile has a cached overload for one-off
//     compiles through the registry front door.
//   * tools/parallax_cli.cpp exposes `cache stats|clear|prewarm` and
//     --cache-dir/--no-cache flags.
//
// Failure philosophy: the cache must never turn a compile that would have
// succeeded into a failure. Unreadable directories, corrupt or stale
// entries, and version drift all degrade to misses; only programmer errors
// throw.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/serialize.hpp"
#include "cache/store.hpp"

namespace parallax::cache {

struct CacheOptions {
  /// Cache root; empty resolves to default_directory() at construction.
  std::string directory;
  /// Disable the disk tier entirely (memory-only; useful in tests and for
  /// PARALLAX-style "share within this process only" runs).
  bool disk = true;
  std::size_t max_memory_bytes = 64ull << 20;
  /// Disk-tier budget; 0 = unbounded. Over-budget entries are evicted
  /// LRU-by-index-order (least recently written first) and degrade to clean
  /// misses — the knob that keeps long sharded campaigns from growing a
  /// shared cache directory without bound (StoreOptions::max_disk_bytes).
  std::uint64_t max_disk_bytes = 0;
};

/// $PARALLAX_CACHE_DIR when set and non-empty, else ".parallax-cache"
/// (which is .gitignore'd).
[[nodiscard]] std::string default_directory();

struct CacheStats {
  std::size_t placement_hits = 0;
  std::size_t placement_misses = 0;
  std::size_t result_hits = 0;
  std::size_t result_misses = 0;
  StoreStats store;
};

class CompilationCache {
 public:
  explicit CompilationCache(CacheOptions options = {});

  /// Convenience for the common shared_ptr plumbing (sweep::Options::cache).
  [[nodiscard]] static std::shared_ptr<CompilationCache> open(
      CacheOptions options = {});

  [[nodiscard]] std::optional<placement::Topology> get_placement(
      const Digest128& key);
  void put_placement(const Digest128& key,
                     const placement::Topology& topology);

  [[nodiscard]] std::optional<CachedCell> get_result(const Digest128& key);
  void put_result(const Digest128& key, const CachedCell& cell);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::vector<Store::IndexEntry> entries() const {
    return store_.entries();
  }
  /// Wipes both tiers; returns removed disk-entry count.
  std::size_t clear() { return store_.clear(); }

  [[nodiscard]] const std::string& directory() const noexcept {
    return store_.directory();
  }
  [[nodiscard]] bool has_disk_tier() const noexcept {
    return store_.has_disk_tier();
  }

 private:
  Store store_;
  mutable std::mutex mutex_;
  CacheStats stats_;
};

}  // namespace parallax::cache
