// Stable fingerprints for the persistent compilation cache: every cacheable
// input (circuits, hardware configs, pass options) is canonically
// byte-serialized — fixed-width little-endian fields, length-prefixed
// strings, doubles as IEEE-754 bit patterns — and fed through the 128-bit
// hash in util/hash.hpp. Equal inputs produce equal digests in every run and
// process, which is what makes the on-disk cache content-addressed; any
// field that can change a compile result is included, and nothing else
// (labels like HardwareConfig::name are deliberately excluded).
//
// kFingerprintSchema seeds every digest, so widening a fingerprint (adding a
// field) or changing the serialization bumps one constant and all stale
// entries become silent misses instead of wrong hits.
#pragma once

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "parallax/aod_selection.hpp"
#include "parallax/scheduler.hpp"
#include "pipeline/pipeline.hpp"
#include "placement/discretize.hpp"
#include "placement/graphine.hpp"
#include "shots/parallelize.hpp"
#include "util/hash.hpp"

namespace parallax::cache {

using util::Digest128;

/// Bump when any fingerprint gains/loses a field or changes encoding; old
/// cache entries then miss by key instead of decoding garbage.
inline constexpr std::uint64_t kFingerprintSchema = 1;

/// Canonical byte feeder: typed values in, hash state forward. All integer
/// widths are fixed and little-endian; strings are length-prefixed so
/// ("ab","c") never collides with ("a","bc").
class Fingerprinter {
 public:
  Fingerprinter() noexcept : hash_(kFingerprintSchema) {}

  void u8(std::uint8_t v) noexcept { hash_.update(&v, 1); }
  void u32(std::uint32_t v) noexcept;
  void u64(std::uint64_t v) noexcept;
  void i32(std::int32_t v) noexcept { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept;
  void boolean(bool v) noexcept { u8(v ? 1 : 0); }
  void str(std::string_view s) noexcept;
  void digest(const Digest128& d) noexcept;

  [[nodiscard]] Digest128 finish() const noexcept { return hash_.digest(); }

 private:
  util::Hash128 hash_;
};

// --- streaming content fingerprints -------------------------------------------

/// Streambuf decorator that hashes every byte pulled through it. Wrapping a
/// file's streambuf and handing the wrapper to qasm::StreamParser
/// fingerprints the raw file content in the same single pass that parses it
/// — no second read, O(1) extra memory. The digest is chunking-independent
/// and equals fingerprint_stream() over the same bytes, but only once the
/// stream has been fully drained.
class HashingStreamBuf final : public std::streambuf {
 public:
  explicit HashingStreamBuf(std::streambuf* source);

  /// Digest of the bytes consumed so far (domain-tagged file content).
  [[nodiscard]] Digest128 content_digest() const noexcept;
  /// Total bytes pulled through this buffer so far.
  [[nodiscard]] std::uint64_t bytes_hashed() const noexcept { return n_; }

 protected:
  int_type underflow() override;
  int_type uflow() override;
  std::streamsize xsgetn(char_type* s, std::streamsize n) override;

 private:
  std::streambuf* source_;
  util::Hash128 hash_;
  std::uint64_t n_ = 0;
  char_type pending_ = 0;      // the character exposed by underflow()
  bool have_pending_ = false;  // pending_ read from source but not consumed
};

/// One-shot content digest of everything remaining in `in`. Equal bytes give
/// equal digests across runs and platforms; the digest domain is disjoint
/// from every structured fingerprint below, so a file's raw bytes can never
/// collide with, say, a circuit fingerprint.
[[nodiscard]] Digest128 fingerprint_stream(std::istream& in);

// --- component fingerprints ---------------------------------------------------

/// Gates, qubit count, and name (seeds derive from the name, so two
/// identical gate lists with different names compile differently).
[[nodiscard]] Digest128 fingerprint(const circuit::Circuit& circuit);

/// Every numeric/geometry field; the display name is excluded (it never
/// reaches a compile result).
[[nodiscard]] Digest128 fingerprint(const hardware::HardwareConfig& config);

[[nodiscard]] Digest128 fingerprint(const placement::GraphineOptions& options);
[[nodiscard]] Digest128 fingerprint(const placement::Topology& topology);

/// Weighted interaction graph content: qubit count plus every (a, b, weight)
/// edge in canonical order. This is the circuit identity of one placement
/// window — two windows with the same reindexed subgraph share a digest even
/// when cut from different circuits, which is what lets windowed placement
/// reuse per-window anneals across a corpus.
[[nodiscard]] Digest128 fingerprint(const circuit::InteractionGraph& graph);

/// Full pipeline::CompileOptions: all per-stage options, the master seed,
/// assume_transpiled, and (when set) the preset topology's content.
[[nodiscard]] Digest128 fingerprint(const pipeline::CompileOptions& options);

// --- cache keys ---------------------------------------------------------------

/// Key for a cached annealed placement: the effective (transpiled) circuit's
/// fingerprint plus the placement options with their derived seed.
[[nodiscard]] Digest128 placement_key(
    const Digest128& circuit_fingerprint,
    const placement::GraphineOptions& options);

/// Key for a cached whole compile result (a sweep cell or a registry
/// compile). `noise` is non-null iff a success probability rides with the
/// result; `shots` is non-null iff shot plans do — their option fields fold
/// into the key so a sweep wanting different derived outputs never hits an
/// entry that lacks them.
[[nodiscard]] Digest128 result_key(
    const Digest128& circuit_fingerprint, std::string_view technique,
    const std::vector<std::string>& pass_names,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options,
    const noise::NoiseOptions* noise = nullptr,
    const shots::ShotOptions* shots = nullptr);

}  // namespace parallax::cache
