#include "cache/fingerprint.hpp"

#include <bit>

#include "cache/serialize.hpp"

namespace parallax::cache {

void Fingerprinter::u32(std::uint32_t v) noexcept {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  hash_.update(bytes, sizeof(bytes));
}

void Fingerprinter::u64(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  hash_.update(bytes, sizeof(bytes));
}

void Fingerprinter::f64(double v) noexcept {
  u64(std::bit_cast<std::uint64_t>(v));
}

void Fingerprinter::str(std::string_view s) noexcept {
  u64(s.size());
  hash_.update(s.data(), s.size());
}

void Fingerprinter::digest(const Digest128& d) noexcept {
  u64(d.hi);
  u64(d.lo);
}

namespace {

// feed_* appends a component's canonical bytes to an ongoing fingerprint, so
// composite keys hash one flat byte stream instead of nesting digests.

// Circuits and topologies already have one canonical byte layout — the
// serialization codec. Hashing those exact bytes (length-prefixed, so the
// stream stays self-delimiting inside composite keys) keeps a single
// definition of "the content" for both addressing and storage: a field
// added to Gate or Topology lands in keys and payloads together.

void feed(Fingerprinter& fp, const circuit::Circuit& circuit) {
  Writer writer;
  encode(writer, circuit);
  fp.str(writer.bytes());
}

void feed(Fingerprinter& fp, const hardware::HardwareConfig& config) {
  fp.i32(config.grid_side);
  fp.f64(config.min_separation_um);
  fp.f64(config.discretization_padding_um);
  fp.i32(config.aod_rows);
  fp.i32(config.aod_cols);
  fp.f64(config.u3_time_us);
  fp.f64(config.cz_time_us);
  fp.f64(config.swap_time_us);
  fp.f64(config.trap_switch_time_us);
  fp.f64(config.aod_speed_um_per_us);
  fp.f64(config.u3_error);
  fp.f64(config.cz_error);
  fp.f64(config.swap_error);
  fp.f64(config.trap_switch_error);
  fp.f64(config.movement_loss);
  fp.f64(config.atom_loss_rate);
  fp.f64(config.readout_error);
  fp.f64(config.t1_seconds);
  fp.f64(config.t2_seconds);
}

void feed(Fingerprinter& fp, const placement::GraphineOptions& options) {
  fp.i32(options.anneal_iterations);
  fp.i32(options.local_search_evaluations);
  fp.f64(options.crowding_distance);
  fp.f64(options.crowding_weight);
  fp.boolean(options.warm_start);
  fp.u64(options.seed);
  // Annealer-mode fields are fed only when non-default: legacy
  // (full-vector, single-chain) options hash to exactly their pre-PR-6
  // bytes, so every placement and result cached before delta scoring
  // existed still replays. Non-default modes produce different layouts and
  // must key differently.
  if (options.proposal != placement::ProposalMode::kFullVector ||
      options.chains != 1) {
    fp.i32(static_cast<std::int32_t>(options.proposal));
    fp.i32(options.chains);
  }
  // Same deal for windowing: callers normalize max_window_qubits to 0 when
  // the circuit fits in one window, so the field is hashed only when the
  // windowed path actually changes the layout.
  if (options.max_window_qubits != 0) {
    fp.i32(options.max_window_qubits);
  }
  // And for the raced portfolio: 0 (no race) is the default for every
  // pre-portfolio key.
  if (options.portfolio_entrants != 0) {
    fp.i32(options.portfolio_entrants);
  }
}

void feed(Fingerprinter& fp, const circuit::InteractionGraph& graph) {
  fp.i32(graph.n_qubits());
  fp.u64(graph.edges().size());
  for (const circuit::WeightedEdge& e : graph.edges()) {
    fp.i32(e.a);
    fp.i32(e.b);
    fp.i64(e.weight);
  }
}

void feed(Fingerprinter& fp, const placement::Topology& topology) {
  Writer writer;
  encode(writer, topology);
  fp.str(writer.bytes());
}

void feed(Fingerprinter& fp, const circuit::TranspileOptions& options) {
  fp.boolean(options.fuse_single_qubit);
  fp.boolean(options.cancel_cz_pairs);
  fp.boolean(options.drop_identities);
  fp.f64(options.identity_tolerance);
  fp.i32(options.max_iterations);
}

void feed(Fingerprinter& fp, const placement::DiscretizeOptions& options) {
  fp.f64(options.spread_factor);
}

void feed(Fingerprinter& fp, const compiler::SchedulerOptions& options) {
  fp.boolean(options.return_home);
  fp.i32(options.max_move_iterations);
  fp.u64(options.shuffle_seed);
  fp.boolean(options.record_positions);
}

void feed(Fingerprinter& fp, const compiler::AodSelectionOptions& options) {
  fp.f64(options.out_of_range_weight);
  fp.f64(options.interference_weight);
}

void feed(Fingerprinter& fp, const pipeline::CompileOptions& options) {
  feed(fp, options.transpile);
  feed(fp, options.placement);
  feed(fp, options.discretize);
  feed(fp, options.scheduler);
  feed(fp, options.aod_selection);
  fp.boolean(options.assume_transpiled);
  fp.boolean(options.preset_topology.has_value());
  if (options.preset_topology) feed(fp, *options.preset_topology);
  fp.u64(options.seed);
  // Fidelity fields are fed only when non-default, like the annealer-mode
  // fields above: closed-form defaults hash to exactly their pre-sim bytes,
  // so every result cached before the simulator existed still replays.
  if (!options.fidelity.is_default()) {
    fp.u8(static_cast<std::uint8_t>(options.fidelity.model));
    fp.i64(options.fidelity.shots);
    fp.f64(options.fidelity.moving_decoherence_scale);
  }
}

void feed(Fingerprinter& fp, const noise::NoiseOptions& options) {
  fp.boolean(options.include_gate_errors);
  fp.boolean(options.include_decoherence);
  fp.boolean(options.include_operation_overheads);
  fp.boolean(options.include_readout);
  fp.boolean(options.include_atom_loss);
  fp.boolean(options.per_qubit_decoherence);
}

void feed(Fingerprinter& fp, const shots::ShotOptions& options) {
  fp.i64(options.logical_shots);
  fp.f64(options.inter_shot_overhead_us);
}

/// Domain tags keep key spaces disjoint: a placement key can never equal a
/// result key even for pathologically similar inputs.
enum class Domain : std::uint8_t {
  kCircuit = 1,
  kHardware = 2,
  kGraphineOptions = 3,
  kTopology = 4,
  kCompileOptions = 5,
  kPlacementKey = 6,
  kResultKey = 7,
  kFileContent = 8,
  kInteractionGraph = 9,
};

Fingerprinter begin(Domain domain) {
  Fingerprinter fp;
  fp.u8(static_cast<std::uint8_t>(domain));
  return fp;
}

/// Schema-seeded raw-byte hash opened with a domain tag; file-content
/// digests hash the byte stream directly (no length prefix — the stream is
/// the entire input, so self-delimiting framing buys nothing).
util::Hash128 begin_raw(Domain domain) {
  util::Hash128 hash(kFingerprintSchema);
  const auto tag = static_cast<std::uint8_t>(domain);
  hash.update(&tag, 1);
  return hash;
}

}  // namespace

// --- streaming content fingerprints -------------------------------------------

HashingStreamBuf::HashingStreamBuf(std::streambuf* source)
    : source_(source), hash_(begin_raw(Domain::kFileContent)) {}

Digest128 HashingStreamBuf::content_digest() const noexcept {
  return hash_.digest();
}

HashingStreamBuf::int_type HashingStreamBuf::underflow() {
  if (!have_pending_) {
    const int_type c = source_->sbumpc();
    if (traits_type::eq_int_type(c, traits_type::eof())) return c;
    pending_ = traits_type::to_char_type(c);
    have_pending_ = true;
    hash_.update(&pending_, 1);
    ++n_;
  }
  return traits_type::to_int_type(pending_);
}

HashingStreamBuf::int_type HashingStreamBuf::uflow() {
  const int_type c = underflow();
  have_pending_ = false;
  return c;
}

std::streamsize HashingStreamBuf::xsgetn(char_type* s, std::streamsize n) {
  std::streamsize got = 0;
  if (n > 0 && have_pending_) {
    *s++ = pending_;
    have_pending_ = false;
    ++got;
    --n;
  }
  if (n > 0) {
    const std::streamsize direct = source_->sgetn(s, n);
    if (direct > 0) {
      hash_.update(s, static_cast<std::size_t>(direct));
      n_ += static_cast<std::uint64_t>(direct);
      got += direct;
    }
  }
  return got;
}

Digest128 fingerprint_stream(std::istream& in) {
  util::Hash128 hash = begin_raw(Domain::kFileContent);
  char buf[std::size_t{1} << 16];
  std::streambuf* source = in.rdbuf();
  for (;;) {
    const std::streamsize got =
        source->sgetn(buf, static_cast<std::streamsize>(sizeof buf));
    if (got <= 0) break;
    hash.update(buf, static_cast<std::size_t>(got));
  }
  return hash.digest();
}

Digest128 fingerprint(const circuit::Circuit& circuit) {
  Fingerprinter fp = begin(Domain::kCircuit);
  feed(fp, circuit);
  return fp.finish();
}

Digest128 fingerprint(const hardware::HardwareConfig& config) {
  Fingerprinter fp = begin(Domain::kHardware);
  feed(fp, config);
  return fp.finish();
}

Digest128 fingerprint(const placement::GraphineOptions& options) {
  Fingerprinter fp = begin(Domain::kGraphineOptions);
  feed(fp, options);
  return fp.finish();
}

Digest128 fingerprint(const placement::Topology& topology) {
  Fingerprinter fp = begin(Domain::kTopology);
  feed(fp, topology);
  return fp.finish();
}

Digest128 fingerprint(const circuit::InteractionGraph& graph) {
  Fingerprinter fp = begin(Domain::kInteractionGraph);
  feed(fp, graph);
  return fp.finish();
}

Digest128 fingerprint(const pipeline::CompileOptions& options) {
  Fingerprinter fp = begin(Domain::kCompileOptions);
  feed(fp, options);
  return fp.finish();
}

Digest128 placement_key(const Digest128& circuit_fingerprint,
                        const placement::GraphineOptions& options) {
  Fingerprinter fp = begin(Domain::kPlacementKey);
  fp.digest(circuit_fingerprint);
  feed(fp, options);
  return fp.finish();
}

Digest128 result_key(const Digest128& circuit_fingerprint,
                     std::string_view technique,
                     const std::vector<std::string>& pass_names,
                     const hardware::HardwareConfig& config,
                     const pipeline::CompileOptions& options,
                     const noise::NoiseOptions* noise,
                     const shots::ShotOptions* shots) {
  Fingerprinter fp = begin(Domain::kResultKey);
  fp.digest(circuit_fingerprint);
  fp.str(technique);
  // The pass list, not just the name: a custom registry may rebind a name to
  // a different pipeline, which must not hit the old entries.
  fp.u64(pass_names.size());
  for (const auto& name : pass_names) fp.str(name);
  feed(fp, config);
  feed(fp, options);
  fp.boolean(noise != nullptr);
  if (noise != nullptr) feed(fp, *noise);
  fp.boolean(shots != nullptr);
  if (shots != nullptr) feed(fp, *shots);
  return fp.finish();
}

}  // namespace parallax::cache
