#include "cache/store.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "cache/serialize.hpp"
#include "util/parse.hpp"

namespace parallax::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kMagic = 0x3145484341435850ULL;  // "PXCACHE1" LE
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

std::string encode_header(Kind kind, const std::string& payload) {
  Writer writer;
  writer.u64(kMagic);
  writer.u32(kPayloadVersion);
  writer.u32(static_cast<std::uint32_t>(kind));
  writer.u64(payload.size());
  writer.u64(util::checksum64(payload.data(), payload.size()));
  return writer.take();
}

/// Validates a whole entry file; returns the payload or nullopt.
std::optional<std::string> validate_entry(Kind kind, std::string contents) {
  if (contents.size() < kHeaderBytes) return std::nullopt;
  Reader reader(contents);
  try {
    if (reader.u64() != kMagic) return std::nullopt;
    if (reader.u32() != kPayloadVersion) return std::nullopt;
    if (reader.u32() != static_cast<std::uint32_t>(kind)) return std::nullopt;
    const std::uint64_t size = reader.u64();
    const std::uint64_t checksum = reader.u64();
    if (size != contents.size() - kHeaderBytes) return std::nullopt;
    std::string payload = contents.substr(kHeaderBytes);
    if (util::checksum64(payload.data(), payload.size()) != checksum) {
      return std::nullopt;
    }
    return payload;
  } catch (const ReadError&) {
    return std::nullopt;
  }
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

void remove_quietly(const fs::path& path) noexcept {
  std::error_code ec;
  fs::remove(path, ec);
}

struct IndexLine {
  Digest128 key;
  Kind kind = Kind::kPlacement;
  std::uint64_t payload_bytes = 0;
};

/// Parses one "<32-hex> <kind> <payload_bytes>" index line, strictly.
/// Returns nullopt for anything malformed — a torn line from an append that
/// raced a concurrent process's compaction rename, hand-edited garbage, an
/// unknown kind — so one bad line never discards the rest of the index.
std::optional<IndexLine> parse_index_line(const std::string& line) {
  std::istringstream in(line);
  std::string hex, kind_token, bytes_token, extra;
  if (!(in >> hex >> kind_token >> bytes_token) || (in >> extra)) {
    return std::nullopt;
  }
  const auto key = Digest128::from_hex(hex);
  const auto kind = util::parse_u32(kind_token);
  const auto payload_bytes = util::parse_u64(bytes_token);
  if (!key || !kind || !payload_bytes.has_value()) return std::nullopt;
  if (*kind != static_cast<std::uint32_t>(Kind::kPlacement) &&
      *kind != static_cast<std::uint32_t>(Kind::kResult)) {
    return std::nullopt;
  }
  return IndexLine{*key, static_cast<Kind>(*kind), *payload_bytes};
}

}  // namespace

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kPlacement:
      return "placement";
    case Kind::kResult:
      return "result";
  }
  return "unknown";
}

Store::Store(StoreOptions options) : options_(std::move(options)) {
  if (has_disk_tier()) {
    std::error_code ec;
    fs::create_directories(fs::path(options_.directory) / "objects", ec);
    fs::create_directories(fs::path(options_.directory) / "tmp", ec);
    // A read-only or unwritable location degrades to memory-only behavior;
    // individual writes below fail quietly too.
    if (options_.max_disk_bytes > 0) load_disk_usage();
  }
}

void Store::load_disk_usage() {
  // Rebuild the recency order from index.log: append order is write order,
  // and a re-put appends again, so keeping the *last* occurrence of each key
  // reproduces least-recently-written-first eviction across processes.
  std::size_t evictions = 0;
  std::uint64_t usage = 0;
  bool rebuilt_from_scan = false;
  {
    std::lock_guard lock(index_mutex_);
    disk_order_.clear();
    disk_by_key_.clear();
    disk_bytes_ = 0;
    stale_index_lines_ = 0;
    std::map<Digest128, DiskList::iterator> seen;
    std::ifstream index(fs::path(options_.directory) / "index.log");
    if (index) {
      // Line-by-line so one torn or malformed line (a concurrent process's
      // append racing a compaction rename) skips that line only — a
      // whole-stream parse would silently drop every entry after it.
      std::string line;
      while (std::getline(index, line)) {
        const auto parsed = parse_index_line(line);
        if (!parsed) continue;
        if (const auto it = seen.find(parsed->key); it != seen.end()) {
          disk_order_.erase(it->second);  // re-put: refresh recency
          seen.erase(it);
        }
        disk_order_.push_back(
            {parsed->key, parsed->kind, kHeaderBytes + parsed->payload_bytes});
        seen[parsed->key] = std::prev(disk_order_.end());
      }
    } else {
      // Index lost (e.g. user deleted it): the budget must still bound the
      // object files, so rebuild the listing from the files themselves and
      // rewrite the index below — a later open must not lose track of the
      // recovered entries again.
      for (const IndexEntry& entry : scan_objects()) {
        disk_order_.push_back(
            {entry.key, entry.kind, kHeaderBytes + entry.payload_bytes});
        seen[entry.key] = std::prev(disk_order_.end());
      }
      rebuilt_from_scan = true;
    }
    for (auto it = disk_order_.begin(); it != disk_order_.end();) {
      std::error_code ec;
      if (!fs::exists(object_path(it->key), ec)) {
        it = disk_order_.erase(it);
        ++stale_index_lines_;
        continue;
      }
      disk_by_key_[it->key] = it;
      disk_bytes_ += it->file_bytes;
      ++it;
    }
    // Enforce the budget on whatever a previous (possibly unbounded) run
    // left behind, so opening a directory with a budget immediately honors
    // it.
    evictions = evict_over_budget_locked();
    if (rebuilt_from_scan) {
      compact_index_locked();  // persist the recovered listing
    } else {
      maybe_compact_index_locked();
    }
    usage = disk_bytes_;
  }
  std::lock_guard stats_lock(mutex_);
  stats_.disk_evictions += evictions;
  stats_.disk_bytes = usage;
}

std::size_t Store::evict_over_budget_locked() {
  std::size_t evictions = 0;
  while (disk_bytes_ > options_.max_disk_bytes && !disk_order_.empty()) {
    const DiskEntryInfo& victim = disk_order_.front();
    remove_quietly(object_path(victim.key));
    disk_bytes_ -= victim.file_bytes;
    disk_by_key_.erase(victim.key);
    disk_order_.pop_front();
    ++evictions;
    ++stale_index_lines_;
  }
  return evictions;
}

std::size_t Store::track_disk_entry_locked(const Digest128& key, Kind kind,
                                           std::uint64_t file_bytes) {
  if (const auto it = disk_by_key_.find(key); it != disk_by_key_.end()) {
    disk_bytes_ -= it->second->file_bytes;
    disk_order_.erase(it->second);
    disk_by_key_.erase(it);
    ++stale_index_lines_;  // the refreshed entry's old line is now dead
  }
  disk_order_.push_back({key, kind, file_bytes});
  disk_by_key_[key] = std::prev(disk_order_.end());
  disk_bytes_ += file_bytes;
  const std::size_t evictions = evict_over_budget_locked();
  maybe_compact_index_locked();
  return evictions;
}

void Store::untrack_disk_entry(const Digest128& key) {
  if (options_.max_disk_bytes == 0) return;
  std::lock_guard lock(index_mutex_);
  if (const auto it = disk_by_key_.find(key); it != disk_by_key_.end()) {
    disk_bytes_ -= it->second->file_bytes;
    disk_order_.erase(it->second);
    disk_by_key_.erase(it);
    ++stale_index_lines_;
  }
}

void Store::maybe_compact_index_locked() {
  // Compact once dead lines dominate live ones (with a floor so small
  // caches never bother). The rewrite races benignly with concurrent
  // processes: an append lost to the rename is an entry missing from the
  // listing until its next put, never a wrong hit — get() reads by path.
  if (stale_index_lines_ < disk_order_.size() + 64) return;
  compact_index_locked();
}

void Store::compact_index_locked() {
  const fs::path index_path = fs::path(options_.directory) / "index.log";
  // The tmp name carries pid AND a per-store counter: index_mutex_ is
  // per-Store (in-process), so two Store instances on one directory — same
  // pid, e.g. a serve session plus a CLI query — must not stage into the
  // same tmp file and interleave their rewrites. The loser of the final
  // rename race just leaves the winner's (equally valid) index in place.
  const fs::path tmp_path =
      fs::path(options_.directory) / "tmp" /
      ("index." + std::to_string(static_cast<long long>(::getpid())) + "." +
       std::to_string(tmp_counter_.fetch_add(1, std::memory_order_relaxed)) +
       ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return;  // unwritable: keep appending, try again later
    for (const DiskEntryInfo& entry : disk_order_) {
      out << entry.key.hex() << ' ' << static_cast<std::uint32_t>(entry.kind)
          << ' ' << (entry.file_bytes - kHeaderBytes) << '\n';
    }
    if (!out.good()) {
      out.close();
      remove_quietly(tmp_path);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, index_path, ec);
  if (ec) {
    remove_quietly(tmp_path);
    return;
  }
  stale_index_lines_ = 0;
}

std::string Store::object_path(const Digest128& key) const {
  const std::string hex = key.hex();
  return (fs::path(options_.directory) / "objects" / hex.substr(0, 2) /
          (hex + ".bin"))
      .string();
}

std::vector<Store::IndexEntry> Store::scan_objects() const {
  std::vector<IndexEntry> found;
  std::error_code ec;
  for (fs::recursive_directory_iterator
           it(fs::path(options_.directory) / "objects", ec),
       end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const auto key = Digest128::from_hex(it->path().stem().string());
    if (!key) continue;
    char header[kHeaderBytes];
    {
      std::ifstream in(it->path(), std::ios::binary);
      if (!in.read(header, kHeaderBytes)) continue;
    }
    Reader reader(std::string_view(header, kHeaderBytes));
    try {
      if (reader.u64() != kMagic) continue;
      if (reader.u32() != kPayloadVersion) continue;
      const auto kind = static_cast<Kind>(reader.u32());
      found.push_back({*key, kind, reader.u64()});
    } catch (const ReadError&) {
      continue;
    }
  }
  return found;
}

void Store::memory_insert_locked(const MemKey& key,
                                 const std::string& payload) {
  if (options_.max_memory_bytes == 0) return;
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    // Usually identical content (the address is the hash), but replace
    // anyway: a stale-schema payload that disk-hit into this tier must not
    // shadow the recomputed entry a later put() provides.
    memory_bytes_ -= it->second->second.size();
    it->second->second = payload;
    memory_bytes_ += payload.size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, payload);
    by_key_[key] = lru_.begin();
    memory_bytes_ += payload.size();
  }
  while (memory_bytes_ > options_.max_memory_bytes && lru_.size() > 1) {
    memory_bytes_ -= lru_.back().second.size();
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Store::DiskRead Store::disk_read(Kind kind, const Digest128& key) {
  DiskRead outcome;
  const fs::path path = object_path(key);
  auto contents = read_file(path);
  if (!contents) return outcome;
  outcome.bytes_read = contents->size();
  outcome.payload = validate_entry(kind, std::move(*contents));
  if (!outcome.payload) {
    // Corrupt, truncated, stale-version, or wrong-kind entry: drop it so the
    // next run rewrites a good one.
    outcome.corrupt = true;
    remove_quietly(path);
  }
  return outcome;
}

Store::DiskWrite Store::disk_write(Kind kind, const Digest128& key,
                                   const std::string& payload) {
  DiskWrite outcome;
  const std::string hex = key.hex();
  const fs::path final_path = object_path(key);
  std::error_code ec;
  fs::create_directories(final_path.parent_path(), ec);
  const fs::path tmp_path =
      fs::path(options_.directory) / "tmp" /
      (hex + "." + std::to_string(static_cast<long long>(::getpid())) + "." +
       std::to_string(tmp_counter_.fetch_add(1, std::memory_order_relaxed)) +
       ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return outcome;  // unwritable cache dir: skip quietly
    const std::string header = encode_header(kind, payload);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      out.close();
      remove_quietly(tmp_path);
      return outcome;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    remove_quietly(tmp_path);
    return outcome;
  }
  {
    std::lock_guard index_lock(index_mutex_);
    std::ofstream index(fs::path(options_.directory) / "index.log",
                        std::ios::app);
    if (index) {
      index << hex << ' ' << static_cast<std::uint32_t>(kind) << ' '
            << payload.size() << '\n';
    }
    if (options_.max_disk_bytes > 0) {
      outcome.evictions =
          track_disk_entry_locked(key, kind, kHeaderBytes + payload.size());
    }
  }
  outcome.bytes_written = kHeaderBytes + payload.size();
  return outcome;
}

std::optional<std::string> Store::get(Kind kind, const Digest128& key) {
  const MemKey mem_key{kind, key};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = by_key_.find(mem_key); it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.memory_hits;
      return it->second->second;
    }
  }
  if (has_disk_tier()) {
    // IO outside the lock: concurrent readers of the same key just read the
    // same immutable file twice.
    DiskRead outcome = disk_read(kind, key);
    if (outcome.corrupt) untrack_disk_entry(key);  // its file was unlinked
    std::lock_guard lock(mutex_);
    stats_.bytes_read += outcome.bytes_read;
    if (outcome.corrupt) ++stats_.corrupt;
    if (outcome.payload) {
      ++stats_.disk_hits;
      memory_insert_locked(mem_key, *outcome.payload);
      return outcome.payload;
    }
  }
  std::lock_guard lock(mutex_);
  ++stats_.misses;
  return std::nullopt;
}

void Store::put(Kind kind, const Digest128& key, const std::string& payload) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.stores;
    memory_insert_locked(MemKey{kind, key}, payload);
  }
  if (has_disk_tier()) {
    const DiskWrite written = disk_write(kind, key, payload);
    std::lock_guard lock(mutex_);
    stats_.bytes_written += written.bytes_written;
    stats_.disk_evictions += written.evictions;
  }
}

StoreStats Store::stats() const {
  StoreStats stats;
  {
    std::lock_guard lock(mutex_);
    stats = stats_;
  }
  if (options_.max_disk_bytes > 0) {
    std::lock_guard lock(index_mutex_);
    stats.disk_bytes = disk_bytes_;
  }
  return stats;
}

std::vector<Store::IndexEntry> Store::entries() const {
  std::lock_guard lock(mutex_);
  std::vector<IndexEntry> result;
  if (!has_disk_tier()) return result;
  std::map<Digest128, IndexEntry> dedup;
  const fs::path root(options_.directory);
  std::ifstream index(root / "index.log");
  if (index) {
    std::string line;
    while (std::getline(index, line)) {
      const auto parsed = parse_index_line(line);
      if (!parsed) continue;  // malformed/torn line: skip, don't fail
      dedup[parsed->key] =
          IndexEntry{parsed->key, parsed->kind, parsed->payload_bytes};
    }
  } else {
    // Index lost (e.g. user deleted it): rebuild the listing from the
    // object files themselves, reading each header for kind and size.
    for (const IndexEntry& entry : scan_objects()) dedup[entry.key] = entry;
  }
  for (const auto& [key, entry] : dedup) {
    std::error_code ec;
    if (fs::exists(object_path(key), ec)) result.push_back(entry);
  }
  return result;
}

std::size_t Store::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  by_key_.clear();
  memory_bytes_ = 0;
  {
    std::lock_guard index_lock(index_mutex_);
    disk_order_.clear();
    disk_by_key_.clear();
    disk_bytes_ = 0;
    stale_index_lines_ = 0;
  }
  stats_.disk_bytes = 0;
  if (!has_disk_tier()) return 0;
  std::size_t removed = 0;
  const fs::path root(options_.directory);
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root / "objects", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) ++removed;
  }
  fs::remove_all(root / "objects", ec);
  fs::remove_all(root / "tmp", ec);
  remove_quietly(root / "index.log");
  fs::create_directories(root / "objects", ec);
  fs::create_directories(root / "tmp", ec);
  return removed;
}

}  // namespace parallax::cache
