#include "cache/cache.hpp"

#include <cstdlib>

namespace parallax::cache {

std::string default_directory() {
  const char* env = std::getenv("PARALLAX_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return ".parallax-cache";
}

namespace {

StoreOptions store_options(CacheOptions options) {
  StoreOptions store;
  if (options.disk) {
    store.directory =
        options.directory.empty() ? default_directory() : options.directory;
  }
  store.max_memory_bytes = options.max_memory_bytes;
  store.max_disk_bytes = options.max_disk_bytes;
  return store;
}

}  // namespace

CompilationCache::CompilationCache(CacheOptions options)
    : store_(store_options(std::move(options))) {}

std::shared_ptr<CompilationCache> CompilationCache::open(
    CacheOptions options) {
  return std::make_shared<CompilationCache>(std::move(options));
}

std::optional<placement::Topology> CompilationCache::get_placement(
    const Digest128& key) {
  auto payload = store_.get(Kind::kPlacement, key);
  if (payload) {
    try {
      auto topology = parse_topology(*payload);
      std::lock_guard lock(mutex_);
      ++stats_.placement_hits;
      return topology;
    } catch (const std::exception&) {
      // Checksum passed but the payload doesn't parse: schema drift from a
      // build that forgot to bump versions. Still a miss, never a crash.
    }
  }
  std::lock_guard lock(mutex_);
  ++stats_.placement_misses;
  return std::nullopt;
}

void CompilationCache::put_placement(const Digest128& key,
                                     const placement::Topology& topology) {
  store_.put(Kind::kPlacement, key, serialize_topology(topology));
}

std::optional<CachedCell> CompilationCache::get_result(const Digest128& key) {
  auto payload = store_.get(Kind::kResult, key);
  if (payload) {
    try {
      auto cell = parse_cell(*payload);
      std::lock_guard lock(mutex_);
      ++stats_.result_hits;
      return cell;
    } catch (const std::exception&) {
    }
  }
  std::lock_guard lock(mutex_);
  ++stats_.result_misses;
  return std::nullopt;
}

void CompilationCache::put_result(const Digest128& key,
                                  const CachedCell& cell) {
  store_.put(Kind::kResult, key, serialize_cell(cell));
}

CacheStats CompilationCache::stats() const {
  CacheStats stats;
  {
    std::lock_guard lock(mutex_);
    stats = stats_;
  }
  stats.store = store_.stats();
  return stats;
}

}  // namespace parallax::cache
