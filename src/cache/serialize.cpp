#include "cache/serialize.hpp"

#include <bit>
#include <cstring>

namespace parallax::cache {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u64(s.size());
  bytes_.append(s.data(), s.size());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw ReadError("cache payload truncated");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw ReadError("cache payload has a malformed bool");
  return v != 0;
}

std::string Reader::str() {
  const std::uint64_t size = u64();
  if (size > remaining()) throw ReadError("cache payload string overruns");
  std::string s(data_.substr(pos_, static_cast<std::size_t>(size)));
  pos_ += static_cast<std::size_t>(size);
  return s;
}

std::size_t Reader::length(std::size_t min_element_bytes) {
  const std::uint64_t count = u64();
  if (min_element_bytes != 0 &&
      count > remaining() / min_element_bytes) {
    throw ReadError("cache payload length overruns");
  }
  return static_cast<std::size_t>(count);
}

void Reader::expect_end() const {
  if (remaining() != 0) {
    throw ReadError("cache payload has trailing bytes");
  }
}

// --- codecs -------------------------------------------------------------------

void encode(Writer& writer, const placement::Topology& topology) {
  writer.u64(topology.positions.size());
  for (const auto& point : topology.positions) {
    writer.f64(point.x);
    writer.f64(point.y);
  }
  writer.f64(topology.interaction_radius);
}

placement::Topology decode_topology(Reader& reader) {
  placement::Topology topology;
  const std::size_t count = reader.length(16);
  topology.positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    geom::Point point;
    point.x = reader.f64();
    point.y = reader.f64();
    topology.positions.push_back(point);
  }
  topology.interaction_radius = reader.f64();
  return topology;
}

void encode(Writer& writer, const placement::PhysicalTopology& topology) {
  writer.i32(topology.grid.side());
  writer.f64(topology.grid.pitch());
  writer.u64(topology.sites.size());
  for (const auto& site : topology.sites) {
    writer.i32(site.col);
    writer.i32(site.row);
  }
  writer.f64(topology.interaction_radius_um);
  writer.f64(topology.blockade_radius_um);
}

placement::PhysicalTopology decode_physical_topology(Reader& reader) {
  placement::PhysicalTopology topology;
  const std::int32_t side = reader.i32();
  const double pitch = reader.f64();
  if (side < 1) throw ReadError("cache payload has a malformed grid");
  topology.grid = geom::Grid(side, pitch);
  const std::size_t count = reader.length(8);
  topology.sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    geom::Cell cell;
    cell.col = reader.i32();
    cell.row = reader.i32();
    topology.sites.push_back(cell);
  }
  topology.interaction_radius_um = reader.f64();
  topology.blockade_radius_um = reader.f64();
  return topology;
}

void encode(Writer& writer, const circuit::Circuit& circuit) {
  writer.i32(circuit.n_qubits());
  writer.str(circuit.name());
  writer.u64(circuit.size());
  for (const auto& gate : circuit.gates()) {
    writer.u8(static_cast<std::uint8_t>(gate.type));
    writer.i32(gate.q[0]);
    writer.i32(gate.q[1]);
    writer.f64(gate.theta);
    writer.f64(gate.phi);
    writer.f64(gate.lambda);
  }
}

circuit::Circuit decode_circuit(Reader& reader) {
  const std::int32_t n_qubits = reader.i32();
  std::string name = reader.str();
  if (n_qubits < 0) throw ReadError("cache payload has a malformed circuit");
  circuit::Circuit circuit(n_qubits, std::move(name));
  const std::size_t count = reader.length(33);
  for (std::size_t i = 0; i < count; ++i) {
    circuit::Gate gate;
    const std::uint8_t type = reader.u8();
    if (type > static_cast<std::uint8_t>(circuit::GateType::kBarrier)) {
      throw ReadError("cache payload has an unknown gate type");
    }
    gate.type = static_cast<circuit::GateType>(type);
    gate.q[0] = reader.i32();
    gate.q[1] = reader.i32();
    gate.theta = reader.f64();
    gate.phi = reader.f64();
    gate.lambda = reader.f64();
    circuit.append(gate);  // re-validates qubit indices against n_qubits
  }
  return circuit;
}

namespace {

void encode_layer(Writer& writer, const compiler::Layer& layer) {
  writer.u64(layer.gates.size());
  for (const std::size_t gate : layer.gates) writer.u64(gate);
  writer.f64(layer.move_distance_um);
  writer.f64(layer.return_distance_um);
  writer.i32(layer.aod_moves);
  writer.i32(layer.trap_changes);
  writer.f64(layer.duration_us);
  writer.u64(layer.positions.size());
  for (const auto& point : layer.positions) {
    writer.f64(point.x);
    writer.f64(point.y);
  }
}

compiler::Layer decode_layer(Reader& reader) {
  compiler::Layer layer;
  const std::size_t n_gates = reader.length(8);
  layer.gates.reserve(n_gates);
  for (std::size_t i = 0; i < n_gates; ++i) {
    layer.gates.push_back(static_cast<std::size_t>(reader.u64()));
  }
  layer.move_distance_um = reader.f64();
  layer.return_distance_um = reader.f64();
  layer.aod_moves = reader.i32();
  layer.trap_changes = reader.i32();
  layer.duration_us = reader.f64();
  const std::size_t n_positions = reader.length(16);
  layer.positions.reserve(n_positions);
  for (std::size_t i = 0; i < n_positions; ++i) {
    geom::Point point;
    point.x = reader.f64();
    point.y = reader.f64();
    layer.positions.push_back(point);
  }
  return layer;
}

void encode_stats(Writer& writer, const compiler::CompileStats& stats) {
  writer.u64(stats.u3_gates);
  writer.u64(stats.cz_gates);
  writer.u64(stats.swap_gates);
  writer.u64(stats.layers);
  writer.u64(stats.aod_moves);
  writer.u64(stats.trap_changes);
  writer.u64(stats.out_of_range_cz);
  writer.u64(stats.slm_slm_cz);
  writer.f64(stats.max_move_distance_um);
  writer.f64(stats.total_move_distance_um);
}

compiler::CompileStats decode_stats(Reader& reader) {
  compiler::CompileStats stats;
  stats.u3_gates = static_cast<std::size_t>(reader.u64());
  stats.cz_gates = static_cast<std::size_t>(reader.u64());
  stats.swap_gates = static_cast<std::size_t>(reader.u64());
  stats.layers = static_cast<std::size_t>(reader.u64());
  stats.aod_moves = static_cast<std::size_t>(reader.u64());
  stats.trap_changes = static_cast<std::size_t>(reader.u64());
  stats.out_of_range_cz = static_cast<std::size_t>(reader.u64());
  stats.slm_slm_cz = static_cast<std::size_t>(reader.u64());
  stats.max_move_distance_um = reader.f64();
  stats.total_move_distance_um = reader.f64();
  return stats;
}

}  // namespace

void encode(Writer& writer, const compiler::CompileResult& result) {
  writer.str(result.technique);
  encode(writer, result.circuit);
  encode(writer, result.topology);
  writer.u64(result.layers.size());
  for (const auto& layer : result.layers) encode_layer(writer, layer);
  writer.u64(result.in_aod.size());
  for (const std::int8_t flag : result.in_aod) {
    writer.u8(static_cast<std::uint8_t>(flag));
  }
  encode_stats(writer, result.stats);
  writer.f64(result.runtime_us);
  // pass_timings intentionally omitted — see the header contract.
}

compiler::CompileResult decode_result(Reader& reader) {
  compiler::CompileResult result;
  result.technique = reader.str();
  result.circuit = decode_circuit(reader);
  result.topology = decode_physical_topology(reader);
  const std::size_t n_layers = reader.length(36);
  result.layers.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    result.layers.push_back(decode_layer(reader));
  }
  const std::size_t n_aod = reader.length(1);
  result.in_aod.reserve(n_aod);
  for (std::size_t i = 0; i < n_aod; ++i) {
    result.in_aod.push_back(static_cast<std::int8_t>(reader.u8()));
  }
  result.stats = decode_stats(reader);
  result.runtime_us = reader.f64();
  return result;
}

void encode(Writer& writer, const CachedCell& cell) {
  encode(writer, cell.result);
  writer.boolean(cell.has_success_probability);
  writer.f64(cell.success_probability);
  writer.boolean(cell.has_shot_plans);
  writer.u64(cell.shot_plans.size());
  for (const auto& plan : cell.shot_plans) {
    writer.i32(plan.copies_per_dim);
    writer.i32(plan.copies);
    writer.i64(plan.physical_shots);
    writer.f64(plan.total_execution_time_us);
  }
}

CachedCell decode_cell(Reader& reader) {
  CachedCell cell;
  cell.result = decode_result(reader);
  cell.has_success_probability = reader.boolean();
  cell.success_probability = reader.f64();
  cell.has_shot_plans = reader.boolean();
  const std::size_t n_plans = reader.length(24);
  cell.shot_plans.reserve(n_plans);
  for (std::size_t i = 0; i < n_plans; ++i) {
    shots::ParallelPlan plan;
    plan.copies_per_dim = reader.i32();
    plan.copies = reader.i32();
    plan.physical_shots = reader.i64();
    plan.total_execution_time_us = reader.f64();
    cell.shot_plans.push_back(plan);
  }
  return cell;
}

std::string serialize_topology(const placement::Topology& topology) {
  Writer writer;
  encode(writer, topology);
  return writer.take();
}

placement::Topology parse_topology(std::string_view bytes) {
  Reader reader(bytes);
  placement::Topology topology = decode_topology(reader);
  reader.expect_end();
  return topology;
}

std::string serialize_result(const compiler::CompileResult& result) {
  Writer writer;
  encode(writer, result);
  return writer.take();
}

compiler::CompileResult parse_result(std::string_view bytes) {
  Reader reader(bytes);
  compiler::CompileResult result = decode_result(reader);
  reader.expect_end();
  return result;
}

std::string serialize_cell(const CachedCell& cell) {
  Writer writer;
  encode(writer, cell);
  return writer.take();
}

CachedCell parse_cell(std::string_view bytes) {
  Reader reader(bytes);
  CachedCell cell = decode_cell(reader);
  reader.expect_end();
  return cell;
}

}  // namespace parallax::cache
