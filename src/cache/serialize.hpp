// Versioned binary serialization for cacheable compilation artifacts:
// placement::Topology (the annealed Step-1 output) and full
// compiler::CompileResult payloads (scheduled layers, stats, shot plans,
// success probability). The encoding is fixed-width little-endian with
// length-prefixed containers, so a round trip is bit-exact — including every
// double — which is what lets a warm sweep return byte-identical results.
//
// Robustness contract: Reader never reads out of bounds and never allocates
// more than the buffer could possibly describe; any malformed input throws
// ReadError, which the store layer converts into a cache miss. Payload
// versioning lives in the store's entry header (store.hpp); bumping
// kPayloadVersion there retires old entries silently.
//
// Deliberately not serialized: CompileResult::pass_timings. Timings are
// wall-clock observations, not results — they differ between the run that
// wrote an entry and the run that reads it, and excluding them keeps the
// byte-identity guarantee meaningful.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallax/result.hpp"
#include "placement/discretize.hpp"
#include "placement/graphine.hpp"
#include "shots/parallelize.hpp"

namespace parallax::cache {

/// Thrown by Reader on truncated, corrupt, or over-long input. The store
/// catches it and reports a miss; it never escapes to cache users.
class ReadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends canonical little-endian bytes.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::string take() noexcept { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over a byte buffer (does not own it).
class Reader {
 public:
  explicit Reader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();

  /// Reads a container length and validates that `count * min_element_bytes`
  /// still fits in the remaining buffer, so corrupt lengths fail fast
  /// instead of triggering gigabyte allocations.
  [[nodiscard]] std::size_t length(std::size_t min_element_bytes);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Throws ReadError unless the buffer was consumed exactly.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- artifact codecs ----------------------------------------------------------

/// A whole cached compile: the result plus the sweep-level derived outputs
/// that ride with it in a sweep cell.
struct CachedCell {
  compiler::CompileResult result;
  bool has_success_probability = false;
  double success_probability = 0.0;
  bool has_shot_plans = false;
  std::vector<shots::ParallelPlan> shot_plans;
};

void encode(Writer& writer, const placement::Topology& topology);
[[nodiscard]] placement::Topology decode_topology(Reader& reader);

void encode(Writer& writer, const placement::PhysicalTopology& topology);
[[nodiscard]] placement::PhysicalTopology decode_physical_topology(
    Reader& reader);

void encode(Writer& writer, const circuit::Circuit& circuit);
[[nodiscard]] circuit::Circuit decode_circuit(Reader& reader);

void encode(Writer& writer, const compiler::CompileResult& result);
[[nodiscard]] compiler::CompileResult decode_result(Reader& reader);

void encode(Writer& writer, const CachedCell& cell);
[[nodiscard]] CachedCell decode_cell(Reader& reader);

// One-shot conveniences (serialize_* returns the payload bytes; parse_*
// validates that the buffer holds exactly one artifact).
[[nodiscard]] std::string serialize_topology(
    const placement::Topology& topology);
[[nodiscard]] placement::Topology parse_topology(std::string_view bytes);
[[nodiscard]] std::string serialize_result(
    const compiler::CompileResult& result);
[[nodiscard]] compiler::CompileResult parse_result(std::string_view bytes);
[[nodiscard]] std::string serialize_cell(const CachedCell& cell);
[[nodiscard]] CachedCell parse_cell(std::string_view bytes);

}  // namespace parallax::cache
