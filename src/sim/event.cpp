#include "sim/event.hpp"

#include <algorithm>

namespace parallax::sim {

double gate_pulse_us(const circuit::Gate& gate,
                     const hardware::HardwareConfig& config) {
  switch (gate.type) {
    case circuit::GateType::kU3: return config.u3_time_us;
    case circuit::GateType::kCZ: return config.cz_time_us;
    case circuit::GateType::kSwap: return config.swap_time_us;
    case circuit::GateType::kMeasure: return 0.0;  // readout happens once,
                                                   // post-circuit
    case circuit::GateType::kBarrier: return 0.0;
  }
  return 0.0;
}

void require_positions(const compiler::CompileResult& result) {
  const std::size_t n = static_cast<std::size_t>(result.circuit.n_qubits());
  for (std::size_t li = 0; li < result.layers.size(); ++li) {
    if (result.layers[li].positions.size() != n) {
      throw SimError(
          "schedule of '" + result.circuit.name() + "' (technique '" +
          result.technique + "') records " +
          std::to_string(result.layers[li].positions.size()) +
          " atom positions for layer " + std::to_string(li) + ", expected " +
          std::to_string(n) +
          "; compile with FidelityModel::kSimulated or "
          "SchedulerOptions::record_positions to make it simulatable");
    }
  }
}

std::vector<std::vector<geom::Point>> layer_start_configs(
    const compiler::CompileResult& result) {
  require_positions(result);
  const std::size_t n = static_cast<std::size_t>(result.circuit.n_qubits());
  if (result.topology.sites.size() != n) {
    throw SimError("schedule of '" + result.circuit.name() +
                   "' has no physical topology (" +
                   std::to_string(result.topology.sites.size()) +
                   " sites for " + std::to_string(n) + " qubits)");
  }
  std::vector<geom::Point> home;
  home.reserve(n);
  for (const auto& site : result.topology.sites) {
    home.push_back(result.topology.grid.position(site));
  }

  std::vector<std::vector<geom::Point>> configs;
  configs.reserve(result.layers.size());
  // A layer starts from home whenever the previous layer returned its moved
  // atoms (return_distance > 0), or trivially when nothing has drifted yet;
  // in the Fig. 12 no-return mode atoms simply stay where the previous
  // layer's snapshot left them.
  const std::vector<geom::Point>* current = &home;
  for (const auto& layer : result.layers) {
    configs.push_back(*current);
    current = layer.return_distance_um > 0.0 ? &home : &layer.positions;
  }
  return configs;
}

Timeline build_timeline(const compiler::CompileResult& result,
                        const hardware::HardwareConfig& config) {
  if (config.aod_speed_um_per_us <= 0.0 || config.trap_switch_time_us < 0.0) {
    throw SimError("hardware config '" + config.name +
                   "' has non-physical AOD movement parameters");
  }
  Timeline timeline;
  timeline.layer_wall_us.reserve(result.layers.size());
  double t = 0.0;
  for (std::size_t li = 0; li < result.layers.size(); ++li) {
    const compiler::Layer& layer = result.layers[li];
    if (layer.move_distance_um < 0.0 || layer.return_distance_um < 0.0 ||
        layer.aod_moves < 0 || layer.trap_changes < 0) {
      throw SimError("layer " + std::to_string(li) +
                     " has negative movement/trap accounting");
    }
    double max_gate_time = 0.0;
    for (const std::size_t gi : layer.gates) {
      if (gi >= result.circuit.size()) {
        throw SimError("layer " + std::to_string(li) +
                       " references gate " + std::to_string(gi) +
                       " outside the circuit (" +
                       std::to_string(result.circuit.size()) + " gates)");
      }
      max_gate_time = std::max(
          max_gate_time, gate_pulse_us(result.circuit.gate(gi), config));
    }
    // The scheduler's exact duration expression, in its operand order.
    const double wall =
        max_gate_time +
        (layer.move_distance_um + layer.return_distance_um) /
            config.aod_speed_um_per_us +
        static_cast<double>(layer.trap_changes) * config.trap_switch_time_us;

    double cursor = t;
    if (layer.aod_moves > 0 || layer.move_distance_um > 0.0) {
      const double leg = layer.move_distance_um / config.aod_speed_um_per_us;
      timeline.events.push_back({EventKind::kMoveLeg, li, cursor, cursor + leg,
                                 kNoGate, std::max(layer.aod_moves, 1),
                                 layer.move_distance_um});
      cursor += leg;
    }
    if (layer.trap_changes > 0) {
      const double leg =
          static_cast<double>(layer.trap_changes) * config.trap_switch_time_us;
      timeline.events.push_back({EventKind::kTrapChange, li, cursor,
                                 cursor + leg, kNoGate, layer.trap_changes,
                                 0.0});
      cursor += leg;
    }
    for (const std::size_t gi : layer.gates) {
      timeline.events.push_back(
          {EventKind::kGatePulse, li, cursor,
           cursor + gate_pulse_us(result.circuit.gate(gi), config), gi, 1,
           0.0});
    }
    cursor += max_gate_time;
    if (layer.return_distance_um > 0.0) {
      const double leg = layer.return_distance_um / config.aod_speed_um_per_us;
      // Return legs charge time (they are inside duration_us) but no
      // movement-loss draws: the model's movement_loss^aod_moves counts
      // inbound move-into-range operations only.
      timeline.events.push_back({EventKind::kReturnLeg, li, cursor,
                                 cursor + leg, kNoGate, 0,
                                 layer.return_distance_um});
    }
    timeline.layer_wall_us.push_back(wall);
    timeline.total_us += wall;
    t += wall;
  }
  return timeline;
}

}  // namespace parallax::sim
