// Error channels of the discrete-event simulator: the timeline's events
// flattened into one fixed, shot-independent sequence of Bernoulli failure
// draws (gate errors per pulse, transfer loss per AOD move, trap-switch
// errors per pickup/drop, time-resolved T1/T2 decay per interval, optional
// readout and background atom loss). One shot walks the sequence in order
// and fails on its first positive draw, so the mean shot survival converges
// to noise::success_probability — the same (1-p) product, drawn eventwise —
// whenever the enabled channels match the closed-form model's.
#pragma once

#include <cstdint>
#include <vector>

#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "sim/event.hpp"

namespace parallax::sim {

/// Per-shot outcome codes: 0 survives, otherwise the channel of the first
/// failure. These bytes are the simulator's canonical shot record — what
/// SurvivalEstimate digests and what the golden shot digests lock in CI.
enum : std::uint8_t {
  kOutcomeSuccess = 0,
  kOutcomeU3 = 1,
  kOutcomeCZ = 2,
  kOutcomeSwap = 3,
  kOutcomeTrapChange = 4,
  kOutcomeMovementLoss = 5,
  kOutcomeDecoherence = 6,
  kOutcomeReadout = 7,
  kOutcomeAtomLoss = 8,
};
inline constexpr std::size_t kOutcomeChannels = 9;

[[nodiscard]] const char* outcome_name(std::uint8_t code) noexcept;

/// One Bernoulli failure draw of the per-shot sequence.
struct Draw {
  double p_fail = 0.0;
  std::uint8_t channel = kOutcomeSuccess;
};

struct ChannelOptions {
  /// Which channels draw — the same switches as the closed-form model, so
  /// "matched channels" is literally the same NoiseOptions value.
  noise::NoiseOptions channels{};
  /// T1/T2 scale on in-flight time (per-qubit decoherence only); 1.0 makes
  /// movement decohere like parking, matching the closed-form model.
  double moving_decoherence_scale = 1.0;
};

/// Builds the draw sequence for `result`'s timeline. Pure function of its
/// inputs — identical on every thread and in every process. Requires
/// recorded positions when per-qubit decoherence is enabled (the
/// parked-vs-moving split needs per-atom displacement).
[[nodiscard]] std::vector<Draw> build_draw_plan(
    const compiler::CompileResult& result,
    const hardware::HardwareConfig& config, const Timeline& timeline,
    const ChannelOptions& options);

}  // namespace parallax::sim
