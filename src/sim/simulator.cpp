#include "sim/simulator.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace parallax::sim {

double SurvivalEstimate::mean() const noexcept {
  return shots <= 0 ? 0.0
                    : static_cast<double>(successes) /
                          static_cast<double>(shots);
}

double SurvivalEstimate::std_error() const noexcept {
  if (shots <= 0) return 0.0;
  const double p = mean();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(shots));
}

namespace {

/// One shot: walk the draw sequence in order, fail on the first positive
/// draw. Early exit is distribution-preserving (the survival probability is
/// the full (1-p) product either way) and keeps each shot's RNG stream a
/// pure function of its own seed.
std::uint8_t run_shot(const std::vector<Draw>& plan, util::Rng& rng) {
  for (const Draw& draw : plan) {
    if (rng.bernoulli(draw.p_fail)) return draw.channel;
  }
  return kOutcomeSuccess;
}

}  // namespace

SurvivalEstimate simulate(const compiler::CompileResult& result,
                          const hardware::HardwareConfig& config,
                          const SimOptions& options) {
  if (options.shots <= 0) {
    throw SimError("simulation needs a positive shot count, got " +
                   std::to_string(options.shots));
  }
  require_positions(result);
  const Timeline timeline = build_timeline(result, config);
  const std::vector<Draw> plan = build_draw_plan(
      result, config, timeline,
      {options.channels, options.moving_decoherence_scale});

  // Outcomes are indexed by shot, filled by whichever thread runs the shot,
  // and reduced serially below — the estimate never depends on thread
  // count or completion order.
  const std::size_t n = static_cast<std::size_t>(options.shots);
  std::vector<std::uint8_t> outcomes(n);
  const auto shot = [&](std::size_t k) {
    util::Rng rng(util::derive_seed(options.seed, "shot",
                                    static_cast<std::uint64_t>(k)));
    outcomes[k] = run_shot(plan, rng);
  };
  if (options.n_threads == 1) {
    for (std::size_t k = 0; k < n; ++k) shot(k);
  } else {
    util::ThreadPool pool(options.n_threads);
    pool.parallel_for(n, shot);
  }

  SurvivalEstimate estimate;
  estimate.shots = options.shots;
  for (const std::uint8_t outcome : outcomes) {
    if (outcome == kOutcomeSuccess) {
      ++estimate.successes;
    } else if (outcome < kOutcomeChannels) {
      ++estimate.failures[outcome];
    }
  }
  estimate.outcome_digest = util::hash128(outcomes.data(), outcomes.size());
  return estimate;
}

}  // namespace parallax::sim
