// Monte Carlo shot simulation of a compiled schedule. Each shot replays the
// event timeline (sim/event.hpp) against the per-event error channels
// (sim/channels.hpp) with its own counter-based RNG stream —
// derive_seed(seed, "shot", k) — so shot k's outcome byte is identical
// whatever thread ran it, the outcome digest is byte-stable across thread
// counts, and the survival mean converges to noise::success_probability
// when the enabled channels match the closed-form model's.
#pragma once

#include <array>
#include <cstdint>

#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "parallax/result.hpp"
#include "sim/channels.hpp"
#include "util/hash.hpp"

namespace parallax::sim {

struct SimOptions {
  /// Monte Carlo shots; must be positive.
  std::int64_t shots = 4096;
  /// Simulator master seed. Shot k draws from derive_seed(seed, "shot", k);
  /// pipeline-level callers derive this per circuit as
  /// derive_seed(master, circuit_name, util::kSimSeedSalt) so every layer
  /// of the stack (sweep, CLI, tests) simulates identical shot streams.
  std::uint64_t seed = 0xA77AC5ULL;
  /// Which error channels draw. Passing the sweep's NoiseOptions verbatim
  /// is the "matched channels" configuration the sim-vs-model artifact
  /// validates.
  noise::NoiseOptions channels{};
  /// T1/T2 scale on in-flight time (per-qubit decoherence only).
  double moving_decoherence_scale = 1.0;
  /// Threads for the shot fan-out: 1 (default) runs on the calling thread —
  /// what sweep cells use, since they already execute on pool workers —
  /// and 0 selects hardware concurrency. The result is identical either
  /// way; only wall clock changes.
  std::size_t n_threads = 1;
};

/// Aggregated shot outcomes of one simulation.
struct SurvivalEstimate {
  std::int64_t shots = 0;
  std::int64_t successes = 0;
  /// First-failure counts by outcome channel (indexed by the outcome codes
  /// of sim/channels.hpp; index 0 stays zero — successes live above).
  std::array<std::int64_t, kOutcomeChannels> failures{};
  /// hash128 over the per-shot outcome bytes in shot order: the canonical,
  /// thread-count-invariant record of the whole run (golden-locked in CI).
  util::Digest128 outcome_digest{};

  /// Survival probability estimate (successes / shots).
  [[nodiscard]] double mean() const noexcept;
  /// Binomial standard error: sqrt(mean * (1 - mean) / shots).
  [[nodiscard]] double std_error() const noexcept;
};

/// Simulates `options.shots` Monte Carlo shots of `result` on `config`.
/// Throws SimError when the schedule lacks recorded positions (compile with
/// FidelityModel::kSimulated), references gates outside its circuit, or
/// `options.shots` is not positive.
[[nodiscard]] SurvivalEstimate simulate(const compiler::CompileResult& result,
                                        const hardware::HardwareConfig& config,
                                        const SimOptions& options = {});

}  // namespace parallax::sim
