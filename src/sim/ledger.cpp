// The continuous-time event ledger: validate_continuous from
// parallax/validate.hpp, implemented on the simulator's event timeline. It
// hardens the per-layer snapshot validator to invariants that only exist
// between snapshots — atoms teleporting past their movement budget, layer
// durations drifting from the simulated wall time of their event legs,
// separation violations at event-boundary configurations.
#include <cmath>
#include <string>
#include <vector>

#include "parallax/validate.hpp"
#include "sim/event.hpp"

namespace parallax::compiler {

namespace {

/// Relative tolerance for wall-clock comparisons (the ledger recomputes
/// durations from the same scalars the scheduler used, so disagreement
/// beyond rounding means the record was tampered with or corrupted).
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// One boundary configuration's separation check: every atom pair at least
/// min_separation apart, no two atoms on one site. One failure per
/// configuration keeps reports bounded on badly corrupted schedules.
void check_separation(ValidationReport& report,
                      const std::vector<geom::Point>& config,
                      double min_separation_um, const std::string& where) {
  for (std::size_t a = 0; a < config.size(); ++a) {
    for (std::size_t b = a + 1; b < config.size(); ++b) {
      const double d = geom::distance(config[a], config[b]);
      if (d < 1e-9) {
        report.fail("E2: atoms " + std::to_string(a) + " and " +
                    std::to_string(b) + " occupy one site at " + where);
        return;
      }
      if (d < min_separation_um * (1.0 - 1e-9)) {
        report.fail("E2: atoms " + std::to_string(a) + " and " +
                    std::to_string(b) + " are " + std::to_string(d) +
                    " um apart at " + where + " (minimum " +
                    std::to_string(min_separation_um) + " um)");
        return;
      }
    }
  }
}

}  // namespace

ValidationReport validate_continuous(const CompileResult& result,
                                     const hardware::HardwareConfig& config) {
  ValidationReport report;

  // E0: the ledger (like the simulator) needs per-layer positions.
  std::vector<std::vector<geom::Point>> starts;
  try {
    starts = sim::layer_start_configs(result);
  } catch (const sim::SimError& error) {
    report.fail(std::string("E0: ") + error.what());
    return report;
  }

  // E1: the timeline itself must be constructible and time-ordered.
  sim::Timeline timeline;
  try {
    timeline = sim::build_timeline(result, config);
  } catch (const sim::SimError& error) {
    report.fail(std::string("E1: ") + error.what());
    return report;
  }
  std::size_t previous_layer = 0;
  for (const sim::Event& event : timeline.events) {
    if (event.t_start_us < -1e-9 || event.t_end_us < event.t_start_us - 1e-9) {
      report.fail("E1: event in layer " + std::to_string(event.layer) +
                  " runs backwards in time");
    }
    if (event.layer < previous_layer) {
      report.fail("E1: events of layer " + std::to_string(event.layer) +
                  " appear after layer " + std::to_string(previous_layer));
    }
    previous_layer = event.layer;
  }

  for (std::size_t li = 0; li < result.layers.size(); ++li) {
    const Layer& layer = result.layers[li];

    // E2: separation at both boundary configurations of the layer — where
    // the atoms start and where the gates fire. (Mid-flight paths are the
    // movement engine's contract, not reconstructable from the record.)
    check_separation(report, starts[li], config.min_separation_um,
                     "the start of layer " + std::to_string(li));
    check_separation(report, layer.positions, config.min_separation_um,
                     "execution of layer " + std::to_string(li));

    // E3: no teleporting — every atom's displacement across the layer is
    // within the layer's recorded movement budget (move_distance_um is the
    // maximum distance any atom moved).
    const double budget = layer.move_distance_um * (1.0 + 1e-9) + 1e-9;
    for (std::size_t q = 0; q < layer.positions.size(); ++q) {
      const double moved = geom::distance(layer.positions[q], starts[li][q]);
      if (moved > budget) {
        report.fail("E3: atom " + std::to_string(q) + " moved " +
                    std::to_string(moved) + " um in layer " +
                    std::to_string(li) + " against a recorded budget of " +
                    std::to_string(layer.move_distance_um) + " um");
        break;  // one teleport report per layer
      }
    }

    // E4 (per layer): the recorded duration matches the simulated wall time
    // of the layer's event legs.
    if (!close(layer.duration_us, timeline.layer_wall_us[li])) {
      report.fail("E4: layer " + std::to_string(li) + " records " +
                  std::to_string(layer.duration_us) +
                  " us but its events simulate to " +
                  std::to_string(timeline.layer_wall_us[li]) + " us");
    }
  }

  // E4 (whole schedule): the runtime equals the simulated total.
  if (!close(result.runtime_us, timeline.total_us)) {
    report.fail("E4: schedule records runtime " +
                std::to_string(result.runtime_us) +
                " us but its events simulate to " +
                std::to_string(timeline.total_us) + " us");
  }
  return report;
}

}  // namespace parallax::compiler
