// The discrete-event view of one compiled schedule: every layer of a
// compiler::CompileResult unrolled into timestamped hardware events — AOD
// movement legs at HardwareConfig speeds, trap pickup/drop operations,
// U3/CZ/SWAP pulses, and the home-return leg. The timeline is a pure
// function of (result, config): building it twice, on any thread, yields
// identical events, which is what the Monte Carlo simulator
// (sim/simulator.hpp) and the continuous-time ledger
// (parallax/validate.hpp::validate_continuous) are built on.
//
// Timing contract: each layer's wall time is computed with the scheduler's
// exact expression over the layer's recorded scalars —
//   max_gate_time + (move + return distance) / aod_speed
//                 + trap_changes * trap_switch_time
// — in the scheduler's operand order, so a zero-noise replay reproduces
// Layer::duration_us and CompileResult::runtime_us byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::sim {

/// Thrown on unsimulatable input: a schedule without recorded atom
/// positions, a gate index outside the circuit, malformed layer scalars.
/// Deliberately a distinct type so callers can separate "this schedule
/// cannot be simulated" from a simulation finding a physics violation.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class EventKind : std::uint8_t {
  kMoveLeg = 1,     // inbound AOD movement at aod_speed_um_per_us
  kTrapChange = 2,  // SLM<->AOD trap pickup/drop operations
  kGatePulse = 3,   // one U3/CZ/SWAP (or timeless measure/barrier) pulse
  kReturnLeg = 4,   // home-return AOD movement leg
};

inline constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);

struct Event {
  EventKind kind = EventKind::kGatePulse;
  std::size_t layer = 0;
  double t_start_us = 0.0;
  double t_end_us = 0.0;
  /// Circuit gate index for kGatePulse events; kNoGate otherwise.
  std::size_t gate = kNoGate;
  /// Operations bundled in this leg: AOD moves for kMoveLeg, pickup/drop
  /// pairs for kTrapChange. Each is one error-channel draw.
  int count = 0;
  double distance_um = 0.0;
};

struct Timeline {
  /// Time-ordered, layer-major events. Gate pulses of one layer share a
  /// start time (they execute simultaneously on hardware).
  std::vector<Event> events;
  /// Per-layer simulated wall time (the exact scheduler expression; see the
  /// header comment) — equals Layer::duration_us for an untampered schedule.
  std::vector<double> layer_wall_us;
  /// Wall times accumulated in layer order, matching the scheduler's
  /// runtime_us accumulation byte-for-byte.
  double total_us = 0.0;
};

/// Pulse duration of one gate — the scheduler's own table (U3/CZ/SWAP times
/// from the config; measure and barrier are timeless).
[[nodiscard]] double gate_pulse_us(const circuit::Gate& gate,
                                   const hardware::HardwareConfig& config);

/// Throws SimError naming the offending layer unless every layer of
/// `result` records one atom position per logical qubit (the satellite
/// guarantee: a CompileResult without positions fails loudly, it never
/// crashes the simulator). Compile with FidelityModel::kSimulated or
/// SchedulerOptions::record_positions to populate them.
void require_positions(const compiler::CompileResult& result);

/// The atom configuration at the *start* of each layer: the topology's home
/// configuration when the previous layer returned home (and for layer 0),
/// the previous layer's execution snapshot otherwise (the Fig. 12 no-return
/// mode, where home drifts with the atoms). Requires positions.
[[nodiscard]] std::vector<std::vector<geom::Point>> layer_start_configs(
    const compiler::CompileResult& result);

/// Unrolls `result` into its event timeline. Throws SimError on gate
/// indices outside the circuit or negative layer scalars.
[[nodiscard]] Timeline build_timeline(const compiler::CompileResult& result,
                                      const hardware::HardwareConfig& config);

}  // namespace parallax::sim
