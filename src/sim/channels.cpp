#include "sim/channels.hpp"

#include <algorithm>

namespace parallax::sim {

const char* outcome_name(std::uint8_t code) noexcept {
  switch (code) {
    case kOutcomeSuccess: return "success";
    case kOutcomeU3: return "u3-gate";
    case kOutcomeCZ: return "cz-gate";
    case kOutcomeSwap: return "swap-gate";
    case kOutcomeTrapChange: return "trap-change";
    case kOutcomeMovementLoss: return "movement-loss";
    case kOutcomeDecoherence: return "decoherence";
    case kOutcomeReadout: return "readout";
    case kOutcomeAtomLoss: return "atom-loss";
    default: return "unknown";
  }
}

std::vector<Draw> build_draw_plan(const compiler::CompileResult& result,
                                  const hardware::HardwareConfig& config,
                                  const Timeline& timeline,
                                  const ChannelOptions& options) {
  const noise::NoiseOptions& on = options.channels;
  std::vector<Draw> plan;
  plan.reserve(timeline.events.size() + timeline.layer_wall_us.size());

  // Layer-start configurations are only needed for the per-qubit
  // parked-vs-moving decoherence split.
  std::vector<std::vector<geom::Point>> starts;
  if (on.include_decoherence && on.per_qubit_decoherence) {
    starts = layer_start_configs(result);
  }

  const std::size_t n_qubits =
      static_cast<std::size_t>(result.circuit.n_qubits());
  std::size_t event_index = 0;
  for (std::size_t li = 0; li < timeline.layer_wall_us.size(); ++li) {
    // Event-channel draws of this layer, in timeline order.
    for (; event_index < timeline.events.size() &&
           timeline.events[event_index].layer == li;
         ++event_index) {
      const Event& event = timeline.events[event_index];
      switch (event.kind) {
        case EventKind::kMoveLeg:
          if (on.include_operation_overheads) {
            for (int i = 0; i < event.count; ++i) {
              plan.push_back({config.movement_loss, kOutcomeMovementLoss});
            }
          }
          break;
        case EventKind::kTrapChange:
          if (on.include_operation_overheads) {
            for (int i = 0; i < event.count; ++i) {
              plan.push_back({config.trap_switch_error, kOutcomeTrapChange});
            }
          }
          break;
        case EventKind::kGatePulse:
          if (on.include_gate_errors) {
            switch (result.circuit.gate(event.gate).type) {
              case circuit::GateType::kU3:
                plan.push_back({config.u3_error, kOutcomeU3});
                break;
              case circuit::GateType::kCZ:
                plan.push_back({config.cz_error, kOutcomeCZ});
                break;
              case circuit::GateType::kSwap:
                plan.push_back({config.swap_error, kOutcomeSwap});
                break;
              default: break;  // measure/barrier carry no gate error
            }
          }
          break;
        case EventKind::kReturnLeg:
          break;  // charges time, not transfer loss (see event.cpp)
      }
    }

    // Time-resolved decoherence over the layer's wall clock. exp
    // multiplicativity makes the per-layer product equal the closed-form
    // model's whole-runtime factor up to ~1e-16 rounding per layer.
    if (!on.include_decoherence) continue;
    const double wall = timeline.layer_wall_us[li];
    if (!on.per_qubit_decoherence) {
      plan.push_back(
          {1.0 - noise::decoherence_factor(wall, config), kOutcomeDecoherence});
      continue;
    }
    const compiler::Layer& layer = result.layers[li];
    for (std::size_t q = 0; q < n_qubits; ++q) {
      // In-flight time of this atom: its displacement from the layer-start
      // configuration, flown at AOD speed — twice when the layer returns
      // atoms home (the return leg retraces the inbound path).
      const double displacement =
          geom::distance(layer.positions[q], starts[li][q]);
      double moving =
          displacement / config.aod_speed_um_per_us *
          (layer.return_distance_um > 0.0 ? 2.0 : 1.0);
      moving = std::min(moving, wall);
      const double parked = wall - moving;
      const double survive =
          noise::decoherence_factor(parked, config) *
          noise::decoherence_factor(moving * options.moving_decoherence_scale,
                                    config);
      plan.push_back({1.0 - survive, kOutcomeDecoherence});
    }
  }

  if (on.include_readout) {
    for (std::size_t q = 0; q < n_qubits; ++q) {
      plan.push_back({config.readout_error, kOutcomeReadout});
    }
  }
  if (on.include_atom_loss) {
    for (std::size_t q = 0; q < n_qubits; ++q) {
      plan.push_back({config.atom_loss_rate, kOutcomeAtomLoss});
    }
  }
  return plan;
}

}  // namespace parallax::sim
