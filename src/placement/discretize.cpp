#include "placement/discretize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace parallax::placement {

PhysicalTopology discretize(const Topology& topology,
                            const hardware::HardwareConfig& config,
                            const DiscretizeOptions& options) {
  const auto n = topology.positions.size();
  if (n > static_cast<std::size_t>(config.n_atoms())) {
    throw std::runtime_error(
        "circuit needs " + std::to_string(n) + " qubits but machine '" +
        config.name + "' has " + std::to_string(config.n_atoms()) + " sites");
  }

  PhysicalTopology physical;
  physical.grid = geom::Grid(config.grid_side, config.pitch_um());
  physical.sites.resize(n);

  // Scale the normalized placement onto the full grid extent. Normalized
  // coordinates may use only part of [0,1]^2; rescaling the bounding box
  // keeps relative structure while using the available space.
  double min_x = 1.0, min_y = 1.0, max_x = 0.0, max_y = 0.0;
  for (const auto& p : topology.positions) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  // Footprint: a compact square sub-region sized to the circuit, so small
  // circuits leave room for parallel logical shots and the interaction
  // radius stays short.
  const auto wanted_side = static_cast<std::int32_t>(
      std::ceil(std::sqrt(static_cast<double>(n)) * options.spread_factor));
  const std::int32_t region_side =
      std::clamp(wanted_side, std::int32_t{2}, config.grid_side);
  const double extent = (region_side - 1) * physical.grid.pitch();
  auto to_physical = [&](geom::Point p) {
    return geom::Point{(p.x - min_x) / span_x * extent,
                       (p.y - min_y) / span_y * extent};
  };

  // Snap qubits in order of "most constrained first": qubits whose ideal
  // cell is contested should claim it before less-picky neighbours distort.
  // A simple effective order is by insertion distance after a first-come
  // pass; here we snap in index order but search spirally for the nearest
  // free cell, which bounds per-qubit distortion by the local crowding.
  geom::Occupancy occupancy(physical.grid);
  for (std::size_t q = 0; q < n; ++q) {
    const geom::Point target = to_physical(topology.positions[q]);
    const geom::Cell ideal = physical.grid.nearest_cell(target);
    const auto cell = occupancy.nearest_free(ideal);
    if (!cell) throw std::runtime_error("grid full during discretization");
    physical.sites[q] = *cell;
    occupancy.set(*cell, true);
  }

  // Recompute the interaction radius on physical positions so the in-range
  // graph stays connected after snapping distortion. Clamp below by sqrt(2)
  // pitch so diagonal neighbours always interact.
  std::vector<geom::Point> points;
  points.reserve(n);
  for (std::size_t q = 0; q < n; ++q) {
    points.push_back(physical.grid.position(physical.sites[q]));
  }
  const double bottleneck = bottleneck_connect_radius(points);
  physical.interaction_radius_um =
      std::max(bottleneck, physical.grid.pitch() * std::sqrt(2.0)) *
      (1.0 + 1e-9);
  physical.blockade_radius_um = 2.5 * physical.interaction_radius_um;
  return physical;
}

}  // namespace parallax::placement
