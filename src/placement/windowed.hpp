// Windowed (hierarchical) placement for circuits too large to anneal as one
// interaction graph (paper Sec. II-A scales as O(q^5); external million-gate
// corpora routinely exceed what one anneal can absorb). The graph is
// partitioned into connected windows of at most GraphineOptions::
// max_window_qubits qubits (greedy heaviest-edge BFS from the
// highest-degree unassigned seed), each window is annealed independently
// with a content-derived seed, and the window layouts are stitched onto a
// tile grid, flipping each tile among its four orientations to shorten the
// cut edges. The final interaction radius is the bottleneck connect radius
// of the stitched layout, exactly as in the single-window path.
//
// Determinism: partition order, per-window seeds, and stitching depend only
// on the graph content and the options — never on thread count or timing.
// Per-window results are independently cacheable through WindowHooks.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "circuit/interaction_graph.hpp"
#include "placement/graphine.hpp"

namespace parallax::placement {

/// One window of the partition: member qubits as global indices, ascending.
struct Window {
  std::vector<std::int32_t> qubits;
};

/// Deterministically partitions `graph` into windows of at most `max_qubits`
/// qubits. Seeds are the highest-weighted-degree unassigned qubits (index
/// ascending on ties); windows grow by repeatedly absorbing the unassigned
/// neighbor with the heaviest connection to the window so far. Isolated
/// qubits are packed, ascending, into the windows with spare capacity and
/// then into fresh windows. Requires max_qubits >= 1.
[[nodiscard]] std::vector<Window> partition_windows(
    const circuit::InteractionGraph& graph, std::int32_t max_qubits);

/// Everything a cache tier needs to identify one window's anneal: the
/// subgraph is reindexed over window.qubits (position i in `qubits` is
/// subgraph node i) and `options` carries the effective per-window seed.
struct WindowContext {
  std::size_t index = 0;
  const Window* window = nullptr;
  const circuit::InteractionGraph* subgraph = nullptr;
  const GraphineOptions* options = nullptr;
};

/// Optional per-window cache hooks (both may be empty). `lookup` runs before
/// a window anneal and may return a stored layout (in window-local [0,1]^2
/// coordinates) to skip it; `store` runs after a fresh anneal.
struct WindowHooks {
  std::function<std::optional<Topology>(const WindowContext&)> lookup;
  std::function<void(const WindowContext&, const Topology&)> store;
};

/// True when `options` routes `graph` through the windowed path: a positive
/// max_window_qubits smaller than the graph's qubit count.
[[nodiscard]] bool windowing_applies(const circuit::InteractionGraph& graph,
                                     const GraphineOptions& options) noexcept;

/// Windowed placement of `graph`. Falls back to a plain graphine_place when
/// windowing_applies() is false. `stats`, when non-null, accumulates anneal
/// work across windows and reports windows/windows_annealed; `hooks`, when
/// non-null, can serve and capture per-window layouts.
[[nodiscard]] Topology windowed_place(const circuit::InteractionGraph& graph,
                                      const GraphineOptions& options,
                                      PlacementStats* stats = nullptr,
                                      const WindowHooks* hooks = nullptr);

}  // namespace parallax::placement
