#include "placement/graphine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <thread>

#include "anneal/multi_chain.hpp"
#include "anneal/portfolio.hpp"
#include "placement/objective.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace parallax::placement {

double placement_objective(const std::vector<double>& coords,
                           const circuit::InteractionGraph& graph,
                           const GraphineOptions& options) {
  const auto n = static_cast<std::size_t>(graph.n_qubits());
  assert(coords.size() == 2 * n);
  auto point = [&](std::size_t q) {
    return geom::Point{coords[2 * q], coords[2 * q + 1]};
  };

  double cost = 0.0;
  for (const auto& e : graph.edges()) {
    cost += static_cast<double>(e.weight) *
            geom::distance(point(static_cast<std::size_t>(e.a)),
                           point(static_cast<std::size_t>(e.b)));
  }

  // Crowding penalty: soft minimum distance scaled by density so that the
  // layout spreads out. Quadratic in the violation.
  if (n > 1) {
    const double d_min =
        options.crowding_distance / std::sqrt(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = geom::distance(point(i), point(j));
        if (d < d_min) {
          const double v = d_min - d;
          cost += options.crowding_weight * v * v / (d_min * d_min);
        }
      }
    }
  }
  return cost;
}

double bottleneck_connect_radius(const std::vector<geom::Point>& points) {
  const std::size_t n = points.size();
  if (n <= 1) return 0.0;
  // Prim's algorithm on the complete Euclidean graph; the answer is the
  // largest edge used, i.e. the bottleneck of the MST.
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<char> used(n, 0);
  best[0] = 0.0;
  double bottleneck = 0.0;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t pick = n;
    double pick_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i] && best[i] < pick_d) {
        pick_d = best[i];
        pick = i;
      }
    }
    assert(pick < n);
    used[pick] = 1;
    bottleneck = std::max(bottleneck, pick_d);
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i]) {
        best[i] = std::min(best[i], geom::distance(points[pick], points[i]));
      }
    }
  }
  return bottleneck;
}

namespace {

/// Warm-start layout: BFS over the interaction graph from a low-degree
/// vertex (a chain endpoint, when there is one), laid out along a
/// serpentine curve over a sqrt(n) x sqrt(n) virtual grid. For structured
/// circuits (TFIM's chain, QEC's comb) this is already near-optimal; for
/// dense circuits it is merely a sane start the annealer improves on.
std::vector<double> serpentine_seed(const circuit::InteractionGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.n_qubits());
  // Adjacency sorted by edge weight (heavy edges first in BFS expansion).
  std::vector<std::vector<std::pair<std::int64_t, std::int32_t>>> adj(n);
  for (const auto& e : graph.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back({e.weight, e.b});
    adj[static_cast<std::size_t>(e.b)].push_back({e.weight, e.a});
  }
  for (auto& list : adj) {
    std::sort(list.rbegin(), list.rend());
  }

  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  // Visit components, each from its minimum-positive-degree vertex.
  for (;;) {
    std::int32_t start = -1;
    for (std::int32_t q = 0; q < graph.n_qubits(); ++q) {
      if (seen[static_cast<std::size_t>(q)]) continue;
      if (start < 0 || graph.partner_count(q) < graph.partner_count(start)) {
        start = q;
      }
    }
    if (start < 0) break;
    std::deque<std::int32_t> queue{start};
    seen[static_cast<std::size_t>(start)] = 1;
    while (!queue.empty()) {
      const std::int32_t q = queue.front();
      queue.pop_front();
      order.push_back(q);
      for (const auto& [w, next] : adj[static_cast<std::size_t>(q)]) {
        if (!seen[static_cast<std::size_t>(next)]) {
          seen[static_cast<std::size_t>(next)] = 1;
          queue.push_back(next);
        }
      }
    }
  }

  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<double> coords(2 * n, 0.5);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t row = rank / side;
    std::size_t col = rank % side;
    if (row % 2 == 1) col = side - 1 - col;  // serpentine
    const auto q = static_cast<std::size_t>(order[rank]);
    const double denom = static_cast<double>(std::max<std::size_t>(side - 1, 1));
    coords[2 * q] = static_cast<double>(col) / denom;
    coords[2 * q + 1] = static_cast<double>(row) / denom;
  }
  return coords;
}

/// Fixed portfolio roster, truncated to `entrants`: the anneal iteration
/// budget splits evenly across the annealing entrants (the mc entrant
/// further splits its share over its chains), and the polish entrant spends
/// only the local-search evaluation budget — so a full race costs about one
/// configured anneal.
std::vector<anneal::PortfolioEntrant> portfolio_roster(
    const anneal::DualAnnealingOptions& base, int entrants) {
  std::vector<anneal::PortfolioEntrant> roster;
  const int annealing_entrants = std::min(entrants, 4) - (entrants >= 3 ? 1 : 0);
  const int share =
      std::max(1, base.max_iterations / std::max(1, annealing_entrants));

  anneal::PortfolioEntrant delta;
  delta.name = "delta";
  delta.anneal = base;
  delta.anneal.max_iterations = share;
  roster.push_back(std::move(delta));

  if (entrants >= 2) {
    anneal::PortfolioEntrant mc;
    mc.name = "mc4";
    mc.anneal = base;
    mc.chains = 4;
    mc.anneal.max_iterations = std::max(1, share / mc.chains);
    roster.push_back(std::move(mc));
  }
  if (entrants >= 3) {
    anneal::PortfolioEntrant nm;
    nm.name = "nm";
    nm.anneal = base;
    nm.polish_only = true;
    roster.push_back(std::move(nm));
  }
  if (entrants >= 4) {
    anneal::PortfolioEntrant restart;
    restart.name = "restart";
    restart.anneal = base;
    restart.anneal.max_iterations = share;
    restart.fresh_start = true;
    roster.push_back(std::move(restart));
  }
  return roster;
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_annealing_invocations{0};
std::atomic<std::uint64_t> g_objective_evaluations{0};
std::atomic<std::uint64_t> g_delta_evaluations{0};
}  // namespace

std::uint64_t annealing_invocations() noexcept {
  return g_annealing_invocations.load(std::memory_order_relaxed);
}

std::uint64_t objective_evaluations() noexcept {
  return g_objective_evaluations.load(std::memory_order_relaxed);
}

std::uint64_t delta_evaluations() noexcept {
  return g_delta_evaluations.load(std::memory_order_relaxed);
}

Topology graphine_place(const circuit::InteractionGraph& graph,
                        const GraphineOptions& options) {
  return graphine_place(graph, options, nullptr);
}

Topology graphine_place(const circuit::InteractionGraph& graph,
                        const GraphineOptions& options,
                        PlacementStats* stats) {
  g_annealing_invocations.fetch_add(1, std::memory_order_relaxed);
  const auto n = static_cast<std::size_t>(graph.n_qubits());
  Topology topology;
  topology.positions.resize(n);
  if (stats != nullptr) *stats = {};
  if (n == 0) return topology;
  if (n == 1) {
    topology.positions[0] = {0.5, 0.5};
    return topology;
  }

  const std::vector<double> lower(2 * n, 0.0);
  const std::vector<double> upper(2 * n, 1.0);

  anneal::DualAnnealingOptions anneal_options;
  anneal_options.max_iterations = options.anneal_iterations;
  anneal_options.local_options.max_evaluations =
      options.local_search_evaluations;
  anneal_options.seed = options.seed;
  anneal_options.batched_proposals =
      options.proposal == ProposalMode::kBatched;
  if (options.warm_start) {
    anneal_options.initial = serpentine_seed(graph);
  }

  const bool incremental = options.proposal != ProposalMode::kFullVector ||
                           options.chains > 1 ||
                           options.portfolio_entrants > 0;
  anneal::AnnealResult result;
  int chains_used = 1;
  const util::Stopwatch anneal_watch;
  if (!incremental) {
    // Legacy reference path — kept bit-for-bit so existing cache entries
    // and goldens replay unchanged.
    const auto objective = [&](const std::vector<double>& coords) {
      return placement_objective(coords, graph, options);
    };
    result = anneal::dual_annealing(objective, lower, upper, anneal_options);
  } else if (options.portfolio_entrants > 0) {
    // Raced portfolio: the configured anneal budget is split across the
    // roster so one race costs about one single-optimizer anneal; the
    // deterministic reduction keeps the lowest final value (ties: lowest
    // entrant index).
    anneal::PortfolioOptions race_options;
    race_options.entrants =
        portfolio_roster(anneal_options, options.portfolio_entrants);
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    util::ThreadPool pool(std::min<std::size_t>(
        race_options.entrants.size(), hw));
    race_options.pool = &pool;
    result = anneal::race(
        [&]() -> std::unique_ptr<anneal::IncrementalObjective> {
          return std::make_unique<DeltaPlacementObjective>(graph, options);
        },
        lower, upper, race_options);
    // Counters report the whole race's spend, not just the winner's.
    result.evaluations = 0;
    result.delta_evaluations = 0;
    for (const anneal::EntrantAccount& account : result.entrants) {
      result.evaluations += account.evaluations;
      result.delta_evaluations += account.delta_evaluations;
    }
  } else if (options.chains <= 1) {
    DeltaPlacementObjective objective(graph, options);
    result = anneal::dual_annealing(objective, lower, upper, anneal_options);
  } else {
    anneal::MultiChainOptions mc;
    mc.chains = options.chains;
    mc.anneal = anneal_options;
    // A transient pool, never the caller's: graphine_place runs on sweep
    // worker threads, and nesting parallel_for on the same pool would
    // deadlock. Pool size does not affect the (deterministic) winner.
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    util::ThreadPool pool(
        std::min<std::size_t>(static_cast<std::size_t>(options.chains), hw));
    mc.pool = &pool;
    const anneal::MultiChainResult reduced = anneal::multi_chain(
        [&]() -> std::unique_ptr<anneal::IncrementalObjective> {
          return std::make_unique<DeltaPlacementObjective>(graph, options);
        },
        lower, upper, mc);
    result = reduced.best;
    result.evaluations = reduced.evaluations;
    result.delta_evaluations = reduced.delta_evaluations;
    result.restarts = reduced.restarts;
    result.local_searches = reduced.local_searches;
    chains_used = reduced.chains;
  }
  const double anneal_seconds = anneal_watch.seconds();

  g_objective_evaluations.fetch_add(
      static_cast<std::uint64_t>(result.evaluations),
      std::memory_order_relaxed);
  g_delta_evaluations.fetch_add(
      static_cast<std::uint64_t>(result.delta_evaluations),
      std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->anneal_seconds = anneal_seconds;
    stats->evaluations = result.evaluations;
    stats->delta_evaluations = result.delta_evaluations;
    stats->restarts = result.restarts;
    stats->local_searches = result.local_searches;
    stats->iterations = result.iterations;
    stats->chains = chains_used;
    stats->portfolio_winner = result.winner;
    stats->entrants = result.entrants;
  }

  for (std::size_t q = 0; q < n; ++q) {
    topology.positions[q] = {result.x[2 * q], result.x[2 * q + 1]};
  }
  topology.interaction_radius = bottleneck_connect_radius(topology.positions);
  return topology;
}

}  // namespace parallax::placement
