// GRAPHINE-style initial topology generation (paper Sec. II-A): the circuit
// is converted to a weighted interaction graph, dual annealing places qubits
// on a normalized [0,1]^2 plane so that heavily-interacting pairs are close,
// and the Rydberg interaction radius is chosen as the smallest radius that
// keeps every qubit reachable (the bottleneck edge of the Euclidean MST).
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/dual_annealing.hpp"
#include "circuit/interaction_graph.hpp"
#include "geometry/point.hpp"

namespace parallax::placement {

struct GraphineOptions {
  /// Annealing sweeps for the global placement search. The effective
  /// evaluation budget is max_iterations plus periodic local searches.
  int anneal_iterations = 600;
  /// Local-search evaluation budget per invocation.
  int local_search_evaluations = 400;
  /// Crowding penalty: pairs closer than `crowding_distance / sqrt(n)` are
  /// penalized quadratically so the layout cannot collapse to a point.
  double crowding_distance = 0.5;
  double crowding_weight = 10.0;
  /// Seed the annealer with a BFS-serpentine heuristic layout instead of a
  /// random state. Dramatically better for structured circuits (chains,
  /// combs) at any annealing budget; the annealer still explores globally.
  bool warm_start = true;
  std::uint64_t seed = 0x6ea7;
};

/// A placement in normalized coordinates plus the selected radius.
struct Topology {
  std::vector<geom::Point> positions;  // one per logical qubit, in [0,1]^2
  double interaction_radius = 0.0;     // normalized units
};

/// Weighted-edge placement objective (exposed for tests): sum of
/// weight * distance over edges plus the crowding penalty.
[[nodiscard]] double placement_objective(
    const std::vector<double>& coords,
    const circuit::InteractionGraph& graph, const GraphineOptions& options);

/// Smallest radius r such that the graph "two points connected iff within r"
/// is connected: the maximum edge of the Euclidean minimum spanning tree.
[[nodiscard]] double bottleneck_connect_radius(
    const std::vector<geom::Point>& points);

/// Runs the annealed placement for a circuit's interaction graph.
[[nodiscard]] Topology graphine_place(const circuit::InteractionGraph& graph,
                                      const GraphineOptions& options = {});

/// Process-wide count of graphine_place invocations (each is one O(q^5)
/// annealing run). Diagnostic hook: the cache tests assert a warm sweep
/// leaves it unchanged, and benches can report anneals avoided.
[[nodiscard]] std::uint64_t annealing_invocations() noexcept;

}  // namespace parallax::placement
