// GRAPHINE-style initial topology generation (paper Sec. II-A): the circuit
// is converted to a weighted interaction graph, dual annealing places qubits
// on a normalized [0,1]^2 plane so that heavily-interacting pairs are close,
// and the Rydberg interaction radius is chosen as the smallest radius that
// keeps every qubit reachable (the bottleneck edge of the Euclidean MST).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anneal/dual_annealing.hpp"
#include "circuit/interaction_graph.hpp"
#include "geometry/point.hpp"

namespace parallax::placement {

/// How the annealer explores the placement landscape.
enum class ProposalMode : std::uint8_t {
  /// Legacy reference path: every coordinate perturbed per iteration, full
  /// O(E + n^2) re-score per proposal. Byte-identical to pre-delta-scoring
  /// builds — cached fingerprints and goldens stay valid.
  kFullVector = 0,
  /// Delta-cost hot path: one qubit moves per proposal, scored
  /// incrementally in O(deg + local neighbors) against a spatial hash.
  /// Fingerprint-distinct from the legacy mode.
  kPerQubit = 1,
  /// Delta-cost path with batched proposal generation: every iteration's
  /// visit draws and acceptance uniforms come from a counter-based block
  /// stream, so the accept loop is branch-light and the walk is independent
  /// of SIMD width. A distinct deterministic walk — fingerprint-distinct
  /// from both modes above.
  kBatched = 2,
};

struct GraphineOptions {
  /// Annealing sweeps for the global placement search. The effective
  /// evaluation budget is max_iterations plus periodic local searches.
  int anneal_iterations = 600;
  /// Local-search evaluation budget per invocation.
  int local_search_evaluations = 400;
  /// Crowding penalty: pairs closer than `crowding_distance / sqrt(n)` are
  /// penalized quadratically so the layout cannot collapse to a point.
  double crowding_distance = 0.5;
  double crowding_weight = 10.0;
  /// Seed the annealer with a BFS-serpentine heuristic layout instead of a
  /// random state. Dramatically better for structured circuits (chains,
  /// combs) at any annealing budget; the annealer still explores globally.
  bool warm_start = true;
  std::uint64_t seed = 0x6ea7;
  /// Proposal mode (see ProposalMode). The default keeps the legacy
  /// annealer bit-for-bit.
  ProposalMode proposal = ProposalMode::kFullVector;
  /// Independent annealing chains, reduced deterministically (lowest value,
  /// then lowest chain index). chains > 1 implies per-qubit proposals and
  /// fans the chains across a transient thread pool; 1 keeps a single
  /// chain. Fingerprint-visible only when non-default, so legacy cache
  /// keys are untouched.
  int chains = 1;
  /// Windowed placement threshold: when positive and smaller than the
  /// circuit's qubit count, the interaction graph is partitioned into
  /// windows of at most this many qubits, each annealed independently and
  /// stitched (placement/windowed.hpp). 0 disables windowing. Callers
  /// normalize the field to 0 whenever the circuit fits in one window
  /// (pipeline and sweep do), so it is fingerprint-visible only when the
  /// windowed path actually runs and every legacy cache key is untouched.
  int max_window_qubits = 0;
  /// Optimizer portfolio: when positive, the anneal budget is split across
  /// up to this many raced entrants (delta single-chain, mc4 reduction,
  /// Nelder-Mead polish, fresh restart — in that fixed order) and the
  /// deterministic winner is kept (anneal/portfolio.hpp). 0 keeps the
  /// single-optimizer paths. Fingerprint-visible only when non-zero, so
  /// every legacy cache key is untouched.
  int portfolio_entrants = 0;
};

/// A placement in normalized coordinates plus the selected radius.
struct Topology {
  std::vector<geom::Point> positions;  // one per logical qubit, in [0,1]^2
  double interaction_radius = 0.0;     // normalized units
};

/// Weighted-edge placement objective (exposed for tests): sum of
/// weight * distance over edges plus the crowding penalty.
[[nodiscard]] double placement_objective(
    const std::vector<double>& coords,
    const circuit::InteractionGraph& graph, const GraphineOptions& options);

/// Smallest radius r such that the graph "two points connected iff within r"
/// is connected: the maximum edge of the Euclidean minimum spanning tree.
[[nodiscard]] double bottleneck_connect_radius(
    const std::vector<geom::Point>& points);

/// Observability counters for one graphine_place call — excluded from any
/// serialized payload or fingerprint, like pass timings.
struct PlacementStats {
  /// Wall-clock spent inside the annealer (excludes graph prep and the
  /// serpentine warm start).
  double anneal_seconds = 0.0;
  std::int64_t evaluations = 0;        // full objective evaluations
  std::int64_t delta_evaluations = 0;  // incremental single-site scores
  int restarts = 0;
  int local_searches = 0;
  int iterations = 0;
  int chains = 1;
  /// Windowed-placement accounting (placement/windowed.hpp): total windows
  /// and how many were actually annealed here (the rest came from a cache
  /// hook). Both stay 0 on the single-anneal path.
  int windows = 0;
  int windows_annealed = 0;
  /// Portfolio accounting (empty unless portfolio_entrants > 0): the
  /// winning entrant's name and every entrant's budget spend.
  std::string portfolio_winner;
  std::vector<anneal::EntrantAccount> entrants;
};

/// Runs the annealed placement for a circuit's interaction graph.
[[nodiscard]] Topology graphine_place(const circuit::InteractionGraph& graph,
                                      const GraphineOptions& options = {});

/// Like above, additionally reporting annealer work counters (stats may be
/// null).
[[nodiscard]] Topology graphine_place(const circuit::InteractionGraph& graph,
                                      const GraphineOptions& options,
                                      PlacementStats* stats);

/// Process-wide count of graphine_place invocations (each is one O(q^5)
/// annealing run). Diagnostic hook: the cache tests assert a warm sweep
/// leaves it unchanged, and benches can report anneals avoided.
[[nodiscard]] std::uint64_t annealing_invocations() noexcept;

/// Process-wide totals of full and incremental objective evaluations across
/// every anneal — the denominator for evaluations/sec in perf snapshots.
[[nodiscard]] std::uint64_t objective_evaluations() noexcept;
[[nodiscard]] std::uint64_t delta_evaluations() noexcept;

}  // namespace parallax::placement
