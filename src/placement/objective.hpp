// Delta-cost placement objective: the Graphine cost function (weighted edge
// lengths + crowding penalty) behind anneal::IncrementalObjective, so a
// single-qubit move is scored in O(deg(q) + local neighbors) instead of the
// legacy O(E + n^2) full re-score.
//
// Structure:
//   * Edge term — CSR adjacency per qubit; a move touches exactly deg(q)
//     edge terms.
//   * Crowding term — a uniform spatial-hash grid with cell size >= d_min
//     (d_min = crowding_distance / sqrt(n)); every pair closer than d_min
//     lies in adjacent cells, so a 3x3 neighborhood scan finds exactly the
//     penalized pairs. Coordinates are projected onto [0,1]^2 before cell
//     lookup; projection is 1-Lipschitz, so the scan is never
//     under-inclusive even for out-of-box query points.
//   * Exactness — cost terms accumulate in a util::ExactSum, whose
//     add/subtract are associative: value() after any move sequence is
//     bit-identical to full() of the same geometry, which is what keeps
//     multi-chain reduction and cached fingerprints deterministic.
//
// Term arithmetic intentionally uses sqrt(dx*dx + dy*dy), not geom::distance
// (std::hypot): hypot's extra rounding control is irrelevant in [0,1]^2 and
// sqrt vectorizes — the per-term math runs through the anneal::kernels SIMD
// dispatch (scalar/SSE2/AVX2), which is bit-identical to these formulas on
// every lane. The legacy placement_objective keeps hypot — the two paths are
// distinct fingerprint-visible modes, not bit-equal twins.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/objective.hpp"
#include "circuit/interaction_graph.hpp"
#include "placement/graphine.hpp"
#include "util/exact_sum.hpp"

namespace parallax::placement {

class DeltaPlacementObjective final : public anneal::IncrementalObjective {
 public:
  DeltaPlacementObjective(const circuit::InteractionGraph& graph,
                          const GraphineOptions& options);

  [[nodiscard]] std::size_t sites() const noexcept override { return n_; }
  double reset(const std::vector<double>& coords) override;
  [[nodiscard]] double value() const noexcept override { return value_; }
  double propose(std::size_t q, double x, double y) override;
  void commit() override;
  void snapshot(std::vector<double>& coords) const override;
  double full(const std::vector<double>& coords) override;

 private:
  [[nodiscard]] int cell_of(double x, double y) const noexcept;
  /// Every cost term involving site q at position (px, py) against the
  /// current positions of all other sites: deg(q) edge terms plus the
  /// crowding terms of neighbors within d_min. Batched through the
  /// anneal::kernels SIMD dispatch; term values stay bit-identical to the
  /// scalar formulas (see kernels.hpp).
  void collect_terms(std::size_t q, double px, double py,
                     std::vector<double>& out);
  /// Gathers the occupants of the 3x3 cell neighborhood around (px, py)
  /// into cand_ (bucket order, self included — the kernels filter).
  void gather_bucket_candidates(double px, double py);

  std::size_t n_ = 0;
  double d_min_ = 0.0;
  double denom_ = 0.0;  // d_min^2: both the inclusion test and the divisor
  double crowding_weight_ = 0.0;
  bool crowding_ = false;
  int ncells_ = 1;

  // CSR adjacency (both directions) + SoA edge list for full scoring —
  // the kernel gather wants flat index/weight arrays, not an AoS struct.
  std::vector<std::int32_t> adj_start_;
  std::vector<std::int32_t> adj_qubit_;
  std::vector<double> adj_weight_;
  std::vector<std::int32_t> edge_a_, edge_b_;
  std::vector<double> edge_w_;

  // Live state: SoA coordinates, bucketed occupancy, exact running cost.
  std::vector<double> xs_, ys_;
  std::vector<std::vector<std::int32_t>> buckets_;
  std::vector<std::int32_t> bucket_of_;
  util::ExactSum acc_;
  double value_ = 0.0;

  // Pending move staged by propose(), applied by commit().
  bool pending_ = false;
  std::size_t pending_q_ = 0;
  double pending_x_ = 0.0, pending_y_ = 0.0, pending_value_ = 0.0;
  std::vector<double> pending_remove_, pending_add_;

  // Scratch counting-sort grid for full() (arbitrary query geometry), the
  // de-strided coordinate copies full() feeds the kernels, and the crowding
  // candidate/term staging buffers shared by all batched paths.
  std::vector<std::int32_t> scratch_start_, scratch_items_;
  std::vector<double> scratch_xs_, scratch_ys_;
  std::vector<std::int32_t> cand_;
  std::vector<double> term_buf_;
};

}  // namespace parallax::placement
