#include "placement/windowed.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace parallax::placement {

namespace {

/// Reindexes the induced subgraph over window.qubits: node i of the result
/// is window.qubits[i]. Only edges with both endpoints inside the window
/// survive; cut edges are the stitcher's concern.
circuit::InteractionGraph induced_subgraph(
    const circuit::InteractionGraph& graph, const Window& window,
    const std::vector<std::int32_t>& window_of,
    const std::vector<std::int32_t>& local_index, std::int32_t window_id) {
  circuit::InteractionGraphBuilder builder;
  for (const circuit::WeightedEdge& e : graph.edges()) {
    if (window_of[static_cast<std::size_t>(e.a)] != window_id ||
        window_of[static_cast<std::size_t>(e.b)] != window_id) {
      continue;
    }
    builder.add_weighted(local_index[static_cast<std::size_t>(e.a)],
                         local_index[static_cast<std::size_t>(e.b)], e.weight);
  }
  return builder.build(static_cast<std::int32_t>(window.qubits.size()));
}

/// Content hash of a reindexed window subgraph; combined with the master
/// seed this gives every window a deterministic, thread-invariant seed that
/// depends only on what is being placed.
std::uint64_t subgraph_content(const circuit::InteractionGraph& subgraph) {
  util::Hash128 hash(0x77a5);
  const std::int64_t n = subgraph.n_qubits();
  hash.update(&n, sizeof n);
  for (const circuit::WeightedEdge& e : subgraph.edges()) {
    hash.update(&e.a, sizeof e.a);
    hash.update(&e.b, sizeof e.b);
    hash.update(&e.weight, sizeof e.weight);
  }
  return hash.digest().lo;
}

/// The four axis-aligned orientations of a tile (identity, mirror-x,
/// mirror-y, both). Rotations would add nothing: the annealer's layouts have
/// no preferred axis, and four options already let every cut edge pick the
/// nearer side of the tile.
geom::Point orient(const geom::Point& p, int orientation) {
  geom::Point q = p;
  if (orientation & 1) q.x = 1.0 - q.x;
  if (orientation & 2) q.y = 1.0 - q.y;
  return q;
}

}  // namespace

std::vector<Window> partition_windows(const circuit::InteractionGraph& graph,
                                      std::int32_t max_qubits) {
  const auto n = graph.n_qubits();
  std::vector<Window> windows;
  if (n <= 0) return windows;

  // Adjacency with weights, for heaviest-connection growth.
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> adj(
      static_cast<std::size_t>(n));
  for (const circuit::WeightedEdge& e : graph.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.weight});
    if (e.b != e.a) adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.weight});
  }

  std::vector<char> assigned(static_cast<std::size_t>(n), 0);

  // Seed order: heaviest weighted degree first, index ascending on ties.
  std::vector<std::int32_t> seeds(static_cast<std::size_t>(n));
  for (std::int32_t q = 0; q < n; ++q) seeds[static_cast<std::size_t>(q)] = q;
  std::stable_sort(seeds.begin(), seeds.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  // connection[q]: total edge weight from q into the window being grown.
  std::vector<std::int64_t> connection(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> touched;

  for (const std::int32_t seed : seeds) {
    if (assigned[static_cast<std::size_t>(seed)]) continue;
    if (graph.degree(seed) == 0) continue;  // isolated: packed below
    Window window;
    window.qubits.push_back(seed);
    assigned[static_cast<std::size_t>(seed)] = 1;
    touched.clear();
    for (const auto& [nb, w] : adj[static_cast<std::size_t>(seed)]) {
      if (assigned[static_cast<std::size_t>(nb)]) continue;
      if (connection[static_cast<std::size_t>(nb)] == 0) touched.push_back(nb);
      connection[static_cast<std::size_t>(nb)] += w;
    }
    while (static_cast<std::int32_t>(window.qubits.size()) < max_qubits) {
      // Pick the unassigned frontier qubit with the heaviest connection to
      // the window; lowest index on ties keeps the partition deterministic.
      std::int32_t best = -1;
      std::int64_t best_w = 0;
      for (const std::int32_t q : touched) {
        if (assigned[static_cast<std::size_t>(q)]) continue;
        const std::int64_t w = connection[static_cast<std::size_t>(q)];
        if (w > best_w || (w == best_w && best != -1 && q < best)) {
          best = q;
          best_w = w;
        }
      }
      if (best < 0) break;  // component exhausted
      window.qubits.push_back(best);
      assigned[static_cast<std::size_t>(best)] = 1;
      for (const auto& [nb, w] : adj[static_cast<std::size_t>(best)]) {
        if (assigned[static_cast<std::size_t>(nb)]) continue;
        if (connection[static_cast<std::size_t>(nb)] == 0) touched.push_back(nb);
        connection[static_cast<std::size_t>(nb)] += w;
      }
    }
    for (const std::int32_t q : touched) {
      connection[static_cast<std::size_t>(q)] = 0;
    }
    std::sort(window.qubits.begin(), window.qubits.end());
    windows.push_back(std::move(window));
  }

  // Isolated qubits: fill spare capacity in existing windows, then open
  // fresh ones. Ascending order everywhere keeps this deterministic.
  std::vector<std::int32_t> isolated;
  for (std::int32_t q = 0; q < n; ++q) {
    if (!assigned[static_cast<std::size_t>(q)]) isolated.push_back(q);
  }
  std::size_t next_window = 0;
  for (const std::int32_t q : isolated) {
    while (next_window < windows.size() &&
           static_cast<std::int32_t>(windows[next_window].qubits.size()) >=
               max_qubits) {
      ++next_window;
    }
    if (next_window == windows.size()) windows.push_back({});
    windows[next_window].qubits.push_back(q);
  }
  for (Window& w : windows) std::sort(w.qubits.begin(), w.qubits.end());
  return windows;
}

bool windowing_applies(const circuit::InteractionGraph& graph,
                       const GraphineOptions& options) noexcept {
  return options.max_window_qubits > 0 &&
         graph.n_qubits() > options.max_window_qubits;
}

Topology windowed_place(const circuit::InteractionGraph& graph,
                        const GraphineOptions& options, PlacementStats* stats,
                        const WindowHooks* hooks) {
  if (!windowing_applies(graph, options)) {
    return graphine_place(graph, options, stats);
  }

  const auto n = graph.n_qubits();
  const std::vector<Window> windows =
      partition_windows(graph, options.max_window_qubits);

  // Window membership tables shared by subgraph extraction and stitching.
  std::vector<std::int32_t> window_of(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> local_index(static_cast<std::size_t>(n), -1);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    for (std::size_t i = 0; i < windows[w].qubits.size(); ++i) {
      const auto q = static_cast<std::size_t>(windows[w].qubits[i]);
      window_of[q] = static_cast<std::int32_t>(w);
      local_index[q] = static_cast<std::int32_t>(i);
    }
  }

  // Anneal each window independently (window-local [0,1]^2 layouts).
  std::vector<Topology> layouts(windows.size());
  if (stats != nullptr) {
    stats->windows = static_cast<int>(windows.size());
  }
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const circuit::InteractionGraph subgraph = induced_subgraph(
        graph, windows[w], window_of, local_index,
        static_cast<std::int32_t>(w));
    GraphineOptions wopts = options;
    wopts.max_window_qubits = 0;  // window anneals never re-window
    wopts.seed = util::SplitMix64(options.seed ^ subgraph_content(subgraph))
                     .next();
    const WindowContext context{w, &windows[w], &subgraph, &wopts};
    if (hooks != nullptr && hooks->lookup) {
      if (std::optional<Topology> cached = hooks->lookup(context)) {
        layouts[w] = std::move(*cached);
        continue;
      }
    }
    PlacementStats wstats;
    layouts[w] = graphine_place(subgraph, wopts, &wstats);
    if (stats != nullptr) {
      stats->anneal_seconds += wstats.anneal_seconds;
      stats->evaluations += wstats.evaluations;
      stats->delta_evaluations += wstats.delta_evaluations;
      stats->restarts += wstats.restarts;
      stats->local_searches += wstats.local_searches;
      stats->iterations += wstats.iterations;
      ++stats->windows_annealed;
    }
    if (hooks != nullptr && hooks->store) hooks->store(context, layouts[w]);
  }

  // Stitch: windows occupy tiles of a near-square grid in partition order
  // (hot windows first, since partitioning seeds by degree). Each tile then
  // greedily picks the orientation that shortens its cut edges to already
  // stitched tiles — deterministic, one pass.
  const auto tiles = static_cast<std::int32_t>(windows.size());
  const auto side = static_cast<std::int32_t>(
      std::ceil(std::sqrt(static_cast<double>(tiles))));
  const double tile_span = 1.0 / side;
  // Margin keeps neighboring windows from touching at tile borders; the
  // discretizer and radius selection both cope with any spacing, this just
  // keeps intra-window structure dominant over accidental adjacency.
  const double margin = 0.05 * tile_span;
  const double scale = tile_span - 2.0 * margin;

  Topology stitched;
  stitched.positions.assign(static_cast<std::size_t>(n), geom::Point{});
  std::vector<int> orientation(windows.size(), 0);

  auto tile_origin = [&](std::size_t w) {
    const auto row = static_cast<std::int32_t>(w) / side;
    const auto col = static_cast<std::int32_t>(w) % side;
    return geom::Point{col * tile_span + margin, row * tile_span + margin};
  };
  auto global_position = [&](std::size_t w, std::int32_t local,
                             int flip) {
    const geom::Point p =
        orient(layouts[w].positions[static_cast<std::size_t>(local)], flip);
    const geom::Point origin = tile_origin(w);
    return geom::Point{origin.x + p.x * scale, origin.y + p.y * scale};
  };

  for (std::size_t w = 0; w < windows.size(); ++w) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best_flip = 0;
    for (int flip = 0; flip < 4; ++flip) {
      double cost = 0.0;
      for (const circuit::WeightedEdge& e : graph.edges()) {
        const auto wa = window_of[static_cast<std::size_t>(e.a)];
        const auto wb = window_of[static_cast<std::size_t>(e.b)];
        // Cut edges between this window and any already-stitched one.
        std::int32_t inside;
        std::int32_t outside;
        if (wa == static_cast<std::int32_t>(w) &&
            wb < static_cast<std::int32_t>(w)) {
          inside = e.a;
          outside = e.b;
        } else if (wb == static_cast<std::int32_t>(w) &&
                   wa < static_cast<std::int32_t>(w)) {
          inside = e.b;
          outside = e.a;
        } else {
          continue;
        }
        const geom::Point p = global_position(
            w, local_index[static_cast<std::size_t>(inside)], flip);
        const geom::Point q =
            stitched.positions[static_cast<std::size_t>(outside)];
        const double dx = p.x - q.x;
        const double dy = p.y - q.y;
        cost += static_cast<double>(e.weight) * std::sqrt(dx * dx + dy * dy);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_flip = flip;
      }
    }
    orientation[w] = best_flip;
    for (std::size_t i = 0; i < windows[w].qubits.size(); ++i) {
      stitched.positions[static_cast<std::size_t>(windows[w].qubits[i])] =
          global_position(w, static_cast<std::int32_t>(i), best_flip);
    }
  }

  stitched.interaction_radius = bottleneck_connect_radius(stitched.positions);
  return stitched;
}

}  // namespace parallax::placement
