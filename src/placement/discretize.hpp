// Step 2 of the Parallax pipeline: discretize the annealed [0,1]^2 placement
// onto the machine's site grid (pitch = 2 * min separation + padding).
// After snapping, the interaction radius is recomputed on the *physical*
// positions as the bottleneck connectivity radius, so the in-range graph is
// guaranteed connected for every technique that routes on it.
#pragma once

#include <vector>

#include "geometry/grid.hpp"
#include "hardware/config.hpp"
#include "placement/graphine.hpp"

namespace parallax::placement {

struct PhysicalTopology {
  geom::Grid grid{1, 1.0};
  /// Site of each logical qubit (all distinct).
  std::vector<geom::Cell> sites;
  /// Rydberg interaction radius (um), >= one grid pitch.
  double interaction_radius_um = 0.0;
  /// Rydberg blockade radius: 2.5x the interaction radius (paper Sec. I-A).
  double blockade_radius_um = 0.0;

  [[nodiscard]] geom::Point position(std::int32_t qubit) const {
    return grid.position(sites[static_cast<std::size_t>(qubit)]);
  }
};

struct DiscretizeOptions {
  /// The circuit is laid out inside a square sub-region of
  /// ceil(sqrt(n_qubits) * spread_factor) sites per side (clamped to the
  /// machine). A small circuit thus keeps a compact footprint — the
  /// precondition for replicating logical shots side by side (paper
  /// Sec. II-E) — while large circuits use the whole machine. On a larger
  /// machine the same circuit gets more room, which is exactly the paper's
  /// explanation of why topologies improve from 256 to 1,225 atoms.
  double spread_factor = 2.0;
};

/// Snaps every qubit of `topology` onto a free site of the machine grid,
/// nearest-first (ties broken toward smaller snapping distortion). Throws
/// std::runtime_error if the circuit has more qubits than the machine has
/// sites.
[[nodiscard]] PhysicalTopology discretize(
    const Topology& topology, const hardware::HardwareConfig& config,
    const DiscretizeOptions& options = {});

}  // namespace parallax::placement
