#include "placement/objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "anneal/kernels.hpp"

namespace parallax::placement {

namespace kernels = anneal::kernels;

DeltaPlacementObjective::DeltaPlacementObjective(
    const circuit::InteractionGraph& graph, const GraphineOptions& options)
    : n_(static_cast<std::size_t>(graph.n_qubits())),
      crowding_weight_(options.crowding_weight) {
  if (n_ > 1) {
    d_min_ = options.crowding_distance / std::sqrt(static_cast<double>(n_));
    denom_ = d_min_ * d_min_;
    crowding_ = d_min_ > 0.0;
  }
  // floor(1/d_min) cells keeps cell size 1/ncells >= d_min, so any pair
  // within d_min spans at most one cell boundary per axis. Cap the grid so
  // degenerate options cannot allocate unboundedly.
  if (crowding_) {
    ncells_ = std::clamp(static_cast<int>(1.0 / d_min_), 1, 2048);
  }

  // CSR adjacency (both directions) and the SoA edge list.
  std::vector<std::int32_t> degree(n_ + 1, 0);
  edge_a_.reserve(graph.edges().size());
  edge_b_.reserve(graph.edges().size());
  edge_w_.reserve(graph.edges().size());
  for (const auto& e : graph.edges()) {
    edge_a_.push_back(e.a);
    edge_b_.push_back(e.b);
    edge_w_.push_back(static_cast<double>(e.weight));
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  adj_start_.assign(n_ + 1, 0);
  for (std::size_t q = 0; q < n_; ++q) {
    adj_start_[q + 1] = adj_start_[q] + degree[q];
  }
  adj_qubit_.resize(static_cast<std::size_t>(adj_start_[n_]));
  adj_weight_.resize(adj_qubit_.size());
  std::vector<std::int32_t> fill(adj_start_.begin(), adj_start_.end() - 1);
  for (std::size_t e = 0; e < edge_a_.size(); ++e) {
    const auto a = static_cast<std::size_t>(edge_a_[e]);
    const auto b = static_cast<std::size_t>(edge_b_[e]);
    adj_qubit_[static_cast<std::size_t>(fill[a])] = edge_b_[e];
    adj_weight_[static_cast<std::size_t>(fill[a]++)] = edge_w_[e];
    adj_qubit_[static_cast<std::size_t>(fill[b])] = edge_a_[e];
    adj_weight_[static_cast<std::size_t>(fill[b]++)] = edge_w_[e];
  }

  xs_.assign(n_, 0.0);
  ys_.assign(n_, 0.0);
  bucket_of_.assign(n_, 0);
  buckets_.resize(static_cast<std::size_t>(ncells_) *
                  static_cast<std::size_t>(ncells_));
}

int DeltaPlacementObjective::cell_of(double x, double y) const noexcept {
  const double cx = std::clamp(x, 0.0, 1.0);
  const double cy = std::clamp(y, 0.0, 1.0);
  const int ix =
      std::min(ncells_ - 1, static_cast<int>(cx * static_cast<double>(ncells_)));
  const int iy =
      std::min(ncells_ - 1, static_cast<int>(cy * static_cast<double>(ncells_)));
  return iy * ncells_ + ix;
}

void DeltaPlacementObjective::gather_bucket_candidates(double px, double py) {
  cand_.clear();
  const int cell = cell_of(px, py);
  const int cx = cell % ncells_;
  const int cy = cell / ncells_;
  const int x0 = std::max(cx - 1, 0), x1 = std::min(cx + 1, ncells_ - 1);
  const int y0 = std::max(cy - 1, 0), y1 = std::min(cy + 1, ncells_ - 1);
  for (int gy = y0; gy <= y1; ++gy) {
    for (int gx = x0; gx <= x1; ++gx) {
      const auto& bucket = buckets_[static_cast<std::size_t>(gy * ncells_ + gx)];
      cand_.insert(cand_.end(), bucket.begin(), bucket.end());
    }
  }
}

void DeltaPlacementObjective::collect_terms(std::size_t q, double px,
                                            double py,
                                            std::vector<double>& out) {
  const auto start = static_cast<std::size_t>(adj_start_[q]);
  const auto deg = static_cast<std::size_t>(adj_start_[q + 1]) - start;
  out.resize(deg);
  kernels::edge_terms_gather(adj_qubit_.data() + start,
                             adj_weight_.data() + start, deg, px, py,
                             xs_.data(), ys_.data(), out.data());
  if (!crowding_) return;
  gather_bucket_candidates(px, py);
  out.resize(deg + cand_.size());
  const std::size_t produced = kernels::crowding_terms_excluding_self(
      cand_.data(), cand_.size(), static_cast<std::int32_t>(q), px, py,
      xs_.data(), ys_.data(), d_min_, denom_, crowding_weight_,
      out.data() + deg);
  out.resize(deg + produced);
}

double DeltaPlacementObjective::reset(const std::vector<double>& coords) {
  assert(coords.size() == 2 * n_);
  pending_ = false;
  for (std::size_t q = 0; q < n_; ++q) {
    xs_[q] = coords[2 * q];
    ys_[q] = coords[2 * q + 1];
  }
  for (auto& bucket : buckets_) bucket.clear();
  for (std::size_t q = 0; q < n_; ++q) {
    const int cell = cell_of(xs_[q], ys_[q]);
    bucket_of_[q] = cell;
    buckets_[static_cast<std::size_t>(cell)].push_back(
        static_cast<std::int32_t>(q));
  }

  acc_.clear();
  term_buf_.resize(edge_a_.size());
  kernels::edge_terms_pairs(edge_a_.data(), edge_b_.data(), edge_w_.data(),
                            edge_a_.size(), xs_.data(), ys_.data(),
                            term_buf_.data());
  for (const double t : term_buf_) acc_.add(t);
  if (crowding_) {
    for (std::size_t i = 0; i < n_; ++i) {
      gather_bucket_candidates(xs_[i], ys_[i]);
      term_buf_.resize(cand_.size());
      const std::size_t produced = kernels::crowding_terms_above_self(
          cand_.data(), cand_.size(), static_cast<std::int32_t>(i), xs_[i],
          ys_[i], xs_.data(), ys_.data(), d_min_, denom_, crowding_weight_,
          term_buf_.data());
      for (std::size_t t = 0; t < produced; ++t) acc_.add(term_buf_[t]);
    }
  }
  value_ = acc_.round();
  return value_;
}

double DeltaPlacementObjective::propose(std::size_t q, double x, double y) {
  assert(q < n_);
  collect_terms(q, xs_[q], ys_[q], pending_remove_);
  collect_terms(q, x, y, pending_add_);
  util::ExactSum acc = acc_;
  for (const double t : pending_remove_) acc.subtract(t);
  for (const double t : pending_add_) acc.add(t);
  pending_q_ = q;
  pending_x_ = x;
  pending_y_ = y;
  pending_value_ = acc.round();
  pending_ = true;
  return pending_value_;
}

void DeltaPlacementObjective::commit() {
  assert(pending_ && "commit() without a prior propose()");
  for (const double t : pending_remove_) acc_.subtract(t);
  for (const double t : pending_add_) acc_.add(t);
  const int old_cell = bucket_of_[pending_q_];
  const int new_cell = cell_of(pending_x_, pending_y_);
  if (new_cell != old_cell) {
    auto& bucket = buckets_[static_cast<std::size_t>(old_cell)];
    const auto it = std::find(bucket.begin(), bucket.end(),
                              static_cast<std::int32_t>(pending_q_));
    assert(it != bucket.end());
    *it = bucket.back();
    bucket.pop_back();
    buckets_[static_cast<std::size_t>(new_cell)].push_back(
        static_cast<std::int32_t>(pending_q_));
    bucket_of_[pending_q_] = new_cell;
  }
  xs_[pending_q_] = pending_x_;
  ys_[pending_q_] = pending_y_;
  value_ = pending_value_;
  pending_ = false;
}

void DeltaPlacementObjective::snapshot(std::vector<double>& coords) const {
  coords.resize(2 * n_);
  for (std::size_t q = 0; q < n_; ++q) {
    coords[2 * q] = xs_[q];
    coords[2 * q + 1] = ys_[q];
  }
}

double DeltaPlacementObjective::full(const std::vector<double>& coords) {
  assert(coords.size() == 2 * n_);
  // De-stride the query geometry once so every kernel below runs over
  // unit-stride SoA arrays.
  scratch_xs_.resize(n_);
  scratch_ys_.resize(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    scratch_xs_[q] = coords[2 * q];
    scratch_ys_[q] = coords[2 * q + 1];
  }
  util::ExactSum acc;
  term_buf_.resize(edge_a_.size());
  kernels::edge_terms_pairs(edge_a_.data(), edge_b_.data(), edge_w_.data(),
                            edge_a_.size(), scratch_xs_.data(),
                            scratch_ys_.data(), term_buf_.data());
  for (const double t : term_buf_) acc.add(t);
  if (crowding_) {
    // Counting-sort the query geometry into the scratch grid.
    const auto cells =
        static_cast<std::size_t>(ncells_) * static_cast<std::size_t>(ncells_);
    scratch_start_.assign(cells + 1, 0);
    scratch_items_.resize(n_);
    for (std::size_t q = 0; q < n_; ++q) {
      ++scratch_start_[static_cast<std::size_t>(
                           cell_of(scratch_xs_[q], scratch_ys_[q])) +
                       1];
    }
    for (std::size_t c = 0; c < cells; ++c) {
      scratch_start_[c + 1] += scratch_start_[c];
    }
    std::vector<std::int32_t> fill(scratch_start_.begin(),
                                   scratch_start_.end() - 1);
    for (std::size_t q = 0; q < n_; ++q) {
      const auto cell =
          static_cast<std::size_t>(cell_of(scratch_xs_[q], scratch_ys_[q]));
      scratch_items_[static_cast<std::size_t>(fill[cell]++)] =
          static_cast<std::int32_t>(q);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const int cell = cell_of(scratch_xs_[i], scratch_ys_[i]);
      const int cx = cell % ncells_;
      const int cy = cell / ncells_;
      const int x0 = std::max(cx - 1, 0), x1 = std::min(cx + 1, ncells_ - 1);
      const int y0 = std::max(cy - 1, 0), y1 = std::min(cy + 1, ncells_ - 1);
      cand_.clear();
      for (int gy = y0; gy <= y1; ++gy) {
        for (int gx = x0; gx <= x1; ++gx) {
          const auto c = static_cast<std::size_t>(gy * ncells_ + gx);
          cand_.insert(cand_.end(),
                       scratch_items_.begin() + scratch_start_[c],
                       scratch_items_.begin() + scratch_start_[c + 1]);
        }
      }
      term_buf_.resize(cand_.size());
      const std::size_t produced = kernels::crowding_terms_above_self(
          cand_.data(), cand_.size(), static_cast<std::int32_t>(i),
          scratch_xs_[i], scratch_ys_[i], scratch_xs_.data(),
          scratch_ys_.data(), d_min_, denom_, crowding_weight_,
          term_buf_.data());
      for (std::size_t t = 0; t < produced; ++t) acc.add(term_buf_[t]);
    }
  }
  return acc.round();
}

}  // namespace parallax::placement
