// The batch sweep driver: fans a circuit x technique x machine matrix across
// util::ThreadPool and returns structured per-cell results (stats, runtime,
// success probability, shot plans). This is the engine behind every bench
// binary, the CLI's --technique all mode, and the examples — the paper's
// 18 circuits x 3 techniques x 2 machines evaluation is one call.
//
// Guarantees:
//   * Determinism: a cell's result depends only on (circuit, technique,
//     machine, options) — never on thread count or completion order. Every
//     seed derives from (master seed, circuit name, stage salt).
//   * Shared work: each circuit is transpiled once, and the Graphine
//     annealed placement is memoized per (circuit, placement options), so
//     techniques that share Step 1 (parallax, graphine) and machine variants
//     of the same circuit never recompute it — exactly the paper's
//     methodology of reusing placements across techniques.
//   * Isolation: a cell that fails to compile reports its error string;
//     the rest of the sweep completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_circuits/registry.hpp"
#include "cache/cache.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "pipeline/pipeline.hpp"
#include "shots/parallelize.hpp"
#include "technique/registry.hpp"

namespace parallax::util {
class ThreadPool;
}  // namespace parallax::util

namespace parallax::sweep {

struct Cell;

/// One circuit of the sweep matrix, with the label results are keyed by.
struct CircuitSpec {
  std::string name;
  circuit::Circuit circuit;
};

/// Builds specs for Table III benchmarks by acronym.
[[nodiscard]] std::vector<CircuitSpec> benchmark_circuits(
    const std::vector<std::string>& acronyms,
    const bench_circuits::GenOptions& gen = {});

/// All 18 Table III benchmarks.
[[nodiscard]] std::vector<CircuitSpec> all_benchmark_circuits(
    const bench_circuits::GenOptions& gen = {});

/// One hardware configuration of the sweep matrix.
struct MachineSpec {
  std::string name;
  hardware::HardwareConfig config;
};

struct Options {
  /// Base compile options for every cell (seed, spreads, scheduler knobs).
  pipeline::CompileOptions compile{};
  /// Worker threads; 0 selects hardware concurrency.
  std::size_t n_threads = 0;
  /// Memoize the Graphine placement per (circuit, placement options) and
  /// feed it to every cell whose pipeline contains "graphine-placement".
  bool share_placements = true;
  /// Estimate noise::success_probability per cell.
  bool compute_success_probability = true;
  noise::NoiseOptions noise{};
  /// When set, compute the Fig. 11 parallelization series per cell.
  std::optional<shots::ShotOptions> shots;
  /// Per-cell option tweaks, applied before compilation (e.g. a different
  /// spread factor for one technique). Placement memoization keys on the
  /// customized options, so divergent placements are never wrongly shared.
  std::function<void(const std::string& circuit, const std::string& technique,
                     const std::string& machine,
                     pipeline::CompileOptions& options)>
      customize;
  /// Persistent compilation cache. When set, the in-run transpile/placement
  /// memos consult and populate its disk tier (a rerun anneals nothing that
  /// any earlier run annealed), and whole cells short-circuit on result
  /// hits. Null (the default) keeps pure in-run memoization.
  std::shared_ptr<cache::CompilationCache> cache;
  /// With `cache` set, serve whole cells from cached CompileResults
  /// (incremental sweeps: a rerun only recompiles cells whose fingerprints
  /// changed). Disable to reuse only placements.
  bool reuse_results = true;
  /// Cell ownership predicate over the flat circuit-major cell index. Cells
  /// for which it returns false are labeled but never compiled (Cell::skipped
  /// is set). This is the hook the shard layer (shard/shard.hpp) partitions
  /// the matrix through; null runs everything.
  std::function<bool(std::size_t flat_index)> cell_filter;
  /// Free-form origin label stamped into every executed cell
  /// (Cell::origin) — shard runners set "shard-K/N@host" so error cells in a
  /// merged multi-host campaign say where they ran. Not part of a cell's
  /// identity: canonical serializations exclude it, like pass timings.
  std::string provenance;
  /// Streaming hook: invoked once per executed cell (cache hits and error
  /// cells included; filtered/cancelled cells excluded) as the cell
  /// completes, from whichever worker thread ran it — callbacks for
  /// different cells may overlap, so the callee serializes its own output.
  /// The referenced Cell is fully populated and lives in the Result this
  /// run() eventually returns. Must not throw. Runtime-only: never part of
  /// a serialized spec, never part of a cell's identity.
  std::function<void(const Cell& cell)> on_cell;
  /// Cooperative cancellation token. Checked once before each cell starts:
  /// when set to true, cells not yet started are marked Cell::cancelled and
  /// skipped, in-flight cells run to completion, and run() returns the
  /// partial Result with Result::cancelled set — so cancelling an in-flight
  /// sweep costs at most one cell's compile time. Runtime-only, like
  /// on_cell.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Borrowed worker pool. When set, run() fans cells across it instead of
  /// constructing a private pool (n_threads is then ignored) — the serve
  /// layer keeps one persistent pool across requests. Must not be called
  /// from one of the pool's own worker threads (the fan-out blocks its
  /// caller). Runtime-only.
  util::ThreadPool* pool = nullptr;
  /// Per-run anneal accounting. When set, incremented once per Graphine
  /// anneal this run actually pays for (never for memo, disk, or preset
  /// placements), and Result::anneals reports the same delta — so callers
  /// that run sweeps concurrently in one process (the serve farm, a sweep
  /// next to a CLI compile) each see only their own anneals instead of a
  /// process-global drift. Null keeps a private counter. Runtime-only,
  /// like on_cell.
  std::shared_ptr<std::atomic<std::uint64_t>> anneal_counter;
};

/// One (circuit, technique, machine) result.
struct Cell {
  std::string circuit;
  std::string technique;
  std::string machine;
  std::size_t circuit_index = 0;
  std::size_t technique_index = 0;
  std::size_t machine_index = 0;

  compiler::CompileResult result;
  double success_probability = 0.0;
  /// Fig. 11 series (only when Options::shots is set and the cell compiled).
  std::vector<shots::ParallelPlan> shot_plans;
  double compile_seconds = 0.0;
  /// The whole cell (result, success probability, shot plans) was served
  /// from the persistent cache; no pass ran.
  bool from_cache = false;
  /// Options::cell_filter excluded this cell: labels are set, nothing ran.
  bool skipped = false;
  /// Options::cancel fired before this cell started: labels are set,
  /// nothing ran, and Options::on_cell was not invoked for it.
  bool cancelled = false;
  /// Where the cell was computed (Options::provenance) — "" for plain
  /// in-process sweeps, "shard-K/N@host" under the shard runner. Carried by
  /// error cells too, so a failed cell of a merged campaign names its shard.
  std::string origin;
  /// Non-empty if compilation threw; `result` is then default-constructed.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct Result {
  /// Cells in deterministic circuit-major order (then technique, then
  /// machine), independent of thread count.
  std::vector<Cell> cells;
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;
  /// Options::cancel fired before every cell completed; cells carry
  /// per-cell `cancelled` flags.
  bool cancelled = false;
  std::size_t placement_cache_hits = 0;
  std::size_t placement_cache_misses = 0;
  std::size_t transpile_cache_hits = 0;
  std::size_t transpile_cache_misses = 0;
  /// Persistent-cache accounting (all zero when Options::cache is null).
  /// Placements loaded from the disk tier instead of annealed — a subset of
  /// placement_cache_misses (the in-run memo missed, the store hit).
  std::size_t placement_disk_hits = 0;
  /// Cells served whole from cached CompileResults / cells compiled and
  /// stored.
  std::size_t result_cache_hits = 0;
  std::size_t result_cache_misses = 0;
  /// Graphine anneals this run actually paid for — 0 for a fully warm sweep.
  /// Counted per run (each anneal site this run executes increments
  /// Options::anneal_counter or a private equivalent), so concurrent
  /// sweep::run calls in one process never attribute each other's anneals.
  std::size_t anneals = 0;

  /// Cell lookup by labels; empty `machine` matches the sole machine of a
  /// single-machine sweep (std::logic_error if the sweep had several).
  /// Throws std::out_of_range when absent.
  [[nodiscard]] const Cell& at(std::string_view circuit,
                               std::string_view technique,
                               std::string_view machine = {}) const;
};

/// Runs the full matrix. Technique names are validated against `registry`
/// up front (UnknownTechniqueError); per-cell compile errors are reported in
/// the cells, not thrown.
[[nodiscard]] Result run(
    const std::vector<CircuitSpec>& circuits,
    const std::vector<std::string>& techniques,
    const std::vector<MachineSpec>& machines, const Options& options = {},
    const technique::Registry& registry = technique::Registry::global());

}  // namespace parallax::sweep
