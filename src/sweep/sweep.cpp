#include "sweep/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "circuit/interaction_graph.hpp"
#include "circuit/transpile.hpp"
#include "placement/graphine.hpp"
#include "placement/windowed.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace parallax::sweep {

namespace {

using util::Stopwatch;

/// Thread-safe memo keyed by an option fingerprint. The first caller of a
/// key computes the value; concurrent callers of the same key wait on its
/// shared_future, so no placement is ever annealed twice.
template <typename V>
class Memo {
 public:
  /// The reference is into the memo's shared state and stays valid for the
  /// memo's lifetime.
  const V& get(const std::string& key, const std::function<V()>& compute,
               std::size_t* hits, std::size_t* misses) {
    std::shared_future<V> future;
    bool owner = false;
    std::promise<V> promise;
    {
      std::lock_guard lock(mutex_);
      auto it = futures_.find(key);
      if (it == futures_.end()) {
        owner = true;
        future = promise.get_future().share();
        futures_.emplace(key, future);
        ++*misses;
      } else {
        future = it->second;
        ++*hits;
      }
    }
    if (owner) {
      try {
        promise.set_value(compute());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_future<V>> futures_;
};

/// Keyed by the fingerprint of the circuit the placement's interaction graph
/// is built from (`input_key`) plus every GraphineOptions field, so cells
/// whose effective inputs or placement options diverge never share one.
std::string placement_key(const std::string& input_key,
                          const placement::GraphineOptions& options) {
  char buffer[224];
  std::snprintf(buffer, sizeof(buffer),
                "|%d|%d|%.17g|%.17g|%d|%llu|%d|%d|%d|%d",
                options.anneal_iterations,
                options.local_search_evaluations, options.crowding_distance,
                options.crowding_weight, options.warm_start ? 1 : 0,
                static_cast<unsigned long long>(options.seed),
                static_cast<int>(options.proposal), options.chains,
                options.max_window_qubits, options.portfolio_entrants);
  return input_key + buffer;
}

std::string transpile_key(std::size_t circuit_index,
                          const circuit::TranspileOptions& options) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%zu|%d|%d|%d|%.17g|%d",
                circuit_index, options.fuse_single_qubit ? 1 : 0,
                options.cancel_cz_pairs ? 1 : 0,
                options.drop_identities ? 1 : 0, options.identity_tolerance,
                options.max_iterations);
  return buffer;
}

/// Overwrites the timing entry of `pass_name` (when present) with the cost
/// the sweep driver actually paid for that stage outside the pipeline —
/// memo/cache lookups run before Pipeline::run, so the in-pipeline pass is
/// a near-zero passthrough and its raw timing would misreport the stage.
void attribute_stage_timing(compiler::CompileResult& result,
                            std::string_view pass_name, double seconds,
                            bool cached) {
  for (auto& timing : result.pass_timings) {
    if (timing.pass == pass_name) {
      timing.seconds = seconds;
      timing.cached = cached;
      return;
    }
  }
}

}  // namespace

std::vector<CircuitSpec> benchmark_circuits(
    const std::vector<std::string>& acronyms,
    const bench_circuits::GenOptions& gen) {
  std::vector<CircuitSpec> specs;
  specs.reserve(acronyms.size());
  for (const auto& acronym : acronyms) {
    specs.push_back({acronym, bench_circuits::make_benchmark(acronym, gen)});
  }
  return specs;
}

std::vector<CircuitSpec> all_benchmark_circuits(
    const bench_circuits::GenOptions& gen) {
  std::vector<std::string> acronyms;
  for (const auto& info : bench_circuits::all_benchmarks()) {
    acronyms.push_back(info.acronym);
  }
  return benchmark_circuits(acronyms, gen);
}

const Cell& Result::at(std::string_view circuit, std::string_view technique,
                       std::string_view machine) const {
  if (machine.empty()) {
    for (const auto& cell : cells) {
      if (cell.machine_index > 0) {
        throw std::logic_error(
            "sweep::Result::at needs a machine label on a multi-machine "
            "sweep");
      }
    }
  }
  for (const auto& cell : cells) {
    if (cell.circuit == circuit && cell.technique == technique &&
        (machine.empty() || cell.machine == machine)) {
      return cell;
    }
  }
  throw std::out_of_range("no sweep cell for circuit '" +
                          std::string(circuit) + "', technique '" +
                          std::string(technique) + "', machine '" +
                          std::string(machine) + "'");
}

Result run(const std::vector<CircuitSpec>& circuits,
           const std::vector<std::string>& techniques,
           const std::vector<MachineSpec>& machines, const Options& options,
           const technique::Registry& registry) {
  // Fail fast on a name the registry does not know, before any threads run.
  for (const auto& name : techniques) (void)registry.info(name);

  const Stopwatch stopwatch;
  Result sweep_result;
  sweep_result.cells.resize(circuits.size() * techniques.size() *
                            machines.size());

  // Each circuit is transpiled once and shared by every (technique, machine)
  // cell with the same transpile options — the paper's Qiskit-preprocessing
  // methodology.
  Memo<circuit::Circuit> transpiled_memo;
  Memo<placement::Topology> placement_memo;
  // Content fingerprints of effective input circuits (persistent-cache keys
  // are content-addressed, never index-based, so they survive reordering of
  // the sweep matrix across runs).
  Memo<cache::Digest128> fingerprint_memo;
  std::size_t fingerprint_hits = 0;  // accounting only; not reported
  std::size_t fingerprint_misses = 0;

  cache::CompilationCache* const persistent = options.cache.get();
  std::atomic<std::size_t> placement_disk_hits{0};
  std::atomic<std::size_t> result_cache_hits{0};
  std::atomic<std::size_t> result_cache_misses{0};

  // Per-run anneal accounting: every site that actually runs a Graphine
  // anneal on behalf of this run (the placement memo below, or a pipeline
  // placement pass when no placement is injected) increments this counter —
  // never a process-global one, so concurrent runs stay disentangled.
  const std::shared_ptr<std::atomic<std::uint64_t>> anneal_counter =
      options.anneal_counter != nullptr
          ? options.anneal_counter
          : std::make_shared<std::atomic<std::uint64_t>>(0);
  const std::uint64_t anneals_before =
      anneal_counter->load(std::memory_order_relaxed);

  // The serve layer lends its persistent pool across requests; everyone
  // else gets a private pool for this run.
  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* const pool = options.pool != nullptr
                                     ? options.pool
                                     : &owned_pool.emplace(options.n_threads);
  sweep_result.threads_used = pool->size();

  // The compile body proper, minus the per-cell bookkeeping that must also
  // run on its early returns (timing, the on_cell streaming hook).
  const auto compile_cell = [&](Cell& cell, std::size_t ci,
                                const CircuitSpec& spec,
                                const MachineSpec& machine) {
      pipeline::CompileOptions opts = options.compile;
      if (options.customize) {
        options.customize(cell.circuit, cell.technique, cell.machine, opts);
      }
      // Technique-declared option tuning (e.g. graphine-mc4 switching the
      // placement annealer to per-qubit multi-chain) applies after the
      // caller's customize hook and before any key is derived, so memo
      // keys, cache fingerprints, and the pipeline all see the same
      // effective options.
      registry.apply_tuning(cell.technique, opts);
      // Runtime-only hook (never fingerprinted): anneals a placement pass
      // runs inside the pipeline are charged to this run.
      opts.anneal_counter = anneal_counter;

      // Shared transpilation (no-op when the caller's inputs are already in
      // the {U3, CZ} basis). Keyed on the cell's effective transpile options
      // so a customize hook that changes them is honored, not silently
      // served another cell's circuit. Circuit names are preserved, so
      // per-circuit seed derivation is unchanged.
      const circuit::Circuit* input = &spec.circuit;
      std::string input_key = std::to_string(ci) + "|raw";
      bool transpile_shared = false;
      double transpile_seconds = 0.0;
      if (!opts.assume_transpiled) {
        input_key = transpile_key(ci, opts.transpile);
        bool transpiled_here = false;
        const Stopwatch transpile_watch;
        input = &transpiled_memo.get(
            input_key,
            [&, transpile_options = opts.transpile] {
              transpiled_here = true;
              return circuit::transpile(spec.circuit, transpile_options);
            },
            &sweep_result.transpile_cache_hits,
            &sweep_result.transpile_cache_misses);
        transpile_seconds = transpile_watch.seconds();
        transpile_shared = !transpiled_here;
        opts.assume_transpiled = true;
      }

      // Content fingerprint of the effective input, shared per input_key.
      // Only needed (and only computed) when a persistent cache is wired in.
      const cache::Digest128* input_fp = nullptr;
      if (persistent != nullptr) {
        input_fp = &fingerprint_memo.get(
            input_key, [&] { return cache::fingerprint(*input); },
            &fingerprint_hits, &fingerprint_misses);
      }

      const pipeline::Pipeline pl = registry.make_pipeline(cell.technique,
                                                           opts);

      // Whole-cell short-circuit: the result key covers the effective
      // circuit, technique (name + pass list), machine, every compile
      // option, and which derived outputs (success probability, shot
      // plans) ride along — an incremental sweep recompiles exactly the
      // cells whose fingerprints changed.
      cache::Digest128 cell_key;
      const bool use_results = persistent != nullptr && options.reuse_results;
      if (use_results) {
        cell_key = cache::result_key(
            *input_fp, cell.technique, pl.pass_names(), machine.config, opts,
            options.compute_success_probability ? &options.noise : nullptr,
            options.shots ? &*options.shots : nullptr);
        if (auto hit = persistent->get_result(cell_key)) {
          cell.result = std::move(hit->result);
          cell.success_probability = hit->success_probability;
          cell.shot_plans = std::move(hit->shot_plans);
          cell.from_cache = true;
          for (const auto& pass : pl.pass_names()) {
            // Mirror the live pipeline's timing shape: the graphine pass
            // emits an "anneal" row ahead of its own.
            if (pass == "graphine-placement") {
              cell.result.pass_timings.push_back({"anneal", 0.0, true});
            }
            cell.result.pass_timings.push_back({pass, 0.0, true});
          }
          result_cache_hits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        result_cache_misses.fetch_add(1, std::memory_order_relaxed);
      }

      const bool fits = input->n_qubits() <= machine.config.n_atoms();
      bool placement_injected = false;
      bool placement_annealed_here = false;
      double placement_seconds = 0.0;
      double placement_anneal_seconds = 0.0;
      if (options.share_placements && fits && !opts.preset_topology &&
          pl.contains("graphine-placement")) {
        placement::GraphineOptions popts = opts.placement;
        popts.seed = util::derive_seed(opts.seed, input->name(),
                                       util::kPlacementSeedSalt);
        // Normalize before any key is derived: a window cap the circuit fits
        // under changes nothing, so it must not perturb memo keys or the
        // persistent fingerprint (which feeds the field only when non-zero).
        if (popts.max_window_qubits > 0 &&
            input->n_qubits() <= popts.max_window_qubits) {
          popts.max_window_qubits = 0;
        }
        const Stopwatch placement_watch;
        opts.preset_topology = placement_memo.get(
            placement_key(input_key, popts),
            [&] {
              // The in-run memo missed: consult the persistent disk tier
              // before paying for an anneal, and persist fresh anneals so
              // no future run repeats them.
              placement::PlacementStats stats;
              cache::Digest128 key;
              if (persistent != nullptr) {
                key = cache::placement_key(*input_fp, popts);
                if (auto stored = persistent->get_placement(key)) {
                  placement_disk_hits.fetch_add(1, std::memory_order_relaxed);
                  return std::move(*stored);
                }
              }
              const circuit::InteractionGraph graph(*input);
              placement::Topology topology;
              if (placement::windowing_applies(graph, popts)) {
                // Windowed path: each window's anneal is itself cached in
                // the persistent tier, keyed by the reindexed subgraph's
                // content plus its effective options — so even when the
                // whole-placement key misses (say, one window's structure
                // changed), every unchanged window replays from disk.
                placement::WindowHooks hooks;
                if (persistent != nullptr) {
                  hooks.lookup = [&](const placement::WindowContext& wctx)
                      -> std::optional<placement::Topology> {
                    const cache::Digest128 wkey = cache::placement_key(
                        cache::fingerprint(*wctx.subgraph), *wctx.options);
                    if (auto stored = persistent->get_placement(wkey)) {
                      placement_disk_hits.fetch_add(1,
                                                    std::memory_order_relaxed);
                      return std::move(*stored);
                    }
                    return std::nullopt;
                  };
                  hooks.store = [&](const placement::WindowContext& wctx,
                                    const placement::Topology& layout) {
                    const cache::Digest128 wkey = cache::placement_key(
                        cache::fingerprint(*wctx.subgraph), *wctx.options);
                    persistent->put_placement(wkey, layout);
                  };
                }
                topology = placement::windowed_place(
                    graph, popts, &stats,
                    persistent != nullptr ? &hooks : nullptr);
                placement_annealed_here = stats.windows_annealed > 0;
                anneal_counter->fetch_add(
                    static_cast<std::uint64_t>(stats.windows_annealed),
                    std::memory_order_relaxed);
              } else {
                placement_annealed_here = true;
                anneal_counter->fetch_add(1, std::memory_order_relaxed);
                topology = placement::graphine_place(graph, popts, &stats);
              }
              placement_anneal_seconds = stats.anneal_seconds;
              if (persistent != nullptr) {
                persistent->put_placement(key, topology);
              }
              return topology;
            },
            &sweep_result.placement_cache_hits,
            &sweep_result.placement_cache_misses);
        placement_seconds = placement_watch.seconds();
        placement_injected = true;
      }

      cell.result = pl.run(*input, machine.config, opts);
      // Re-attribute the stage costs the driver paid outside the pipeline,
      // marking stages whose product came from a memo or the persistent
      // cache rather than being computed for this cell.
      if (transpile_seconds != 0.0 || transpile_shared) {
        attribute_stage_timing(cell.result, "transpile", transpile_seconds,
                               transpile_shared);
      }
      if (placement_injected) {
        attribute_stage_timing(cell.result, "graphine-placement",
                               placement_seconds, !placement_annealed_here);
        attribute_stage_timing(cell.result, "anneal", placement_anneal_seconds,
                               !placement_annealed_here);
      }
      if (options.compute_success_probability) {
        if (opts.fidelity.model == noise::FidelityModel::kSimulated) {
          // Monte Carlo estimate via the discrete-event simulator, with the
          // sweep's noise channels. Single-threaded: the cell already runs
          // on a pool worker, and the shot streams are seed-derived, so the
          // estimate is identical however the shots are fanned out.
          sim::SimOptions sim_options;
          sim_options.shots = opts.fidelity.shots;
          sim_options.seed = util::derive_seed(opts.seed, input->name(),
                                               util::kSimSeedSalt);
          sim_options.channels = options.noise;
          sim_options.moving_decoherence_scale =
              opts.fidelity.moving_decoherence_scale;
          sim_options.n_threads = 1;
          cell.success_probability =
              sim::simulate(cell.result, machine.config, sim_options).mean();
        } else {
          cell.success_probability = noise::success_probability(
              cell.result, machine.config, options.noise);
        }
      }
      if (options.shots) {
        cell.shot_plans = shots::parallelization_sweep(
            cell.result, machine.config, *options.shots);
      }
      if (use_results) {
        cache::CachedCell stored;
        stored.result = cell.result;
        stored.has_success_probability = options.compute_success_probability;
        stored.success_probability = cell.success_probability;
        stored.has_shot_plans = options.shots.has_value();
        stored.shot_plans = cell.shot_plans;
        persistent->put_result(cell_key, stored);
      }
  };

  const auto run_cell = [&](std::size_t flat) {
    const std::size_t per_circuit = techniques.size() * machines.size();
    const std::size_t ci = flat / per_circuit;
    const std::size_t ti = (flat % per_circuit) / machines.size();
    const std::size_t mi = flat % machines.size();
    const CircuitSpec& spec = circuits[ci];
    const MachineSpec& machine = machines[mi];

    Cell& cell = sweep_result.cells[flat];
    cell.circuit = spec.name;
    cell.technique = techniques[ti];
    cell.machine = machine.name;
    cell.circuit_index = ci;
    cell.technique_index = ti;
    cell.machine_index = mi;

    if (options.cell_filter && !options.cell_filter(flat)) {
      cell.skipped = true;
      return;
    }
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) {
      cell.cancelled = true;
      return;
    }
    cell.origin = options.provenance;

    const Stopwatch cell_watch;
    try {
      compile_cell(cell, ci, spec, machine);
    } catch (const std::exception& error) {
      cell.error = error.what();
    }
    cell.compile_seconds = cell_watch.seconds();
    if (options.on_cell) options.on_cell(cell);
  };

  pool->parallel_for(sweep_result.cells.size(), run_cell);
  sweep_result.anneals = static_cast<std::size_t>(
      anneal_counter->load(std::memory_order_relaxed) - anneals_before);
  for (const Cell& cell : sweep_result.cells) {
    if (cell.cancelled) {
      sweep_result.cancelled = true;
      break;
    }
  }
  sweep_result.placement_disk_hits = placement_disk_hits.load();
  sweep_result.result_cache_hits = result_cache_hits.load();
  sweep_result.result_cache_misses = result_cache_misses.load();
  sweep_result.wall_seconds = stopwatch.seconds();
  return sweep_result;
}

}  // namespace parallax::sweep
