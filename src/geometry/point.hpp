// 2D geometry primitives shared by placement, hardware, and schedulers.
// Continuous coordinates are in micrometres (um) unless stated otherwise;
// Graphine's annealer works in a normalized [0,1]^2 space that placement
// rescales onto the physical grid.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace parallax::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend constexpr Point operator*(double s, Point a) noexcept { return a * s; }
  friend constexpr bool operator==(Point a, Point b) noexcept {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  return (a - b).norm();
}

[[nodiscard]] inline double distance_sq(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Integer grid cell (discretized SLM site coordinates).
struct Cell {
  std::int32_t col = 0;  // x index
  std::int32_t row = 0;  // y index

  friend constexpr bool operator==(Cell a, Cell b) noexcept {
    return a.col == b.col && a.row == b.row;
  }
  friend constexpr auto operator<=>(Cell a, Cell b) noexcept {
    if (auto c = a.row <=> b.row; c != 0) return c;
    return a.col <=> b.col;
  }
};

/// Chebyshev (ring) distance between cells; used for spiral free-site search.
[[nodiscard]] constexpr std::int32_t chebyshev(Cell a, Cell b) noexcept {
  const std::int32_t dc = a.col > b.col ? a.col - b.col : b.col - a.col;
  const std::int32_t dr = a.row > b.row ? a.row - b.row : b.row - a.row;
  return dc > dr ? dc : dr;
}

/// Manhattan distance between cells; used by the ELDI SWAP router.
[[nodiscard]] constexpr std::int32_t manhattan(Cell a, Cell b) noexcept {
  const std::int32_t dc = a.col > b.col ? a.col - b.col : b.col - a.col;
  const std::int32_t dr = a.row > b.row ? a.row - b.row : b.row - a.row;
  return dc + dr;
}

}  // namespace parallax::geom
