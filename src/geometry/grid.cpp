#include "geometry/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parallax::geom {

Grid::Grid(std::int32_t side, double pitch_um)
    : side_(side), pitch_um_(pitch_um) {
  assert(side > 0);
  assert(pitch_um > 0.0);
}

Cell Grid::nearest_cell(Point p) const noexcept {
  auto clamp_idx = [this](double v) {
    const auto idx = static_cast<std::int32_t>(std::lround(v / pitch_um_));
    return std::clamp(idx, std::int32_t{0}, side_ - 1);
  };
  return {clamp_idx(p.x), clamp_idx(p.y)};
}

std::vector<Cell> Grid::ring(Cell centre, std::int32_t radius) const {
  std::vector<Cell> cells;
  if (radius == 0) {
    if (in_bounds(centre)) cells.push_back(centre);
    return cells;
  }
  cells.reserve(static_cast<std::size_t>(8) * radius);
  // Top and bottom edges.
  for (std::int32_t dc = -radius; dc <= radius; ++dc) {
    Cell top{centre.col + dc, centre.row - radius};
    Cell bottom{centre.col + dc, centre.row + radius};
    if (in_bounds(top)) cells.push_back(top);
    if (in_bounds(bottom)) cells.push_back(bottom);
  }
  // Left and right edges, excluding corners already added.
  for (std::int32_t dr = -radius + 1; dr <= radius - 1; ++dr) {
    Cell left{centre.col - radius, centre.row + dr};
    Cell right{centre.col + radius, centre.row + dr};
    if (in_bounds(left)) cells.push_back(left);
    if (in_bounds(right)) cells.push_back(right);
  }
  return cells;
}

Occupancy::Occupancy(const Grid& grid)
    : grid_(&grid), mask_(grid.site_count(), 0) {}

bool Occupancy::occupied(Cell c) const noexcept {
  return mask_[index(c)] != 0;
}

void Occupancy::set(Cell c, bool value) noexcept {
  char& slot = mask_[index(c)];
  if (slot != static_cast<char>(value)) {
    occupied_count_ += value ? 1 : -1;
    slot = static_cast<char>(value);
  }
}

std::optional<Cell> Occupancy::nearest_free(Cell target) const {
  if (grid_->in_bounds(target) && !occupied(target)) return target;
  const std::int32_t max_radius = 2 * grid_->side();
  for (std::int32_t r = 1; r <= max_radius; ++r) {
    Cell best{};
    double best_d = -1.0;
    for (Cell c : grid_->ring(target, r)) {
      if (occupied(c)) continue;
      // Among the ring's free cells prefer the one closest in Euclidean
      // metric so snapping distortion is minimal.
      const double d = distance_sq(grid_->position(c), grid_->position(target));
      if (best_d < 0.0 || d < best_d) {
        best_d = d;
        best = c;
      }
    }
    if (best_d >= 0.0) return best;
  }
  return std::nullopt;
}

}  // namespace parallax::geom
