// Discrete site grid used for the SLM trap array. The grid pitch equals
// 2 * minimum_separation + padding (paper Sec. II-A), which guarantees that
// (1) static atoms never violate the separation constraint and (2) an AOD
// atom can always navigate between two static atoms.
#pragma once

#include <optional>
#include <vector>

#include "geometry/point.hpp"

namespace parallax::geom {

class Grid {
 public:
  /// side x side sites, spaced `pitch_um` apart, origin at (0, 0).
  Grid(std::int32_t side, double pitch_um);

  [[nodiscard]] std::int32_t side() const noexcept { return side_; }
  [[nodiscard]] double pitch() const noexcept { return pitch_um_; }
  [[nodiscard]] std::size_t site_count() const noexcept {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }

  [[nodiscard]] bool in_bounds(Cell c) const noexcept {
    return c.col >= 0 && c.row >= 0 && c.col < side_ && c.row < side_;
  }

  /// Physical position of a cell centre.
  [[nodiscard]] Point position(Cell c) const noexcept {
    return {c.col * pitch_um_, c.row * pitch_um_};
  }

  /// Nearest cell to a physical point (clamped to bounds).
  [[nodiscard]] Cell nearest_cell(Point p) const noexcept;

  /// Physical side length spanned by the grid.
  [[nodiscard]] double extent() const noexcept {
    return (side_ - 1) * pitch_um_;
  }

  /// Enumerates cells of the square ring at Chebyshev distance `radius`
  /// around `centre`, clipped to bounds. radius == 0 yields {centre}.
  [[nodiscard]] std::vector<Cell> ring(Cell centre, std::int32_t radius) const;

 private:
  std::int32_t side_;
  double pitch_um_;
};

/// Occupancy mask over a Grid. Supports spiral search for the nearest free
/// cell, which discretization and the ELDI mapper both use.
class Occupancy {
 public:
  explicit Occupancy(const Grid& grid);

  [[nodiscard]] bool occupied(Cell c) const noexcept;
  void set(Cell c, bool value) noexcept;

  /// Nearest free cell to `target` by Chebyshev ring search; nullopt if the
  /// grid is full.
  [[nodiscard]] std::optional<Cell> nearest_free(Cell target) const;

  [[nodiscard]] std::size_t count_occupied() const noexcept {
    return occupied_count_;
  }

 private:
  const Grid* grid_;
  std::vector<char> mask_;
  std::size_t occupied_count_ = 0;

  [[nodiscard]] std::size_t index(Cell c) const noexcept {
    return static_cast<std::size_t>(c.row) *
               static_cast<std::size_t>(grid_->side()) +
           static_cast<std::size_t>(c.col);
  }
};

}  // namespace parallax::geom
