#include "noise/model.hpp"

#include <cmath>

namespace parallax::noise {

double decoherence_factor(double runtime_us,
                          const hardware::HardwareConfig& config) {
  const double t_seconds = runtime_us * 1e-6;
  return std::exp(-t_seconds / config.t1_seconds) *
         std::exp(-t_seconds / config.t2_seconds);
}

double success_probability(const compiler::CompileResult& result,
                           const hardware::HardwareConfig& config,
                           const NoiseOptions& options) {
  double p = 1.0;

  if (options.include_gate_errors) {
    p *= std::pow(1.0 - config.u3_error,
                  static_cast<double>(result.stats.u3_gates));
    p *= std::pow(1.0 - config.cz_error,
                  static_cast<double>(result.stats.cz_gates));
    p *= std::pow(1.0 - config.swap_error,
                  static_cast<double>(result.stats.swap_gates));
  }

  if (options.include_operation_overheads) {
    p *= std::pow(1.0 - config.trap_switch_error,
                  static_cast<double>(result.stats.trap_changes));
    p *= std::pow(1.0 - config.movement_loss,
                  static_cast<double>(result.stats.aod_moves));
  }

  if (options.include_decoherence) {
    const double factor = decoherence_factor(result.runtime_us, config);
    if (options.per_qubit_decoherence) {
      p *= std::pow(factor, static_cast<double>(result.circuit.n_qubits()));
    } else {
      p *= factor;
    }
  }

  if (options.include_readout) {
    p *= std::pow(1.0 - config.readout_error,
                  static_cast<double>(result.circuit.n_qubits()));
  }
  if (options.include_atom_loss) {
    p *= std::pow(1.0 - config.atom_loss_rate,
                  static_cast<double>(result.circuit.n_qubits()));
  }
  return p;
}

}  // namespace parallax::noise
