// Success-probability estimation (paper Sec. III, "Evaluation Metrics"):
// the probability that one logical shot produces the correct output, taken
// as the product of all component fidelities (VERITAS-style) combined with
// exponential decoherence decay over the circuit runtime.
//
// Calibration notes (validated against the paper's Fig. 10 values): the
// plotted numbers are dominated by the CZ-gate error product — e.g. WST with
// 52 CZs gives 0.9952^52 ~ 0.78 vs the paper's 0.77, TFIM with 2,540 CZs
// gives ~5e-6 vs the paper's ~3e-6. Readout and background atom loss are
// identical across techniques (the paper replenishes lost atoms between
// shots) and are excluded from the default, as the paper's best-case
// normalization cancels them; both can be switched on.
#pragma once

#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::noise {

struct NoiseOptions {
  bool include_gate_errors = true;
  bool include_decoherence = true;
  /// Movement-induced atom loss and trap-change errors (Parallax only; the
  /// baselines have neither).
  bool include_operation_overheads = true;
  /// Per-qubit readout error (shared by all techniques; off by default to
  /// match the paper's plotted numbers).
  bool include_readout = false;
  /// Background atom loss (shared; off by default, see above).
  bool include_atom_loss = false;
  /// Apply the T1/T2 decay per qubit instead of once per circuit. The
  /// paper's magnitudes match circuit-level decay; per-qubit is provided
  /// for sensitivity studies.
  bool per_qubit_decoherence = false;
};

/// Estimated probability of success for one logical shot of `result` on the
/// hardware described by `config`.
[[nodiscard]] double success_probability(const compiler::CompileResult& result,
                                         const hardware::HardwareConfig& config,
                                         const NoiseOptions& options = {});

/// The decoherence factor alone: exp(-t/T1) * exp(-t/T2) for runtime t.
[[nodiscard]] double decoherence_factor(double runtime_us,
                                        const hardware::HardwareConfig& config);

}  // namespace parallax::noise
