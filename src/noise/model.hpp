// Success-probability estimation (paper Sec. III, "Evaluation Metrics"):
// the probability that one logical shot produces the correct output, taken
// as the product of all component fidelities (VERITAS-style) combined with
// exponential decoherence decay over the circuit runtime.
//
// Calibration notes (validated against the paper's Fig. 10 values): the
// plotted numbers are dominated by the CZ-gate error product — e.g. WST with
// 52 CZs gives 0.9952^52 ~ 0.78 vs the paper's 0.77, TFIM with 2,540 CZs
// gives ~5e-6 vs the paper's ~3e-6. Readout and background atom loss are
// identical across techniques (the paper replenishes lost atoms between
// shots) and are excluded from the default, as the paper's best-case
// normalization cancels them; both can be switched on.
#pragma once

#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::noise {

struct NoiseOptions {
  bool include_gate_errors = true;
  bool include_decoherence = true;
  /// Movement-induced atom loss and trap-change errors (Parallax only; the
  /// baselines have neither).
  bool include_operation_overheads = true;
  /// Per-qubit readout error (shared by all techniques; off by default to
  /// match the paper's plotted numbers).
  bool include_readout = false;
  /// Background atom loss (shared; off by default, see above).
  bool include_atom_loss = false;
  /// Apply the T1/T2 decay per qubit instead of once per circuit. The
  /// paper's magnitudes match circuit-level decay; per-qubit is provided
  /// for sensitivity studies.
  bool per_qubit_decoherence = false;
};

/// How a sweep cell's success probability is produced. The closed-form
/// product above is the paper's metric and the default; the simulated
/// estimator replays the schedule through the discrete-event simulator
/// (src/sim) and reports the Monte Carlo shot-survival mean instead.
enum class FidelityModel : std::uint8_t {
  kClosedForm = 0,
  kSimulated = 1,
};

/// Options selecting and parameterizing the fidelity estimator. Defaults
/// reproduce the closed-form model byte-for-byte; like PR 6's tune fields,
/// non-default values are fingerprint-visible (cache/fingerprint.cpp) while
/// the defaults hash to exactly their pre-sim bytes, so existing cache keys
/// stay stable.
struct FidelityOptions {
  FidelityModel model = FidelityModel::kClosedForm;
  /// Monte Carlo shots per cell when `model == kSimulated`.
  std::int64_t shots = 4096;
  /// T1/T2 scale applied to the time a qubit spends in flight (1.0 = moving
  /// decoheres exactly like parking, which is what the closed-form model
  /// assumes; only meaningful with per-qubit decoherence).
  double moving_decoherence_scale = 1.0;

  [[nodiscard]] bool is_default() const noexcept {
    return model == FidelityModel::kClosedForm &&
           shots == FidelityOptions{}.shots &&
           moving_decoherence_scale == 1.0;
  }
};

/// Estimated probability of success for one logical shot of `result` on the
/// hardware described by `config`.
[[nodiscard]] double success_probability(const compiler::CompileResult& result,
                                         const hardware::HardwareConfig& config,
                                         const NoiseOptions& options = {});

/// The decoherence factor alone: exp(-t/T1) * exp(-t/T2) over an interval of
/// `runtime_us`. This is the single definition of T1/T2 decay shared by the
/// closed-form model (one whole-runtime interval) and the discrete-event
/// simulator (one interval per event leg) — exp multiplicativity makes the
/// per-interval product equal the whole-runtime factor, so the two paths
/// cannot drift.
[[nodiscard]] double decoherence_factor(double runtime_us,
                                        const hardware::HardwareConfig& config);

}  // namespace parallax::noise
