// Serializes a circuit back to OpenQASM 2.0. Supports round-trip testing and
// lets users export compiled/transpiled circuits to other toolchains.
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace parallax::qasm {

/// Emits OPENQASM 2.0 text for a circuit in the {U3, CZ, SWAP} basis. One
/// qreg `q[n]` and (if the circuit measures) one creg `c[n]` are declared.
[[nodiscard]] std::string to_qasm(const circuit::Circuit& circuit);

/// Writes to_qasm(circuit) to `path`; throws std::runtime_error on I/O error.
void write_qasm_file(const circuit::Circuit& circuit, const std::string& path);

}  // namespace parallax::qasm
