// AST fragments the parser keeps around: parameter expression trees (needed
// lazily, since gate-body expressions are evaluated at each expansion with
// different bindings) and gate macro definitions.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace parallax::qasm {

/// Parameter expression tree. Identifiers are resolved at parse time either
/// to the constant pi or to a formal-parameter slot index.
struct Expr {
  enum class Kind : unsigned char {
    kNumber,
    kParam,   // formal parameter reference (slot)
    kNegate,  // unary minus
    kAdd,
    kSub,
    kMul,
    kDiv,
    kPow,
    kCall,  // sin/cos/tan/exp/ln/sqrt
  };

  Kind kind = Kind::kNumber;
  double number = 0.0;       // kNumber
  int param_index = -1;      // kParam
  std::string func;          // kCall
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  /// Evaluates with the given formal-parameter bindings.
  [[nodiscard]] double eval(const std::vector<double>& params) const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// One statement inside a gate body: either a nested gate call or a barrier
/// (barriers inside macro bodies are accepted and ignored, as they only
/// constrain intra-macro scheduling, which our IR does not track).
struct BodyStatement {
  bool is_barrier = false;
  std::string gate_name;
  std::vector<ExprPtr> params;       // expressions over the formals
  std::vector<int> argument_slots;   // indices into the formal qubit args
};

/// A `gate` definition (macro). Bodies reference formal qubit arguments by
/// slot and formal parameters by slot.
struct GateDef {
  std::string name;
  int n_params = 0;
  int n_qubits = 0;
  std::vector<BodyStatement> body;
  bool opaque = false;  // declared `opaque`: instantiating it is an error
};

}  // namespace parallax::qasm
