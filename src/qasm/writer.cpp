#include "qasm/writer.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace parallax::qasm {

std::string to_qasm(const circuit::Circuit& circuit) {
  std::ostringstream out;
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.n_qubits() << "];\n";
  if (circuit.count(circuit::GateType::kMeasure) > 0) {
    out << "creg c[" << circuit.n_qubits() << "];\n";
  }
  char buf[160];
  for (const circuit::Gate& g : circuit.gates()) {
    switch (g.type) {
      case circuit::GateType::kU3:
        std::snprintf(buf, sizeof(buf), "u3(%.17g,%.17g,%.17g) q[%d];\n",
                      g.theta, g.phi, g.lambda, g.q[0]);
        out << buf;
        break;
      case circuit::GateType::kCZ:
        out << "cz q[" << g.q[0] << "],q[" << g.q[1] << "];\n";
        break;
      case circuit::GateType::kSwap:
        out << "swap q[" << g.q[0] << "],q[" << g.q[1] << "];\n";
        break;
      case circuit::GateType::kMeasure:
        out << "measure q[" << g.q[0] << "] -> c[" << g.q[0] << "];\n";
        break;
      case circuit::GateType::kBarrier:
        out << "barrier q;\n";
        break;
    }
  }
  return out.str();
}

void write_qasm_file(const circuit::Circuit& circuit,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << to_qasm(circuit);
}

}  // namespace parallax::qasm
