#include "qasm/stream_lexer.hpp"

#include <array>
#include <charconv>
#include <cstring>

#include "qasm/lexer.hpp"

namespace parallax::qasm {

namespace {

// Locale-independent character classes (QASM 2.0 source is ASCII), folded
// into one 256-entry flag table: the scanning loops below run once per byte
// of a potentially multi-hundred-MB file, and a single indexed load beats a
// chain of range compares there.
constexpr unsigned char kSpaceF = 1u;       // whitespace, including '\n'
constexpr unsigned char kDigitF = 2u;       // [0-9]
constexpr unsigned char kIdentStartF = 4u;  // [A-Za-z_]
constexpr unsigned char kIdentCharF = 8u;   // ident start or digit

constexpr std::array<unsigned char, 256> make_class_table() {
  std::array<unsigned char, 256> t{};
  for (const char c : {' ', '\t', '\n', '\v', '\f', '\r'}) {
    t[static_cast<unsigned char>(c)] |= kSpaceF;
  }
  for (int c = '0'; c <= '9'; ++c) t[c] |= kDigitF | kIdentCharF;
  for (int c = 'a'; c <= 'z'; ++c) t[c] |= kIdentStartF | kIdentCharF;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] |= kIdentStartF | kIdentCharF;
  t[static_cast<unsigned char>('_')] |= kIdentStartF | kIdentCharF;
  return t;
}
constexpr std::array<unsigned char, 256> kClass = make_class_table();

constexpr bool is_space(char c) noexcept {
  return kClass[static_cast<unsigned char>(c)] & kSpaceF;
}
constexpr bool is_digit(char c) noexcept {
  return kClass[static_cast<unsigned char>(c)] & kDigitF;
}
constexpr bool is_ident_start(char c) noexcept {
  return kClass[static_cast<unsigned char>(c)] & kIdentStartF;
}
constexpr bool is_ident_char(char c) noexcept {
  return kClass[static_cast<unsigned char>(c)] & kIdentCharF;
}

}  // namespace

StreamLexer::StreamLexer(std::istream& in, std::string source_name)
    : src_(in.rdbuf()), source_name_(std::move(source_name)) {
  buf_.resize(kBufferSize);
}

bool StreamLexer::refill() {
  const std::size_t tail = end_ - pos_;
  if (tail > 0 && pos_ > 0) std::memmove(buf_.data(), buf_.data() + pos_, tail);
  pos_ = 0;
  end_ = tail;
  if (src_ != nullptr) {
    const std::streamsize got = src_->sgetn(
        buf_.data() + end_, static_cast<std::streamsize>(buf_.size() - end_));
    if (got > 0) {
      end_ += static_cast<std::size_t>(got);
      bytes_read_ += static_cast<std::uint64_t>(got);
    } else {
      src_ = nullptr;  // exhausted: stop issuing virtual reads
    }
  }
  return pos_ < end_;
}

char StreamLexer::peek(std::size_t ahead) {
  if (pos_ + ahead >= end_) {
    refill();
    if (pos_ + ahead >= end_) return '\0';
  }
  return buf_[pos_ + ahead];
}

char StreamLexer::advance() {
  const char c = buf_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void StreamLexer::skip_whitespace_and_comments() {
  for (;;) {
    // Bulk-skip whitespace over the buffered span with the cursor cached in
    // locals: buf_/pos_/line_/column_ are members, and per-byte stores to
    // them would force reloads (they may alias the buffer) in this loop,
    // which runs for every byte between tokens.
    {
      const char* data = buf_.data();
      const std::size_t end = end_;
      std::size_t p = pos_;
      int line = line_;
      int column = column_;
      while (p < end) {
        const char c = data[p];
        if (c == '\n') {
          ++p;
          ++line;
          column = 1;
        } else if (is_space(c)) {
          ++p;
          ++column;
        } else {
          break;
        }
      }
      pos_ = p;
      line_ = line;
      column_ = column;
    }
    if (pos_ >= end_) {
      if (!refill()) return;
      continue;
    }
    if (buf_[pos_] == '/' && peek(1) == '/') {
      // Columns inside a comment are never observed (the comment either ends
      // at a newline, which resets them, or at EOF), so only pos_ advances.
      while ((pos_ < end_ || refill()) && buf_[pos_] != '\n') ++pos_;
      continue;
    }
    return;
  }
}

void StreamLexer::next(Token& out) {
  skip_whitespace_and_comments();
  out.line = line_;
  out.column = column_;
  out.value = 0.0;
  if (at_end()) {
    out.kind = TokenKind::kEof;
    out.text.clear();
    return;
  }
  next_token(out);
}

void StreamLexer::next_token(Token& out) {
  const char c = buf_[pos_];

  if (is_ident_start(c)) {
    out.kind = TokenKind::kIdentifier;
    out.text.clear();
    for (;;) {
      const char* data = buf_.data();
      const std::size_t end = end_;
      const std::size_t start = pos_;
      std::size_t p = start;
      while (p < end && is_ident_char(data[p])) ++p;
      out.text.append(data + start, p - start);
      column_ += static_cast<int>(p - start);
      pos_ = p;
      if (p < end) break;
      if (!refill()) break;
    }
    return;
  }

  if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
    lex_number(out);
    return;
  }

  if (c == '"') {
    const int line = out.line;
    const int column = out.column;
    advance();
    out.kind = TokenKind::kString;
    out.text.clear();
    while (!at_end() && buf_[pos_] != '"') out.text += advance();
    if (at_end()) {
      throw ParseError("unterminated string", source_name_, line, column);
    }
    advance();  // closing quote
    return;
  }

  advance();
  auto simple = [&](TokenKind kind, const char* text) {
    out.kind = kind;
    out.text = text;
  };
  switch (c) {
    case '(': return simple(TokenKind::kLParen, "(");
    case ')': return simple(TokenKind::kRParen, ")");
    case '{': return simple(TokenKind::kLBrace, "{");
    case '}': return simple(TokenKind::kRBrace, "}");
    case '[': return simple(TokenKind::kLBracket, "[");
    case ']': return simple(TokenKind::kRBracket, "]");
    case ';': return simple(TokenKind::kSemicolon, ";");
    case ',': return simple(TokenKind::kComma, ",");
    case '+': return simple(TokenKind::kPlus, "+");
    case '*': return simple(TokenKind::kStar, "*");
    case '/': return simple(TokenKind::kSlash, "/");
    case '^': return simple(TokenKind::kCaret, "^");
    case '-':
      if (peek() == '>') {
        advance();
        return simple(TokenKind::kArrow, "->");
      }
      return simple(TokenKind::kMinus, "-");
    case '=':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::kEqualEqual, "==");
      }
      throw ParseError("unexpected '='", source_name_, out.line, out.column);
    default:
      throw ParseError(std::string("unexpected character '") + c + "'",
                       source_name_, out.line, out.column);
  }
}

void StreamLexer::lex_number(Token& out) {
  out.kind = TokenKind::kNumber;

  // Fast path: the whole literal (and one delimiter after it) sits inside
  // the buffer, so it can be scanned and converted in place.
  std::size_t p = pos_;
  while (p < end_ && (is_digit(buf_[p]) || buf_[p] == '.')) ++p;
  if (p < end_ && (buf_[p] == 'e' || buf_[p] == 'E')) {
    ++p;
    if (p < end_ && (buf_[p] == '+' || buf_[p] == '-')) ++p;
    while (p < end_ && is_digit(buf_[p])) ++p;
  }
  if (p < end_) {
    out.text.assign(buf_.data() + pos_, p - pos_);
    const auto [ptr, ec] = std::from_chars(buf_.data() + pos_,
                                           buf_.data() + p, out.value);
    if (ec != std::errc{} || ptr != buf_.data() + p) {
      throw ParseError("malformed number '" + out.text + "'", source_name_,
                       out.line, out.column);
    }
    column_ += static_cast<int>(p - pos_);
    pos_ = p;
    return;
  }

  // Slow path: the literal may straddle a refill boundary; accumulate text.
  std::string& text = out.text;
  text.clear();
  for (;;) {
    const std::size_t start = pos_;
    while (pos_ < end_ && (is_digit(buf_[pos_]) || buf_[pos_] == '.')) ++pos_;
    text.append(buf_.data() + start, pos_ - start);
    column_ += static_cast<int>(pos_ - start);
    if (pos_ < end_) break;
    if (!refill()) break;
  }
  if (peek() == 'e' || peek() == 'E') {
    text += advance();
    if (peek() == '+' || peek() == '-') text += advance();
    while (!at_end() && is_digit(buf_[pos_])) text += advance();
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out.value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ParseError("malformed number '" + text + "'", source_name_,
                     out.line, out.column);
  }
}

}  // namespace parallax::qasm
