#include "qasm/ast.hpp"

#include <cmath>
#include <stdexcept>

namespace parallax::qasm {

double Expr::eval(const std::vector<double>& params) const {
  switch (kind) {
    case Kind::kNumber:
      return number;
    case Kind::kParam:
      return params.at(static_cast<std::size_t>(param_index));
    case Kind::kNegate:
      return -lhs->eval(params);
    case Kind::kAdd:
      return lhs->eval(params) + rhs->eval(params);
    case Kind::kSub:
      return lhs->eval(params) - rhs->eval(params);
    case Kind::kMul:
      return lhs->eval(params) * rhs->eval(params);
    case Kind::kDiv:
      return lhs->eval(params) / rhs->eval(params);
    case Kind::kPow:
      return std::pow(lhs->eval(params), rhs->eval(params));
    case Kind::kCall: {
      const double v = lhs->eval(params);
      if (func == "sin") return std::sin(v);
      if (func == "cos") return std::cos(v);
      if (func == "tan") return std::tan(v);
      if (func == "exp") return std::exp(v);
      if (func == "ln") return std::log(v);
      if (func == "sqrt") return std::sqrt(v);
      throw std::runtime_error("unknown function: " + func);
    }
  }
  throw std::logic_error("corrupt expression node");
}

}  // namespace parallax::qasm
