// The standard `qelib1.inc` gate library, embedded as QASM source so that
// `include "qelib1.inc"` works without any filesystem dependency — and so
// the parser's own macro machinery defines the standard gates.
#pragma once

#include <string_view>

namespace parallax::qasm {

/// QASM 2.0 source of the standard library (the common qelib1.inc subset
/// plus the aliases QASMBench circuits rely on: p, u, sx, cp, cu, rxx, rzz).
[[nodiscard]] std::string_view qelib1_source();

}  // namespace parallax::qasm
