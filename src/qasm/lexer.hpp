// Hand-written lexer for OpenQASM 2.0. Line comments (`//`) are skipped;
// positions are tracked for error reporting.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "qasm/token.hpp"

namespace parallax::qasm {

/// Thrown for any lexical or syntactic error; carries line/column. Messages
/// are formatted "<source>:<line>:<column>: <message>" where <source> is the
/// file path for parse_file / imports and "qasm" for in-memory sources.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  ParseError(const std::string& message, const std::string& source, int line,
             int column);

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes the full source; the result always ends with a kEof token.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace parallax::qasm
