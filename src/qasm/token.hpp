// Token definitions for the OpenQASM 2.0 lexer.
#pragma once

#include <cstdint>
#include <string>

namespace parallax::qasm {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // names, keywords, `pi`
  kNumber,      // integer or real literal
  kString,      // "quoted"
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kLBracket,    // [
  kRBracket,    // ]
  kSemicolon,   // ;
  kComma,       // ,
  kArrow,       // ->
  kEqualEqual,  // ==
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kCaret,       // ^
  kEof,
};

[[nodiscard]] std::string to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier/string content or literal spelling
  double value = 0.0;   // numeric value for kNumber
  int line = 0;
  int column = 0;
};

}  // namespace parallax::qasm
