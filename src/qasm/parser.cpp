#include "qasm/parser.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "qasm/stream_parser.hpp"

namespace parallax::qasm {

ParseResult parse(std::string_view source, std::string name) {
  ViewStreamBuf buf(source);
  std::istream in(&buf);
  StreamParser parser(in);
  CircuitBuilder builder;
  const StreamTotals totals = parser.run(builder);
  return ParseResult{builder.take(std::move(name), totals), totals.n_clbits};
}

ParseResult parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  StreamParser parser(in, path);
  CircuitBuilder builder;
  const StreamTotals totals = parser.run(builder);
  return ParseResult{
      builder.take(std::filesystem::path(path).stem().string(), totals),
      totals.n_clbits};
}

}  // namespace parallax::qasm
