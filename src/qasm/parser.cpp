#include "qasm/parser.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <numbers>
#include <sstream>
#include <utility>

#include "qasm/ast.hpp"
#include "qasm/stdgates.hpp"

namespace parallax::qasm {

namespace {

struct Register {
  std::int32_t offset = 0;  // first flat index
  std::int32_t size = 0;
};

/// A qubit argument at a call site: a whole register or one element.
struct QubitArg {
  std::int32_t base = 0;   // flat index of element, or register offset
  std::int32_t count = 1;  // 1 for indexed, register size for whole-register

  [[nodiscard]] std::int32_t at(std::int32_t i) const noexcept {
    return count == 1 ? base : base + i;
  }
};

class Parser {
 public:
  Parser(std::string_view source, std::string name)
      : tokens_(tokenize(source)) {
    circuit_name_ = std::move(name);
  }

  ParseResult run() {
    parse_header();
    while (!check(TokenKind::kEof)) parse_statement();
    circuit::Circuit circuit(n_qubits_, circuit_name_);
    circuit.replace_gates(std::move(gates_));
    return ParseResult{std::move(circuit), n_clbits_};
  }

 private:
  // --- token plumbing -----------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }
  [[nodiscard]] bool check_ident(std::string_view text) const {
    return peek().kind == TokenKind::kIdentifier && peek().text == text;
  }

  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (!check(kind)) {
      throw ParseError("expected " + what + ", got " + to_string(peek().kind) +
                           (peek().text.empty() ? "" : " '" + peek().text + "'"),
                       peek().line, peek().column);
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }

  // --- top level -----------------------------------------------------------
  void parse_header() {
    // The OPENQASM header is optional in practice (some emitted files omit
    // it); accept and validate it when present.
    if (check_ident("OPENQASM")) {
      advance();
      const Token& version = expect(TokenKind::kNumber, "version number");
      if (version.value < 2.0 || version.value >= 3.0) {
        throw ParseError("unsupported OPENQASM version " + version.text,
                         version.line, version.column);
      }
      expect(TokenKind::kSemicolon, "';'");
    }
  }

  void parse_statement() {
    if (check_ident("include")) return parse_include();
    if (check_ident("qreg")) return parse_reg(/*quantum=*/true);
    if (check_ident("creg")) return parse_reg(/*quantum=*/false);
    if (check_ident("gate")) return parse_gate_def(/*opaque=*/false);
    if (check_ident("opaque")) return parse_gate_def(/*opaque=*/true);
    if (check_ident("measure")) return parse_measure();
    if (check_ident("barrier")) return parse_barrier();
    if (check_ident("reset")) fail("reset is not supported");
    if (check_ident("if")) fail("classical control (if) is not supported");
    if (check(TokenKind::kIdentifier)) return parse_gate_call();
    fail("unexpected token");
  }

  void parse_include() {
    advance();  // include
    const Token& file = expect(TokenKind::kString, "file name");
    expect(TokenKind::kSemicolon, "';'");
    if (file.text == "qelib1.inc") {
      if (!qelib_loaded_) {
        load_library(qelib1_source());
        qelib_loaded_ = true;
      }
      return;
    }
    throw ParseError("cannot include '" + file.text +
                         "' (only the embedded qelib1.inc is available)",
                     file.line, file.column);
  }

  void load_library(std::string_view source) {
    // Parse the library with a nested parser sharing the gate-definition
    // table. The library contains only gate definitions.
    Parser lib(source, "qelib1");
    lib.gate_defs_ = std::move(gate_defs_);
    while (!lib.check(TokenKind::kEof)) {
      if (lib.check_ident("gate")) {
        lib.parse_gate_def(false);
      } else if (lib.check_ident("opaque")) {
        lib.parse_gate_def(true);
      } else {
        lib.fail("library may contain only gate definitions");
      }
    }
    gate_defs_ = std::move(lib.gate_defs_);
  }

  void parse_reg(bool quantum) {
    advance();  // qreg / creg
    const Token& name = expect(TokenKind::kIdentifier, "register name");
    expect(TokenKind::kLBracket, "'['");
    const Token& size = expect(TokenKind::kNumber, "register size");
    expect(TokenKind::kRBracket, "']'");
    expect(TokenKind::kSemicolon, "';'");
    const auto n = static_cast<std::int32_t>(size.value);
    if (n <= 0 || size.value != static_cast<double>(n)) {
      throw ParseError("register size must be a positive integer", size.line,
                       size.column);
    }
    auto& table = quantum ? qregs_ : cregs_;
    if (table.count(name.text) || (quantum ? cregs_ : qregs_).count(name.text)) {
      throw ParseError("duplicate register '" + name.text + "'", name.line,
                       name.column);
    }
    auto& total = quantum ? n_qubits_ : n_clbits_;
    table[name.text] = Register{total, n};
    total += n;
  }

  // --- gate definitions ----------------------------------------------------
  void parse_gate_def(bool opaque) {
    advance();  // gate / opaque
    const Token& name = expect(TokenKind::kIdentifier, "gate name");
    GateDef def;
    def.name = name.text;
    def.opaque = opaque;

    std::map<std::string, int> param_slots;
    if (check(TokenKind::kLParen)) {
      advance();
      if (!check(TokenKind::kRParen)) {
        for (;;) {
          const Token& p = expect(TokenKind::kIdentifier, "parameter name");
          param_slots[p.text] = def.n_params++;
          if (!check(TokenKind::kComma)) break;
          advance();
        }
      }
      expect(TokenKind::kRParen, "')'");
    }

    std::map<std::string, int> arg_slots;
    for (;;) {
      const Token& a = expect(TokenKind::kIdentifier, "qubit argument");
      arg_slots[a.text] = def.n_qubits++;
      if (!check(TokenKind::kComma)) break;
      advance();
    }

    if (opaque) {
      expect(TokenKind::kSemicolon, "';'");
    } else {
      expect(TokenKind::kLBrace, "'{'");
      while (!check(TokenKind::kRBrace)) {
        def.body.push_back(parse_body_statement(param_slots, arg_slots));
      }
      expect(TokenKind::kRBrace, "'}'");
    }

    gate_defs_[def.name] = std::move(def);
  }

  BodyStatement parse_body_statement(
      const std::map<std::string, int>& param_slots,
      const std::map<std::string, int>& arg_slots) {
    BodyStatement stmt;
    if (check_ident("barrier")) {
      advance();
      stmt.is_barrier = true;
      // Consume (and ignore) the argument list.
      while (!check(TokenKind::kSemicolon)) advance();
      expect(TokenKind::kSemicolon, "';'");
      return stmt;
    }
    const Token& name = expect(TokenKind::kIdentifier, "gate name");
    stmt.gate_name = name.text;
    if (check(TokenKind::kLParen)) {
      advance();
      if (!check(TokenKind::kRParen)) {
        for (;;) {
          stmt.params.push_back(parse_expr(&param_slots));
          if (!check(TokenKind::kComma)) break;
          advance();
        }
      }
      expect(TokenKind::kRParen, "')'");
    }
    for (;;) {
      const Token& a = expect(TokenKind::kIdentifier, "qubit argument");
      const auto it = arg_slots.find(a.text);
      if (it == arg_slots.end()) {
        throw ParseError("unknown qubit argument '" + a.text + "'", a.line,
                         a.column);
      }
      stmt.argument_slots.push_back(it->second);
      if (!check(TokenKind::kComma)) break;
      advance();
    }
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  // --- parameter expressions ----------------------------------------------
  // Grammar: expr := term (('+'|'-') term)*
  //          term := factor (('*'|'/') factor)*
  //          factor := unary ('^' factor)?          (right-assoc)
  //          unary := '-' unary | primary
  //          primary := number | pi | param | func '(' expr ')' | '(' expr ')'
  ExprPtr parse_expr(const std::map<std::string, int>* param_slots) {
    ExprPtr lhs = parse_term(param_slots);
    while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
      const bool add = check(TokenKind::kPlus);
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = add ? Expr::Kind::kAdd : Expr::Kind::kSub;
      node->lhs = std::move(lhs);
      node->rhs = parse_term(param_slots);
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_term(const std::map<std::string, int>* param_slots) {
    ExprPtr lhs = parse_factor(param_slots);
    while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
      const bool mul = check(TokenKind::kStar);
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = mul ? Expr::Kind::kMul : Expr::Kind::kDiv;
      node->lhs = std::move(lhs);
      node->rhs = parse_factor(param_slots);
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_factor(const std::map<std::string, int>* param_slots) {
    ExprPtr base = parse_unary(param_slots);
    if (check(TokenKind::kCaret)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kPow;
      node->lhs = std::move(base);
      node->rhs = parse_factor(param_slots);  // right associative
      return node;
    }
    return base;
  }

  ExprPtr parse_unary(const std::map<std::string, int>* param_slots) {
    if (check(TokenKind::kMinus)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNegate;
      node->lhs = parse_unary(param_slots);
      return node;
    }
    return parse_primary(param_slots);
  }

  ExprPtr parse_primary(const std::map<std::string, int>* param_slots) {
    if (check(TokenKind::kNumber)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->number = advance().value;
      return node;
    }
    if (check(TokenKind::kLParen)) {
      advance();
      ExprPtr inner = parse_expr(param_slots);
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    if (check(TokenKind::kIdentifier)) {
      const Token& id = advance();
      if (id.text == "pi") {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kNumber;
        node->number = std::numbers::pi;
        return node;
      }
      if (check(TokenKind::kLParen)) {  // function call
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kCall;
        node->func = id.text;
        node->lhs = parse_expr(param_slots);
        expect(TokenKind::kRParen, "')'");
        return node;
      }
      if (param_slots != nullptr) {
        const auto it = param_slots->find(id.text);
        if (it != param_slots->end()) {
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kParam;
          node->param_index = it->second;
          return node;
        }
      }
      throw ParseError("unknown identifier '" + id.text + "' in expression",
                       id.line, id.column);
    }
    fail("expected expression");
  }

  // --- statement-level gate calls -------------------------------------------
  QubitArg parse_qubit_arg() {
    const Token& name = expect(TokenKind::kIdentifier, "register name");
    const auto it = qregs_.find(name.text);
    if (it == qregs_.end()) {
      throw ParseError("unknown quantum register '" + name.text + "'",
                       name.line, name.column);
    }
    const Register& reg = it->second;
    if (check(TokenKind::kLBracket)) {
      advance();
      const Token& idx = expect(TokenKind::kNumber, "index");
      expect(TokenKind::kRBracket, "']'");
      const auto i = static_cast<std::int32_t>(idx.value);
      if (i < 0 || i >= reg.size) {
        throw ParseError("index out of range for '" + name.text + "'",
                         idx.line, idx.column);
      }
      return QubitArg{reg.offset + i, 1};
    }
    return QubitArg{reg.offset, reg.size};
  }

  std::pair<std::int32_t, std::int32_t> parse_clbit_arg() {
    const Token& name = expect(TokenKind::kIdentifier, "register name");
    const auto it = cregs_.find(name.text);
    if (it == cregs_.end()) {
      throw ParseError("unknown classical register '" + name.text + "'",
                       name.line, name.column);
    }
    const Register& reg = it->second;
    if (check(TokenKind::kLBracket)) {
      advance();
      const Token& idx = expect(TokenKind::kNumber, "index");
      expect(TokenKind::kRBracket, "']'");
      return {reg.offset + static_cast<std::int32_t>(idx.value), 1};
    }
    return {reg.offset, reg.size};
  }

  void parse_measure() {
    advance();  // measure
    const QubitArg src = parse_qubit_arg();
    expect(TokenKind::kArrow, "'->'");
    const auto [clbit, clcount] = parse_clbit_arg();
    (void)clbit;
    expect(TokenKind::kSemicolon, "';'");
    if (src.count > 1 && clcount > 1 && src.count != clcount) {
      fail("measure register size mismatch");
    }
    for (std::int32_t i = 0; i < src.count; ++i) {
      gates_.push_back(circuit::Gate::measure(src.at(i)));
    }
  }

  void parse_barrier() {
    advance();  // barrier
    // Arguments are parsed but the barrier applies circuit-wide in our IR
    // (a conservative over-approximation that never reorders illegally).
    if (!check(TokenKind::kSemicolon)) {
      for (;;) {
        (void)parse_qubit_arg();
        if (!check(TokenKind::kComma)) break;
        advance();
      }
    }
    expect(TokenKind::kSemicolon, "';'");
    gates_.push_back(circuit::Gate::barrier());
  }

  void parse_gate_call() {
    const Token& name = advance();
    std::vector<double> params;
    if (check(TokenKind::kLParen)) {
      advance();
      if (!check(TokenKind::kRParen)) {
        for (;;) {
          params.push_back(parse_expr(nullptr)->eval({}));
          if (!check(TokenKind::kComma)) break;
          advance();
        }
      }
      expect(TokenKind::kRParen, "')'");
    }
    std::vector<QubitArg> args;
    for (;;) {
      args.push_back(parse_qubit_arg());
      if (!check(TokenKind::kComma)) break;
      advance();
    }
    expect(TokenKind::kSemicolon, "';'");

    // QASM2 broadcasting: whole registers iterate in lockstep; sizes of all
    // whole-register arguments must match.
    std::int32_t broadcast = 1;
    for (const QubitArg& a : args) {
      if (a.count > 1) {
        if (broadcast != 1 && broadcast != a.count) {
          throw ParseError("mismatched register sizes in gate call",
                           name.line, name.column);
        }
        broadcast = a.count;
      }
    }
    for (std::int32_t i = 0; i < broadcast; ++i) {
      std::vector<std::int32_t> qubits;
      qubits.reserve(args.size());
      for (const QubitArg& a : args) qubits.push_back(a.at(i));
      apply_gate(name, params, qubits, /*depth=*/0);
    }
  }

  // --- macro expansion -------------------------------------------------------
  void apply_gate(const Token& site, const std::vector<double>& params,
                  const std::vector<std::int32_t>& qubits, int depth) {
    if (depth > 64) {
      throw ParseError("gate expansion too deep (recursive definition?)",
                       site.line, site.column);
    }
    const std::string& name = site.text;

    auto need = [&](std::size_t n_params, std::size_t n_qubits) {
      if (params.size() != n_params || qubits.size() != n_qubits) {
        throw ParseError("wrong arity for gate '" + name + "'", site.line,
                         site.column);
      }
    };

    // Builtins.
    if (name == "U") {
      need(3, 1);
      gates_.push_back(
          circuit::Gate::u3(qubits[0], params[0], params[1], params[2]));
      return;
    }
    if (name == "CX") {
      need(0, 2);
      emit_cx(qubits[0], qubits[1]);
      return;
    }
    // Native-gate interception: cz and swap map 1:1 onto the hardware IR, so
    // expanding their qelib1 macro bodies would only add cancellable H pairs.
    if (name == "cz" && gate_defs_.count(name)) {
      need(0, 2);
      gates_.push_back(circuit::Gate::cz(qubits[0], qubits[1]));
      return;
    }
    if (name == "swap" && gate_defs_.count(name)) {
      need(0, 2);
      gates_.push_back(circuit::Gate::swap(qubits[0], qubits[1]));
      return;
    }

    const auto it = gate_defs_.find(name);
    if (it == gate_defs_.end()) {
      throw ParseError("unknown gate '" + name + "'", site.line, site.column);
    }
    const GateDef& def = it->second;
    if (def.opaque) {
      throw ParseError("cannot expand opaque gate '" + name + "'", site.line,
                       site.column);
    }
    if (static_cast<int>(params.size()) != def.n_params ||
        static_cast<int>(qubits.size()) != def.n_qubits) {
      throw ParseError("wrong arity for gate '" + name + "'", site.line,
                       site.column);
    }
    for (const BodyStatement& stmt : def.body) {
      if (stmt.is_barrier) continue;  // intra-macro barriers are ignored
      std::vector<double> sub_params;
      sub_params.reserve(stmt.params.size());
      for (const ExprPtr& e : stmt.params) sub_params.push_back(e->eval(params));
      std::vector<std::int32_t> sub_qubits;
      sub_qubits.reserve(stmt.argument_slots.size());
      for (int slot : stmt.argument_slots) {
        sub_qubits.push_back(qubits[static_cast<std::size_t>(slot)]);
      }
      Token sub_site = site;  // keep source location for error messages
      sub_site.text = stmt.gate_name;
      apply_gate(sub_site, sub_params, sub_qubits, depth + 1);
    }
  }

  void emit_cx(std::int32_t control, std::int32_t target) {
    constexpr double kPi = std::numbers::pi;
    gates_.push_back(circuit::Gate::u3(target, kPi / 2, 0.0, kPi));  // H
    gates_.push_back(circuit::Gate::cz(control, target));
    gates_.push_back(circuit::Gate::u3(target, kPi / 2, 0.0, kPi));  // H
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string circuit_name_;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  std::map<std::string, GateDef> gate_defs_;
  std::vector<circuit::Gate> gates_;
  std::int32_t n_qubits_ = 0;
  std::int32_t n_clbits_ = 0;
  bool qelib_loaded_ = false;
};

}  // namespace

ParseResult parse(std::string_view source, std::string name) {
  return Parser(source, std::move(name)).run();
}

ParseResult parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), std::filesystem::path(path).stem().string());
}

}  // namespace parallax::qasm
