// Pull-based OpenQASM 2.0 parser: lexes from a buffered std::istream and
// emits fully resolved gate events (register broadcasting, qelib1 and custom
// macro expansion done on the fly) through a visitor interface. Memory stays
// O(gate declarations + registers) no matter how many gates stream through —
// this is the million-gate ingest path. The legacy parse()/parse_file() API
// (parser.hpp) is a thin visitor over this class that collects the events
// into a circuit::Circuit.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "qasm/ast.hpp"
#include "qasm/stream_lexer.hpp"

namespace parallax::qasm {

/// Receives resolved events in program order. Gate events carry flat qubit
/// indices (registers concatenate in declaration order) and fully evaluated
/// parameters; measure and barrier arrive as their circuit::Gate kinds.
class GateStreamVisitor {
 public:
  virtual ~GateStreamVisitor() = default;

  /// A quantum register was declared; `offset` is its first flat index.
  virtual void on_qreg(const std::string& name, std::int32_t offset,
                       std::int32_t size) {
    (void)name, (void)offset, (void)size;
  }
  /// A classical register was declared; `offset` is its first flat index.
  virtual void on_creg(const std::string& name, std::int32_t offset,
                       std::int32_t size) {
    (void)name, (void)offset, (void)size;
  }
  /// One resolved gate (U3/CZ/SWAP/measure/barrier) in program order.
  virtual void on_gate(const circuit::Gate& gate) = 0;
  /// End of input; the totals are final.
  virtual void on_end(std::int32_t n_qubits, std::int32_t n_clbits) {
    (void)n_qubits, (void)n_clbits;
  }
};

/// Totals accumulated over one StreamParser::run().
struct StreamTotals {
  std::int32_t n_qubits = 0;
  std::int32_t n_clbits = 0;
  std::uint64_t n_gates = 0;  // events delivered to on_gate
  std::uint64_t n_bytes = 0;  // source bytes consumed by the lexer
};

/// Visitor that collects the event stream into a whole circuit::Circuit —
/// the bridge from a streaming parse into the in-memory pipeline (DAG,
/// transpile, placement). Only for circuits that should be materialized;
/// callers that just need counts or the interaction graph use their own
/// visitor and stay O(1) in the gate count.
class CircuitBuilder : public GateStreamVisitor {
 public:
  void on_gate(const circuit::Gate& gate) override { gates_.push_back(gate); }

  /// Assembles the circuit after StreamParser::run() returns. The builder is
  /// left empty.
  [[nodiscard]] circuit::Circuit take(std::string name,
                                      const StreamTotals& totals);

 private:
  std::vector<circuit::Gate> gates_;
};

class StreamParser {
 public:
  /// `source_name` prefixes error positions; pass the file path when parsing
  /// a file so errors read "path.qasm:12:7: ...".
  explicit StreamParser(std::istream& in, std::string source_name = "qasm");

  /// Parses the whole stream, delivering events to `visitor`. Throws
  /// ParseError (with source:line:column) on any lexical or syntax error.
  StreamTotals run(GateStreamVisitor& visitor);

 private:
  struct Register {
    std::int32_t offset = 0;  // first flat index
    std::int32_t size = 0;
  };

  /// A qubit argument at a call site: a whole register or one element.
  struct QubitArg {
    std::int32_t base = 0;   // flat index of element, or register offset
    std::int32_t count = 1;  // 1 for indexed, register size for whole-register

    [[nodiscard]] std::int32_t at(std::int32_t i) const noexcept {
      return count == 1 ? base : base + i;
    }
  };

  // --- token plumbing -----------------------------------------------------
  [[nodiscard]] const Token& peek() const noexcept { return current_; }
  [[nodiscard]] bool check(TokenKind kind) const noexcept {
    return current_.kind == kind;
  }
  [[nodiscard]] bool check_ident(std::string_view text) const noexcept {
    return current_.kind == TokenKind::kIdentifier && current_.text == text;
  }
  // advance()/expect() return a reference to an internal slot that is only
  // valid until the next advance; callers that need a token across further
  // parsing copy it into a local Token. skip()/require() are the variants
  // for tokens whose content is discarded — they avoid the slot swap.
  const Token& advance();
  const Token& expect(TokenKind kind, std::string_view what);
  void skip() { lexer_.next(current_); }
  void require(TokenKind kind, std::string_view what);
  [[noreturn]] void mismatch(std::string_view what) const;
  [[noreturn]] void error(const std::string& message, int line,
                          int column) const;
  [[noreturn]] void fail(std::string_view message) const;

  // --- grammar ------------------------------------------------------------
  void parse_header();
  void parse_statement();
  void parse_include();
  void load_library(std::string_view source);
  void parse_reg(bool quantum);
  void parse_gate_def(bool opaque);
  BodyStatement parse_body_statement(
      const std::map<std::string, int>& param_slots,
      const std::map<std::string, int>& arg_slots);
  ExprPtr parse_expr(const std::map<std::string, int>* param_slots);
  ExprPtr parse_term(const std::map<std::string, int>* param_slots);
  ExprPtr parse_factor(const std::map<std::string, int>* param_slots);
  ExprPtr parse_unary(const std::map<std::string, int>* param_slots);
  ExprPtr parse_primary(const std::map<std::string, int>* param_slots);
  double parse_const_expr();
  double const_expr_tail(double lhs);
  double parse_const_term();
  double const_term_tail(double lhs);
  double parse_const_factor();
  double const_factor_tail(double base);
  double parse_const_unary();
  double parse_const_primary();
  QubitArg parse_qubit_arg();
  std::pair<std::int32_t, std::int32_t> parse_clbit_arg();
  void parse_measure();
  void parse_barrier();
  void parse_gate_call();
  void emit(const circuit::Gate& gate);
  void emit_cx(std::int32_t control, std::int32_t target);

  // --- flattened macro expansion --------------------------------------------
  // A gate definition is expanded once, at first use, into a flat list of
  // primitive ops whose parameter expressions are rewritten over the
  // definition's own formals and constant-folded. Per call site this reduces
  // macro application to: evaluate the non-constant expressions, map formal
  // qubit slots to flat indices, emit.
  struct FlatOp {
    enum class Kind : unsigned char { kU3, kCZ, kSwap };
    Kind kind = Kind::kU3;
    std::int32_t q0 = 0;  // formal qubit slot
    std::int32_t q1 = 0;  // second slot for kCZ/kSwap
    double c[3] = {0.0, 0.0, 0.0};  // folded parameter values
    const Expr* e[3] = {nullptr, nullptr, nullptr};  // non-null if unfolded
  };
  struct FlatDef {
    int n_params = 0;
    int n_qubits = 0;
    std::vector<FlatOp> ops;
    std::vector<ExprPtr> owned;  // storage for the ops' expressions
  };

  const FlatDef& flat_def(const std::string& name, int line, int column);
  void flatten_into(int line, int column, const GateDef& def,
                    const std::vector<const Expr*>& bindings,
                    const std::vector<std::int32_t>& slots, int depth,
                    FlatDef& out);
  void push_u3_op(const std::vector<const Expr*>& params, std::int32_t slot,
                  FlatDef& out);

  StreamLexer lexer_;
  Token current_;
  Token prev_;  // slot advance() hands back; reused to avoid allocation
  GateStreamVisitor* visitor_ = nullptr;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  std::map<std::string, GateDef> gate_defs_;
  std::map<std::string, FlatDef> flat_defs_;
  const FlatDef* last_def_ = nullptr;  // memo for runs of the same gate name
  std::string last_def_name_;
  std::vector<double> params_scratch_;
  std::vector<QubitArg> args_scratch_;
  std::string call_name_;  // gate-call name, reused across statements
  std::int32_t n_qubits_ = 0;
  std::int32_t n_clbits_ = 0;
  std::uint64_t n_gates_ = 0;
  bool qelib_loaded_ = false;
  // True once a gate of that name is defined; avoids a definition-table
  // lookup per cz/swap call (the dominant statement kind in real corpora).
  bool cz_is_native_ = false;
  bool swap_is_native_ = false;
};

}  // namespace parallax::qasm
