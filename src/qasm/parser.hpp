// Whole-circuit convenience API over the streaming front end
// (qasm::StreamParser): collects the resolved event stream into a flat
// circuit::Circuit in the {U3, CZ, SWAP, measure, barrier} representation.
// Custom `gate` macros are fully expanded; the native cz/swap idioms from
// qelib1 are recognized and kept as native gates rather than re-decomposed.
// Callers that must not materialize the whole gate list (million-gate
// corpora) should drive StreamParser with their own visitor instead.
//
// Supported: OPENQASM header, include "qelib1.inc" (embedded), qreg/creg,
// gate definitions with parameter expressions, gate calls with QASM2
// register broadcasting, U/CX builtins, measure, barrier.
// Rejected with ParseError: opaque-gate instantiation, reset, if().
#pragma once

#include <string>
#include <string_view>

#include "circuit/circuit.hpp"
#include "qasm/lexer.hpp"

namespace parallax::qasm {

struct ParseResult {
  circuit::Circuit circuit;
  int n_classical_bits = 0;
};

/// Parses QASM source text. `name` becomes the circuit name.
[[nodiscard]] ParseResult parse(std::string_view source,
                                std::string name = "");

/// Reads and parses a .qasm file; the file stem becomes the circuit name.
/// Throws std::runtime_error if the file cannot be read, ParseError on
/// syntax errors.
[[nodiscard]] ParseResult parse_file(const std::string& path);

}  // namespace parallax::qasm
