// Streaming lexer for OpenQASM 2.0: pulls bytes from a std::istream through
// a fixed refill buffer and produces one token at a time, so lexing a
// multi-hundred-MB file needs O(buffer + current token) memory. `tokenize`
// (lexer.hpp) and both parsers are thin layers over this class.
#pragma once

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "qasm/token.hpp"

namespace parallax::qasm {

/// Read-only streambuf over caller-owned bytes; lets in-memory sources run
/// through the streaming front end without copying.
class ViewStreamBuf final : public std::streambuf {
 public:
  explicit ViewStreamBuf(std::string_view view) {
    auto* base = const_cast<char*>(view.data());
    setg(base, base, base + view.size());
  }
};

class StreamLexer {
 public:
  static constexpr std::size_t kBufferSize = std::size_t{1} << 18;

  /// `source_name` prefixes error positions ("file.qasm:3:7: ...").
  StreamLexer(std::istream& in, std::string source_name);

  /// Fills `out` with the next token, reusing its string capacity (the hot
  /// interface: steady-state lexing performs no allocations). Returns kEof
  /// forever once input is exhausted. Throws ParseError on lexical errors.
  void next(Token& out);

  /// Convenience wrapper returning a fresh token.
  [[nodiscard]] Token next() {
    Token out;
    next(out);
    return out;
  }

  [[nodiscard]] const std::string& source_name() const noexcept {
    return source_name_;
  }
  /// Total bytes pulled from the underlying stream so far.
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

 private:
  [[nodiscard]] bool at_end() { return pos_ >= end_ && !refill(); }
  bool refill();
  [[nodiscard]] char peek(std::size_t ahead = 0);
  char advance();
  void skip_whitespace_and_comments();
  void next_token(Token& out);
  void lex_number(Token& out);

  std::streambuf* src_;
  std::string source_name_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace parallax::qasm
