#include "qasm/lexer.hpp"

#include <cctype>
#include <charconv>

namespace parallax::qasm {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error("qasm:" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      tokens.push_back(next_token());
    }
    tokens.push_back(Token{TokenKind::kEof, "", 0.0, line_, column_});
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      break;
    }
  }

  Token next_token() {
    const int line = line_;
    const int column = column_;
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (!at_end() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        text += advance();
      }
      return {TokenKind::kIdentifier, std::move(text), 0.0, line, column};
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(line, column);
    }

    if (c == '"') {
      advance();
      std::string text;
      while (!at_end() && peek() != '"') text += advance();
      if (at_end()) throw ParseError("unterminated string", line, column);
      advance();  // closing quote
      return {TokenKind::kString, std::move(text), 0.0, line, column};
    }

    advance();
    auto simple = [&](TokenKind kind, const char* text) {
      return Token{kind, text, 0.0, line, column};
    };
    switch (c) {
      case '(': return simple(TokenKind::kLParen, "(");
      case ')': return simple(TokenKind::kRParen, ")");
      case '{': return simple(TokenKind::kLBrace, "{");
      case '}': return simple(TokenKind::kRBrace, "}");
      case '[': return simple(TokenKind::kLBracket, "[");
      case ']': return simple(TokenKind::kRBracket, "]");
      case ';': return simple(TokenKind::kSemicolon, ";");
      case ',': return simple(TokenKind::kComma, ",");
      case '+': return simple(TokenKind::kPlus, "+");
      case '*': return simple(TokenKind::kStar, "*");
      case '/': return simple(TokenKind::kSlash, "/");
      case '^': return simple(TokenKind::kCaret, "^");
      case '-':
        if (peek() == '>') {
          advance();
          return simple(TokenKind::kArrow, "->");
        }
        return simple(TokenKind::kMinus, "-");
      case '=':
        if (peek() == '=') {
          advance();
          return simple(TokenKind::kEqualEqual, "==");
        }
        throw ParseError("unexpected '='", line, column);
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line, column);
    }
  }

  Token lex_number(int line, int column) {
    std::string text;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) ||
            peek() == '.')) {
      text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      text += advance();
      if (peek() == '+' || peek() == '-') text += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw ParseError("malformed number '" + text + "'", line, column);
    }
    return {TokenKind::kNumber, std::move(text), value, line, column};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEqualEqual: return "'=='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace parallax::qasm
