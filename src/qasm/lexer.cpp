#include "qasm/lexer.hpp"

#include "qasm/stream_lexer.hpp"

namespace parallax::qasm {

ParseError::ParseError(const std::string& message, int line, int column)
    : ParseError(message, "qasm", line, column) {}

ParseError::ParseError(const std::string& message, const std::string& source,
                       int line, int column)
    : std::runtime_error(source + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEqualEqual: return "'=='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  ViewStreamBuf buf(source);
  std::istream in(&buf);
  StreamLexer lexer(in, "qasm");
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(lexer.next());
    if (tokens.back().kind == TokenKind::kEof) break;
  }
  return tokens;
}

}  // namespace parallax::qasm
