#include "qasm/stream_parser.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "qasm/lexer.hpp"
#include "qasm/stdgates.hpp"

namespace parallax::qasm {

namespace {

// Functions Expr::eval can apply; checked at parse time so a bad call site
// is reported with its position instead of failing at first macro expansion.
bool is_known_function(const std::string& name) {
  return name == "sin" || name == "cos" || name == "tan" || name == "exp" ||
         name == "ln" || name == "sqrt";
}

double apply_function(const std::string& name, double v) {
  if (name == "sin") return std::sin(v);
  if (name == "cos") return std::cos(v);
  if (name == "tan") return std::tan(v);
  if (name == "exp") return std::exp(v);
  if (name == "ln") return std::log(v);
  return std::sqrt(v);  // validated against is_known_function by the caller
}

ExprPtr clone_expr(const Expr& e) {
  auto node = std::make_unique<Expr>();
  node->kind = e.kind;
  node->number = e.number;
  node->param_index = e.param_index;
  node->func = e.func;
  if (e.lhs) node->lhs = clone_expr(*e.lhs);
  if (e.rhs) node->rhs = clone_expr(*e.rhs);
  return node;
}

/// Rewrites formal-parameter references through `bindings`, producing an
/// expression over the bindings' own formals.
ExprPtr substitute_expr(const Expr& e, const std::vector<const Expr*>& bindings) {
  if (e.kind == Expr::Kind::kParam) {
    return clone_expr(*bindings.at(static_cast<std::size_t>(e.param_index)));
  }
  auto node = std::make_unique<Expr>();
  node->kind = e.kind;
  node->number = e.number;
  node->param_index = e.param_index;
  node->func = e.func;
  if (e.lhs) node->lhs = substitute_expr(*e.lhs, bindings);
  if (e.rhs) node->rhs = substitute_expr(*e.rhs, bindings);
  return node;
}

bool has_param(const Expr& e) {
  if (e.kind == Expr::Kind::kParam) return true;
  if (e.lhs && has_param(*e.lhs)) return true;
  return e.rhs && has_param(*e.rhs);
}

}  // namespace

circuit::Circuit CircuitBuilder::take(std::string name,
                                      const StreamTotals& totals) {
  circuit::Circuit circuit(totals.n_qubits, std::move(name));
  circuit.replace_gates(std::move(gates_));
  gates_.clear();
  return circuit;
}

StreamParser::StreamParser(std::istream& in, std::string source_name)
    : lexer_(in, std::move(source_name)) {
  lexer_.next(current_);
}

StreamTotals StreamParser::run(GateStreamVisitor& visitor) {
  visitor_ = &visitor;
  parse_header();
  while (!check(TokenKind::kEof)) parse_statement();
  visitor.on_end(n_qubits_, n_clbits_);
  visitor_ = nullptr;
  return StreamTotals{n_qubits_, n_clbits_, n_gates_, lexer_.bytes_read()};
}

// --- token plumbing ---------------------------------------------------------

const Token& StreamParser::advance() {
  if (current_.kind == TokenKind::kEof) return current_;
  std::swap(current_, prev_);
  lexer_.next(current_);
  return prev_;
}

const Token& StreamParser::expect(TokenKind kind, std::string_view what) {
  if (!check(kind)) mismatch(what);
  return advance();
}

void StreamParser::require(TokenKind kind, std::string_view what) {
  if (!check(kind)) mismatch(what);
  if (current_.kind != TokenKind::kEof) skip();
}

void StreamParser::mismatch(std::string_view what) const {
  error("expected " + std::string(what) + ", got " +
            to_string(current_.kind) +
            (current_.text.empty() ? "" : " '" + current_.text + "'"),
        current_.line, current_.column);
}

void StreamParser::error(const std::string& message, int line,
                         int column) const {
  throw ParseError(message, lexer_.source_name(), line, column);
}

void StreamParser::fail(std::string_view message) const {
  std::string msg(message);
  if (current_.kind != TokenKind::kEof && !current_.text.empty()) {
    msg += " at '" + current_.text + "'";
  }
  error(msg, current_.line, current_.column);
}

// --- top level ---------------------------------------------------------------

void StreamParser::parse_header() {
  // The OPENQASM header is optional in practice (some emitted files omit
  // it); accept and validate it when present.
  if (check_ident("OPENQASM")) {
    skip();
    const Token version = expect(TokenKind::kNumber, "version number");
    if (version.value < 2.0 || version.value >= 3.0) {
      error("unsupported OPENQASM version " + version.text, version.line,
            version.column);
    }
    require(TokenKind::kSemicolon, "';'");
  }
}

void StreamParser::parse_statement() {
  if (check(TokenKind::kIdentifier)) {
    // Dispatch on the first character before comparing whole keywords: in a
    // million-gate file nearly every statement is a gate call, and this keeps
    // the common path to one switch plus at most two short compares.
    switch (current_.text[0]) {
      case 'i':
        if (check_ident("include")) return parse_include();
        if (check_ident("if")) fail("classical control (if) is not supported");
        break;
      case 'q':
        if (check_ident("qreg")) return parse_reg(/*quantum=*/true);
        break;
      case 'c':
        if (check_ident("creg")) return parse_reg(/*quantum=*/false);
        break;
      case 'g':
        if (check_ident("gate")) return parse_gate_def(/*opaque=*/false);
        break;
      case 'o':
        if (check_ident("opaque")) return parse_gate_def(/*opaque=*/true);
        break;
      case 'm':
        if (check_ident("measure")) return parse_measure();
        break;
      case 'b':
        if (check_ident("barrier")) return parse_barrier();
        break;
      case 'r':
        if (check_ident("reset")) fail("reset is not supported");
        break;
      default:
        break;
    }
    return parse_gate_call();
  }
  fail("unexpected token");
}

void StreamParser::parse_include() {
  skip();  // include
  const Token file = expect(TokenKind::kString, "file name");
  require(TokenKind::kSemicolon, "';'");
  if (file.text == "qelib1.inc") {
    if (!qelib_loaded_) {
      load_library(qelib1_source());
      qelib_loaded_ = true;
    }
    return;
  }
  error("cannot include '" + file.text +
            "' (only the embedded qelib1.inc is available)",
        file.line, file.column);
}

void StreamParser::load_library(std::string_view source) {
  // Parse the library with a nested parser sharing the gate-definition
  // table. The library contains only gate definitions.
  ViewStreamBuf buf(source);
  std::istream in(&buf);
  StreamParser lib(in, "qelib1");
  lib.gate_defs_ = std::move(gate_defs_);
  while (!lib.check(TokenKind::kEof)) {
    if (lib.check_ident("gate")) {
      lib.parse_gate_def(false);
    } else if (lib.check_ident("opaque")) {
      lib.parse_gate_def(true);
    } else {
      lib.fail("library may contain only gate definitions");
    }
  }
  gate_defs_ = std::move(lib.gate_defs_);
  cz_is_native_ |= lib.cz_is_native_;
  swap_is_native_ |= lib.swap_is_native_;
  flat_defs_.clear();
  last_def_ = nullptr;
}

void StreamParser::parse_reg(bool quantum) {
  skip();  // qreg / creg
  const Token name = expect(TokenKind::kIdentifier, "register name");
  require(TokenKind::kLBracket, "'['");
  const Token size = expect(TokenKind::kNumber, "register size");
  require(TokenKind::kRBracket, "']'");
  require(TokenKind::kSemicolon, "';'");
  const auto n = static_cast<std::int32_t>(size.value);
  if (n <= 0 || size.value != static_cast<double>(n)) {
    error("register size must be a positive integer", size.line, size.column);
  }
  auto& table = quantum ? qregs_ : cregs_;
  if (table.count(name.text) || (quantum ? cregs_ : qregs_).count(name.text)) {
    error("duplicate register '" + name.text + "'", name.line, name.column);
  }
  auto& total = quantum ? n_qubits_ : n_clbits_;
  table[name.text] = Register{total, n};
  total += n;
  if (visitor_ != nullptr) {
    if (quantum) {
      visitor_->on_qreg(name.text, total - n, n);
    } else {
      visitor_->on_creg(name.text, total - n, n);
    }
  }
}

// --- gate definitions --------------------------------------------------------

void StreamParser::parse_gate_def(bool opaque) {
  skip();  // gate / opaque
  const Token name = expect(TokenKind::kIdentifier, "gate name");
  GateDef def;
  def.name = name.text;
  def.opaque = opaque;

  std::map<std::string, int> param_slots;
  if (check(TokenKind::kLParen)) {
    skip();
    if (!check(TokenKind::kRParen)) {
      for (;;) {
        const Token p = expect(TokenKind::kIdentifier, "parameter name");
        param_slots[p.text] = def.n_params++;
        if (!check(TokenKind::kComma)) break;
        skip();
      }
    }
    require(TokenKind::kRParen, "')'");
  }

  std::map<std::string, int> arg_slots;
  for (;;) {
    const Token a = expect(TokenKind::kIdentifier, "qubit argument");
    arg_slots[a.text] = def.n_qubits++;
    if (!check(TokenKind::kComma)) break;
    skip();
  }

  if (opaque) {
    require(TokenKind::kSemicolon, "';'");
  } else {
    require(TokenKind::kLBrace, "'{'");
    while (!check(TokenKind::kRBrace)) {
      def.body.push_back(parse_body_statement(param_slots, arg_slots));
    }
    require(TokenKind::kRBrace, "'}'");
  }

  if (def.name == "cz") cz_is_native_ = true;
  if (def.name == "swap") swap_is_native_ = true;
  gate_defs_[def.name] = std::move(def);
  // A (re)definition can change what an already-flattened gate expands to.
  flat_defs_.clear();
  last_def_ = nullptr;
}

BodyStatement StreamParser::parse_body_statement(
    const std::map<std::string, int>& param_slots,
    const std::map<std::string, int>& arg_slots) {
  BodyStatement stmt;
  if (check_ident("barrier")) {
    skip();
    stmt.is_barrier = true;
    // Consume (and ignore) the argument list.
    while (!check(TokenKind::kSemicolon) && !check(TokenKind::kEof)) skip();
    require(TokenKind::kSemicolon, "';'");
    return stmt;
  }
  const Token name = expect(TokenKind::kIdentifier, "gate name");
  stmt.gate_name = name.text;
  if (check(TokenKind::kLParen)) {
    skip();
    if (!check(TokenKind::kRParen)) {
      for (;;) {
        stmt.params.push_back(parse_expr(&param_slots));
        if (!check(TokenKind::kComma)) break;
        skip();
      }
    }
    require(TokenKind::kRParen, "')'");
  }
  for (;;) {
    const Token a = expect(TokenKind::kIdentifier, "qubit argument");
    const auto it = arg_slots.find(a.text);
    if (it == arg_slots.end()) {
      error("unknown qubit argument '" + a.text + "'", a.line, a.column);
    }
    stmt.argument_slots.push_back(it->second);
    if (!check(TokenKind::kComma)) break;
    skip();
  }
  require(TokenKind::kSemicolon, "';'");
  return stmt;
}

// --- parameter expressions ---------------------------------------------------
// Grammar: expr := term (('+'|'-') term)*
//          term := factor (('*'|'/') factor)*
//          factor := unary ('^' factor)?          (right-assoc)
//          unary := '-' unary | primary
//          primary := number | pi | param | func '(' expr ')' | '(' expr ')'

ExprPtr StreamParser::parse_expr(
    const std::map<std::string, int>* param_slots) {
  ExprPtr lhs = parse_term(param_slots);
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const bool add = check(TokenKind::kPlus);
    skip();
    auto node = std::make_unique<Expr>();
    node->kind = add ? Expr::Kind::kAdd : Expr::Kind::kSub;
    node->lhs = std::move(lhs);
    node->rhs = parse_term(param_slots);
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr StreamParser::parse_term(
    const std::map<std::string, int>* param_slots) {
  ExprPtr lhs = parse_factor(param_slots);
  while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
    const bool mul = check(TokenKind::kStar);
    skip();
    auto node = std::make_unique<Expr>();
    node->kind = mul ? Expr::Kind::kMul : Expr::Kind::kDiv;
    node->lhs = std::move(lhs);
    node->rhs = parse_factor(param_slots);
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr StreamParser::parse_factor(
    const std::map<std::string, int>* param_slots) {
  ExprPtr base = parse_unary(param_slots);
  if (check(TokenKind::kCaret)) {
    skip();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kPow;
    node->lhs = std::move(base);
    node->rhs = parse_factor(param_slots);  // right associative
    return node;
  }
  return base;
}

ExprPtr StreamParser::parse_unary(
    const std::map<std::string, int>* param_slots) {
  if (check(TokenKind::kMinus)) {
    skip();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kNegate;
    node->lhs = parse_unary(param_slots);
    return node;
  }
  return parse_primary(param_slots);
}

ExprPtr StreamParser::parse_primary(
    const std::map<std::string, int>* param_slots) {
  if (check(TokenKind::kNumber)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kNumber;
    node->number = advance().value;
    return node;
  }
  if (check(TokenKind::kLParen)) {
    skip();
    ExprPtr inner = parse_expr(param_slots);
    require(TokenKind::kRParen, "')'");
    return inner;
  }
  if (check(TokenKind::kIdentifier)) {
    const Token id = advance();
    if (id.text == "pi") {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->number = std::numbers::pi;
      return node;
    }
    if (check(TokenKind::kLParen)) {  // function call
      skip();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kCall;
      node->func = id.text;
      node->lhs = parse_expr(param_slots);
      require(TokenKind::kRParen, "')'");
      if (!is_known_function(node->func)) {
        error("unknown function '" + node->func + "'", id.line, id.column);
      }
      return node;
    }
    if (param_slots != nullptr) {
      const auto it = param_slots->find(id.text);
      if (it != param_slots->end()) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kParam;
        node->param_index = it->second;
        return node;
      }
    }
    error("unknown identifier '" + id.text + "' in expression", id.line,
          id.column);
  }
  fail("expected expression");
}

// Statement-level parameter expressions contain no formal parameters, so
// they are evaluated inline while parsing — no tree is built. Grammar and
// error behaviour mirror parse_expr(nullptr).

double StreamParser::parse_const_expr() {
  // Fast path: a bare numeric literal, the overwhelmingly common shape of a
  // statement-level parameter. A literal followed by an operator re-enters
  // the grammar through the tail helpers with the literal as leading factor.
  if (check(TokenKind::kNumber)) {
    const double v = current_.value;
    skip();
    const TokenKind k = current_.kind;
    if (k == TokenKind::kComma || k == TokenKind::kRParen) return v;
    return const_expr_tail(const_term_tail(const_factor_tail(v)));
  }
  return const_expr_tail(parse_const_term());
}

double StreamParser::const_expr_tail(double lhs) {
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const bool add = check(TokenKind::kPlus);
    skip();
    const double rhs = parse_const_term();
    lhs = add ? lhs + rhs : lhs - rhs;
  }
  return lhs;
}

double StreamParser::parse_const_term() {
  return const_term_tail(parse_const_factor());
}

double StreamParser::const_term_tail(double lhs) {
  while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
    const bool mul = check(TokenKind::kStar);
    skip();
    const double rhs = parse_const_factor();
    lhs = mul ? lhs * rhs : lhs / rhs;
  }
  return lhs;
}

double StreamParser::parse_const_factor() {
  return const_factor_tail(parse_const_unary());
}

double StreamParser::const_factor_tail(double base) {
  if (check(TokenKind::kCaret)) {
    skip();
    return std::pow(base, parse_const_factor());  // right associative
  }
  return base;
}

double StreamParser::parse_const_unary() {
  if (check(TokenKind::kMinus)) {
    skip();
    return -parse_const_unary();
  }
  return parse_const_primary();
}

double StreamParser::parse_const_primary() {
  if (check(TokenKind::kNumber)) {
    const double v = current_.value;
    skip();
    return v;
  }
  if (check(TokenKind::kLParen)) {
    skip();
    const double inner = parse_const_expr();
    require(TokenKind::kRParen, "')'");
    return inner;
  }
  if (check(TokenKind::kIdentifier)) {
    if (current_.text == "pi") {
      skip();
      return std::numbers::pi;
    }
    const Token id = advance();
    if (check(TokenKind::kLParen)) {  // function call
      skip();
      const double inner = parse_const_expr();
      require(TokenKind::kRParen, "')'");
      if (!is_known_function(id.text)) {
        error("unknown function '" + id.text + "'", id.line, id.column);
      }
      return apply_function(id.text, inner);
    }
    error("unknown identifier '" + id.text + "' in expression", id.line,
          id.column);
  }
  fail("expected expression");
}

// --- statement-level gate calls ----------------------------------------------

StreamParser::QubitArg StreamParser::parse_qubit_arg() {
  // The register name is looked up before consuming the token, so neither
  // the name nor its position is ever copied on the success path.
  if (!check(TokenKind::kIdentifier)) mismatch("register name");
  const auto it = qregs_.find(current_.text);
  if (it == qregs_.end()) {
    error("unknown quantum register '" + current_.text + "'", current_.line,
          current_.column);
  }
  skip();
  const Register& reg = it->second;
  if (check(TokenKind::kLBracket)) {
    skip();
    if (!check(TokenKind::kNumber)) mismatch("index");
    const auto i = static_cast<std::int32_t>(current_.value);
    const int idx_line = current_.line;
    const int idx_column = current_.column;
    skip();
    require(TokenKind::kRBracket, "']'");
    if (i < 0 || i >= reg.size) {
      error("index out of range for '" + it->first + "'", idx_line,
            idx_column);
    }
    return QubitArg{reg.offset + i, 1};
  }
  return QubitArg{reg.offset, reg.size};
}

std::pair<std::int32_t, std::int32_t> StreamParser::parse_clbit_arg() {
  if (!check(TokenKind::kIdentifier)) mismatch("register name");
  const auto it = cregs_.find(current_.text);
  if (it == cregs_.end()) {
    error("unknown classical register '" + current_.text + "'", current_.line,
          current_.column);
  }
  skip();
  const Register& reg = it->second;
  if (check(TokenKind::kLBracket)) {
    skip();
    if (!check(TokenKind::kNumber)) mismatch("index");
    const auto i = static_cast<std::int32_t>(current_.value);
    const int idx_line = current_.line;
    const int idx_column = current_.column;
    skip();
    require(TokenKind::kRBracket, "']'");
    if (i < 0 || i >= reg.size) {
      error("index out of range for '" + it->first + "'", idx_line,
            idx_column);
    }
    return {reg.offset + i, 1};
  }
  return {reg.offset, reg.size};
}

void StreamParser::parse_measure() {
  const int kw_line = current_.line;
  const int kw_column = current_.column;
  skip();  // measure
  const QubitArg src = parse_qubit_arg();
  require(TokenKind::kArrow, "'->'");
  const auto [clbit, clcount] = parse_clbit_arg();
  (void)clbit;
  require(TokenKind::kSemicolon, "';'");
  if (src.count > 1 && clcount > 1 && src.count != clcount) {
    error("measure register size mismatch", kw_line, kw_column);
  }
  for (std::int32_t i = 0; i < src.count; ++i) {
    emit(circuit::Gate::measure(src.at(i)));
  }
}

void StreamParser::parse_barrier() {
  skip();  // barrier
  // Arguments are parsed but the barrier applies circuit-wide in our IR
  // (a conservative over-approximation that never reorders illegally).
  if (!check(TokenKind::kSemicolon)) {
    for (;;) {
      (void)parse_qubit_arg();
      if (!check(TokenKind::kComma)) break;
      skip();
    }
  }
  require(TokenKind::kSemicolon, "';'");
  emit(circuit::Gate::barrier());
}

void StreamParser::parse_gate_call() {
  call_name_.assign(current_.text);
  const int name_line = current_.line;
  const int name_column = current_.column;
  skip();
  params_scratch_.clear();
  if (check(TokenKind::kLParen)) {
    skip();
    if (!check(TokenKind::kRParen)) {
      for (;;) {
        params_scratch_.push_back(parse_const_expr());
        if (!check(TokenKind::kComma)) break;
        skip();
      }
    }
    require(TokenKind::kRParen, "')'");
  }
  args_scratch_.clear();
  for (;;) {
    args_scratch_.push_back(parse_qubit_arg());
    if (!check(TokenKind::kComma)) break;
    skip();
  }
  require(TokenKind::kSemicolon, "';'");

  // QASM2 broadcasting: whole registers iterate in lockstep; sizes of all
  // whole-register arguments must match.
  std::int32_t broadcast = 1;
  for (const QubitArg& a : args_scratch_) {
    if (a.count > 1) {
      if (broadcast != 1 && broadcast != a.count) {
        error("mismatched register sizes in gate call", name_line,
              name_column);
      }
      broadcast = a.count;
    }
  }

  const std::vector<double>& params = params_scratch_;
  const std::vector<QubitArg>& args = args_scratch_;
  auto need = [&](std::size_t n_params, std::size_t n_qubits) {
    if (params.size() != n_params || args.size() != n_qubits) {
      error("wrong arity for gate '" + call_name_ + "'", name_line,
            name_column);
    }
  };

  // Builtins.
  if (call_name_ == "U") {
    need(3, 1);
    for (std::int32_t i = 0; i < broadcast; ++i) {
      emit(circuit::Gate::u3(args[0].at(i), params[0], params[1], params[2]));
    }
    return;
  }
  if (call_name_ == "CX") {
    need(0, 2);
    for (std::int32_t i = 0; i < broadcast; ++i) {
      emit_cx(args[0].at(i), args[1].at(i));
    }
    return;
  }
  // Native-gate interception: cz and swap map 1:1 onto the hardware IR, so
  // expanding their qelib1 macro bodies would only add cancellable H pairs.
  if (cz_is_native_ && call_name_ == "cz") {
    need(0, 2);
    for (std::int32_t i = 0; i < broadcast; ++i) {
      emit(circuit::Gate::cz(args[0].at(i), args[1].at(i)));
    }
    return;
  }
  if (swap_is_native_ && call_name_ == "swap") {
    need(0, 2);
    for (std::int32_t i = 0; i < broadcast; ++i) {
      emit(circuit::Gate::swap(args[0].at(i), args[1].at(i)));
    }
    return;
  }

  // Runs of the same gate name skip even the flat-definition map lookup.
  if (last_def_ == nullptr || call_name_ != last_def_name_) {
    last_def_ = &flat_def(call_name_, name_line, name_column);
    last_def_name_.assign(call_name_);
  }
  const FlatDef& def = *last_def_;
  if (static_cast<int>(params.size()) != def.n_params ||
      static_cast<int>(args.size()) != def.n_qubits) {
    error("wrong arity for gate '" + call_name_ + "'", name_line, name_column);
  }
  for (std::int32_t i = 0; i < broadcast; ++i) {
    for (const FlatOp& op : def.ops) {
      switch (op.kind) {
        case FlatOp::Kind::kU3: {
          const double theta = op.e[0] ? op.e[0]->eval(params) : op.c[0];
          const double phi = op.e[1] ? op.e[1]->eval(params) : op.c[1];
          const double lambda = op.e[2] ? op.e[2]->eval(params) : op.c[2];
          emit(circuit::Gate::u3(
              args[static_cast<std::size_t>(op.q0)].at(i), theta, phi,
              lambda));
          break;
        }
        case FlatOp::Kind::kCZ:
          emit(circuit::Gate::cz(args[static_cast<std::size_t>(op.q0)].at(i),
                                 args[static_cast<std::size_t>(op.q1)].at(i)));
          break;
        case FlatOp::Kind::kSwap:
          emit(
              circuit::Gate::swap(args[static_cast<std::size_t>(op.q0)].at(i),
                                  args[static_cast<std::size_t>(op.q1)].at(i)));
          break;
      }
    }
  }
}

// --- macro flattening --------------------------------------------------------

const StreamParser::FlatDef& StreamParser::flat_def(const std::string& name,
                                                    int line, int column) {
  const auto cached = flat_defs_.find(name);
  if (cached != flat_defs_.end()) return cached->second;

  const auto it = gate_defs_.find(name);
  if (it == gate_defs_.end()) {
    error("unknown gate '" + name + "'", line, column);
  }
  const GateDef& def = it->second;
  if (def.opaque) {
    error("cannot expand opaque gate '" + name + "'", line, column);
  }

  FlatDef flat;
  flat.n_params = def.n_params;
  flat.n_qubits = def.n_qubits;
  // Identity bindings: the body's formal references stay formal references.
  std::vector<const Expr*> bindings;
  bindings.reserve(static_cast<std::size_t>(def.n_params));
  for (int p = 0; p < def.n_params; ++p) {
    auto id = std::make_unique<Expr>();
    id->kind = Expr::Kind::kParam;
    id->param_index = p;
    bindings.push_back(id.get());
    flat.owned.push_back(std::move(id));
  }
  std::vector<std::int32_t> slots(static_cast<std::size_t>(def.n_qubits));
  std::iota(slots.begin(), slots.end(), 0);
  flatten_into(line, column, def, bindings, slots, /*depth=*/0, flat);
  return flat_defs_.emplace(name, std::move(flat)).first->second;
}

void StreamParser::push_u3_op(const std::vector<const Expr*>& params,
                              std::int32_t slot, FlatDef& out) {
  FlatOp op;
  op.kind = FlatOp::Kind::kU3;
  op.q0 = slot;
  for (std::size_t k = 0; k < 3; ++k) {
    if (has_param(*params[k])) {
      op.e[k] = params[k];
    } else {
      op.c[k] = params[k]->eval({});
    }
  }
  out.ops.push_back(op);
}

void StreamParser::flatten_into(int line, int column, const GateDef& def,
                                const std::vector<const Expr*>& bindings,
                                const std::vector<std::int32_t>& slots,
                                int depth, FlatDef& out) {
  if (depth > 64) {
    error("gate expansion too deep (recursive definition?)", line, column);
  }
  for (const BodyStatement& stmt : def.body) {
    if (stmt.is_barrier) continue;  // intra-macro barriers are ignored

    // Rewrite this statement's parameter expressions over the root formals.
    std::vector<const Expr*> sub_exprs;
    sub_exprs.reserve(stmt.params.size());
    for (const ExprPtr& e : stmt.params) {
      ExprPtr s = substitute_expr(*e, bindings);
      sub_exprs.push_back(s.get());
      out.owned.push_back(std::move(s));
    }
    std::vector<std::int32_t> sub_slots;
    sub_slots.reserve(stmt.argument_slots.size());
    for (int slot : stmt.argument_slots) {
      sub_slots.push_back(slots[static_cast<std::size_t>(slot)]);
    }

    const std::string& gname = stmt.gate_name;
    auto arity = [&](std::size_t n_params, std::size_t n_qubits) {
      if (sub_exprs.size() != n_params || sub_slots.size() != n_qubits) {
        error("wrong arity for gate '" + gname + "'", line, column);
      }
    };

    if (gname == "U") {
      arity(3, 1);
      push_u3_op(sub_exprs, sub_slots[0], out);
      continue;
    }
    if (gname == "CX") {
      arity(0, 2);
      constexpr double kPi = std::numbers::pi;
      FlatOp h;  // H on the target, constant-folded
      h.kind = FlatOp::Kind::kU3;
      h.q0 = sub_slots[1];
      h.c[0] = kPi / 2;
      h.c[2] = kPi;
      FlatOp cz;
      cz.kind = FlatOp::Kind::kCZ;
      cz.q0 = sub_slots[0];
      cz.q1 = sub_slots[1];
      out.ops.push_back(h);
      out.ops.push_back(cz);
      out.ops.push_back(h);
      continue;
    }
    if ((gname == "cz" || gname == "swap") && gate_defs_.count(gname)) {
      arity(0, 2);
      FlatOp op;
      op.kind = gname == "cz" ? FlatOp::Kind::kCZ : FlatOp::Kind::kSwap;
      op.q0 = sub_slots[0];
      op.q1 = sub_slots[1];
      out.ops.push_back(op);
      continue;
    }

    const auto it = gate_defs_.find(gname);
    if (it == gate_defs_.end()) {
      error("unknown gate '" + gname + "'", line, column);
    }
    if (it->second.opaque) {
      error("cannot expand opaque gate '" + gname + "'", line, column);
    }
    if (static_cast<int>(sub_exprs.size()) != it->second.n_params ||
        static_cast<int>(sub_slots.size()) != it->second.n_qubits) {
      error("wrong arity for gate '" + gname + "'", line, column);
    }
    flatten_into(line, column, it->second, sub_exprs, sub_slots, depth + 1,
                 out);
  }
}

void StreamParser::emit(const circuit::Gate& gate) {
  ++n_gates_;
  visitor_->on_gate(gate);
}

void StreamParser::emit_cx(std::int32_t control, std::int32_t target) {
  constexpr double kPi = std::numbers::pi;
  emit(circuit::Gate::u3(target, kPi / 2, 0.0, kPi));  // H
  emit(circuit::Gate::cz(control, target));
  emit(circuit::Gate::u3(target, kPi / 2, 0.0, kPi));  // H
}

}  // namespace parallax::qasm
