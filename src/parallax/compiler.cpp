#include "parallax/compiler.hpp"

#include <functional>

#include "circuit/interaction_graph.hpp"
#include "parallax/aod_selection.hpp"

namespace parallax::compiler {

namespace {
std::uint64_t derive_seed(std::uint64_t master, const std::string& name,
                          std::uint64_t salt) {
  std::uint64_t h = master ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

CompileResult compile(const circuit::Circuit& input,
                      const hardware::HardwareConfig& config,
                      const CompilerOptions& options) {
  if (input.n_qubits() > config.n_atoms()) {
    throw CompileError("circuit '" + input.name() + "' needs " +
                       std::to_string(input.n_qubits()) +
                       " qubits; machine '" + config.name + "' has " +
                       std::to_string(config.n_atoms()) + " atoms");
  }

  CompileResult result;
  result.technique = "parallax";
  result.circuit = options.assume_transpiled
                       ? input
                       : circuit::transpile(input, options.transpile);

  // Step 1: Graphine placement (or the caller's preset).
  const circuit::InteractionGraph graph(result.circuit);
  placement::Topology topology;
  if (options.preset_topology) {
    topology = *options.preset_topology;
  } else {
    placement::GraphineOptions placement_options = options.placement;
    placement_options.seed = derive_seed(options.seed, input.name(), 1);
    topology = placement::graphine_place(graph, placement_options);
  }

  // Step 2: hardware-constraint discretization.
  result.topology = placement::discretize(topology, config, options.discretize);

  // Step 3: AOD qubit selection.
  hardware::Machine machine(config, result.topology);
  const AodSelectionResult selection =
      select_aod_qubits(result.circuit, machine, options.aod_selection);
  result.in_aod = selection.in_aod;

  // Step 4: Algorithm 1 scheduling.
  SchedulerOptions scheduler_options = options.scheduler;
  scheduler_options.shuffle_seed = derive_seed(options.seed, input.name(), 2);
  ScheduleOutput schedule =
      schedule_gates(result.circuit, machine, scheduler_options);

  result.layers = std::move(schedule.layers);
  result.stats = schedule.stats;
  result.runtime_us = schedule.runtime_us;
  return result;
}

}  // namespace parallax::compiler
