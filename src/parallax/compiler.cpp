#include "parallax/compiler.hpp"

#include "technique/registry.hpp"

namespace parallax::compiler {

CompileResult compile(const circuit::Circuit& input,
                      const hardware::HardwareConfig& config,
                      const CompilerOptions& options) {
  return technique::compile("parallax", input, config, options);
}

}  // namespace parallax::compiler
