// Algorithm 1 from the paper: layer-by-layer gate scheduling with AOD
// movement. Per layer it (1) collects one ready gate per qubit from the
// dependency DAG, (2) resolves out-of-range CZs — a single AOD
// move-into-range per layer, trap changes when neither endpoint is mobile or
// the move fails, ejection back to the gate pool otherwise, (3) shuffles the
// layer and ejects Rydberg-blockade conflicts, (4) executes, and (5) returns
// moved atoms to their home configuration (ablatable, Fig. 12).
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "hardware/machine.hpp"
#include "parallax/result.hpp"
#include "util/rng.hpp"

namespace parallax::compiler {

struct SchedulerOptions {
  /// Return AOD atoms to their pre-layer positions after execution
  /// (the paper's default; disabled for the Fig. 12 ablation).
  bool return_home = true;
  /// Recursion budget for the movement engine (paper: 80).
  int max_move_iterations = 80;
  /// Seed for the layer shuffle that prevents starvation (paper line 20).
  std::uint64_t shuffle_seed = 0x5eedULL;
  /// Record atom positions at each layer's execution into Layer::positions,
  /// enabling post-hoc physical validation (parallax/validate.hpp). Off by
  /// default: it is O(layers * qubits) memory.
  bool record_positions = false;
};

struct ScheduleOutput {
  std::vector<Layer> layers;
  CompileStats stats;
  double runtime_us = 0.0;
};

/// Schedules `circuit` on `machine` (atoms already placed, AOD selection
/// done). Mutates machine state as atoms move. The circuit must be in the
/// {U3, CZ, measure, barrier} basis — SWAPs are a baseline-only concept.
[[nodiscard]] ScheduleOutput schedule_gates(const circuit::Circuit& circuit,
                                            hardware::Machine& machine,
                                            const SchedulerOptions& options);

}  // namespace parallax::compiler
