#include "parallax/aod_selection.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "circuit/dag.hpp"

namespace parallax::compiler {

namespace {

/// Blockade interference between two CZ gates at the initial placement: any
/// endpoint of one within the blockade radius of any endpoint of the other.
bool gates_interfere(const hardware::Machine& machine, const circuit::Gate& g1,
                     const circuit::Gate& g2) {
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (geom::distance(machine.position(g1.q[i]),
                         machine.position(g2.q[j])) <
          machine.blockade_radius()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

AodSelectionResult select_aod_qubits(const circuit::Circuit& circuit,
                                     hardware::Machine& machine,
                                     const AodSelectionOptions& options) {
  const auto nq = static_cast<std::size_t>(circuit.n_qubits());
  AodSelectionResult result;
  result.in_aod.assign(nq, 0);
  result.weights.assign(nq, 0.0);

  // --- criterion 1: out-of-range interaction counts -------------------------
  std::vector<double> out_of_range(nq, 0.0);
  std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> oor_pairs;
  for (const circuit::Gate& g : circuit.gates()) {
    if (!g.is_two_qubit()) continue;
    if (machine.within_interaction(g.q[0], g.q[1])) continue;
    out_of_range[static_cast<std::size_t>(g.q[0])] += 1.0;
    out_of_range[static_cast<std::size_t>(g.q[1])] += 1.0;
    ++oor_pairs[{std::min(g.q[0], g.q[1]), std::max(g.q[0], g.q[1])}];
  }
  result.out_of_range_pairs = oor_pairs.size();

  // --- criterion 2: blockade-serialization caused in ASAP layers ------------
  std::vector<double> interference(nq, 0.0);
  for (const auto& layer : circuit::asap_layers(circuit)) {
    std::vector<std::size_t> cz_gates;
    for (std::size_t gi : layer) {
      if (circuit.gate(gi).type == circuit::GateType::kCZ) {
        cz_gates.push_back(gi);
      }
    }
    for (std::size_t i = 0; i < cz_gates.size(); ++i) {
      for (std::size_t j = i + 1; j < cz_gates.size(); ++j) {
        const auto& g1 = circuit.gate(cz_gates[i]);
        const auto& g2 = circuit.gate(cz_gates[j]);
        if (gates_interfere(machine, g1, g2)) {
          for (int k = 0; k < 2; ++k) {
            interference[static_cast<std::size_t>(g1.q[k])] += 1.0;
            interference[static_cast<std::size_t>(g2.q[k])] += 1.0;
          }
        }
      }
    }
  }

  // --- combined weight: 0.99 / 0.01 split (paper Sec. II-C) -----------------
  const double max_oor =
      std::max(1.0, *std::max_element(out_of_range.begin(), out_of_range.end()));
  const double max_intf = std::max(
      1.0, *std::max_element(interference.begin(), interference.end()));
  for (std::size_t q = 0; q < nq; ++q) {
    result.weights[q] =
        options.out_of_range_weight * (out_of_range[q] / max_oor) +
        options.interference_weight * (interference[q] / max_intf);
  }

  // --- greedy selection with pair coverage -----------------------------------
  // Sort candidates by weight; take an atom only while it still covers an
  // out-of-range pair without a mobile endpoint (one AOD endpoint per pair
  // suffices — the paper moves exactly one atom of an out-of-range gate).
  std::vector<std::int32_t> order(nq);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return result.weights[static_cast<std::size_t>(a)] >
                            result.weights[static_cast<std::size_t>(b)];
                   });

  const auto capacity = static_cast<std::size_t>(
      std::min(machine.aod().n_rows(), machine.aod().n_cols()));
  std::map<std::pair<std::int32_t, std::int32_t>, bool> covered;
  for (const auto& [pair, count] : oor_pairs) covered[pair] = false;

  std::vector<std::int32_t> selected;
  for (std::int32_t q : order) {
    if (selected.size() >= capacity) break;
    if (result.weights[static_cast<std::size_t>(q)] <= 0.0) break;
    bool helps = false;
    for (auto& [pair, is_covered] : covered) {
      if (!is_covered && (pair.first == q || pair.second == q)) {
        helps = true;
        break;
      }
    }
    if (!helps) continue;
    selected.push_back(q);
    for (auto& [pair, is_covered] : covered) {
      if (pair.first == q || pair.second == q) is_covered = true;
    }
  }
  for (const auto& [pair, is_covered] : covered) {
    result.uncovered_pairs += is_covered ? 0 : 1;
  }

  if (selected.empty()) return result;

  // --- lift the selected atoms into AOD lines --------------------------------
  // Row indices must increase with y and column indices with x (the
  // non-crossing invariant); assign compactly in sorted order.
  const double gap = machine.aod().min_line_gap();

  std::vector<std::int32_t> by_y = selected;
  std::stable_sort(by_y.begin(), by_y.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return machine.position(a).y < machine.position(b).y;
                   });
  std::vector<std::int32_t> by_x = selected;
  std::stable_sort(by_x.begin(), by_x.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return machine.position(a).x < machine.position(b).x;
                   });

  // The paper's recursive de-collision: shared coordinates get nudged in a
  // fixed direction (up / right), cascading onto subsequent lines.
  std::vector<double> row_coords(by_y.size());
  for (std::size_t i = 0; i < by_y.size(); ++i) {
    row_coords[i] = machine.position(by_y[i]).y;
    if (i > 0 && row_coords[i] < row_coords[i - 1] + gap) {
      row_coords[i] = row_coords[i - 1] + gap;
    }
  }
  std::vector<double> col_coords(by_x.size());
  for (std::size_t i = 0; i < by_x.size(); ++i) {
    col_coords[i] = machine.position(by_x[i]).x;
    if (i > 0 && col_coords[i] < col_coords[i - 1] + gap) {
      col_coords[i] = col_coords[i - 1] + gap;
    }
  }

  // Final (x, y) per selected atom.
  std::map<std::int32_t, geom::Point> target;
  for (std::size_t i = 0; i < by_y.size(); ++i) {
    target[by_y[i]].y = row_coords[i];
  }
  for (std::size_t i = 0; i < by_x.size(); ++i) {
    target[by_x[i]].x = col_coords[i];
  }

  // Lift: row index = rank in y order, column index = rank in x order.
  std::map<std::int32_t, std::int32_t> row_of, col_of;
  for (std::size_t i = 0; i < by_y.size(); ++i) {
    row_of[by_y[i]] = static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < by_x.size(); ++i) {
    col_of[by_x[i]] = static_cast<std::int32_t>(i);
  }
  for (std::int32_t q : selected) {
    machine.assign_to_aod(q, row_of[q], col_of[q]);
    machine.move_aod_atom(q, target[q]);
    result.in_aod[static_cast<std::size_t>(q)] = 1;
  }

  // Separation cleanup: nudges may have created sub-minimum gaps against
  // static atoms; push the AOD atom up (cascading row coordinates) until
  // clear. Bounded by the same recursion budget the paper uses for moves.
  for (std::size_t i = 0; i < by_y.size(); ++i) {
    const std::int32_t q = by_y[i];
    geom::Point p = machine.position(q);
    int budget = 80;
    while (!machine.placement_clear(q, p) && budget-- > 0) {
      p.y += machine.config().min_separation_um / 2.0;
    }
    if (p.y != machine.position(q).y) {
      // Cascade so later rows stay above.
      double floor = p.y;
      machine.move_aod_atom(q, p);
      for (std::size_t j = i + 1; j < by_y.size(); ++j) {
        geom::Point pj = machine.position(by_y[j]);
        if (pj.y < floor + gap) {
          pj.y = floor + gap;
          machine.move_aod_atom(by_y[j], pj);
        }
        floor = machine.position(by_y[j]).y;
      }
    }
  }

  // Park every unassigned line outside the active field, preserving order.
  auto& aod = machine.aod();
  const double park_base =
      machine.grid().extent() + 10.0 * machine.config().min_separation_um;
  {
    int parked = 0;
    for (std::int32_t r = 0; r < aod.n_rows(); ++r) {
      if (aod.row_qubit(r) < 0) {
        aod.set_row_coord(r, park_base + gap * static_cast<double>(parked++));
      }
    }
    parked = 0;
    for (std::int32_t c = 0; c < aod.n_cols(); ++c) {
      if (aod.col_qubit(c) < 0) {
        aod.set_col_coord(c, park_base + gap * static_cast<double>(parked++));
      }
    }
  }
  return result;
}

}  // namespace compiler
