// The recursive AOD movement engine (paper Sec. II-D): moves a mobile atom
// into the Rydberg interaction radius of a partner atom. Obstructions are
// resolved recursively —
//   * AOD atoms inside the minimum-separation zone of the moving atom are
//     pushed away (and their own obstructions are pushed in turn),
//   * AOD lines whose non-crossing order would be violated displace the
//     interfering neighbour lines recursively,
//   * static SLM atoms cannot be displaced; the engine instead picks a
//     different approach point around the partner.
// Recursion is capped at 80 iterations (the paper's hard limit); failure is
// reported so the scheduler can fall back to a 100 us trap change.
#pragma once

#include <cstdint>

#include "hardware/machine.hpp"

namespace parallax::compiler {

struct MoveOutcome {
  bool success = false;
  /// Maximum distance travelled by any single atom in this operation — the
  /// quantity the runtime model charges (all tandem moves overlap in time).
  double max_distance_um = 0.0;
  int displaced_atoms = 0;  // other AOD atoms pushed out of the way
  int iterations = 0;       // recursion budget consumed
};

class MovementEngine {
 public:
  explicit MovementEngine(hardware::Machine& machine, int max_iterations = 80)
      : machine_(&machine), max_iterations_(max_iterations) {}

  /// Moves AOD atom `mover` within the interaction radius of `partner`.
  /// On failure the machine state is restored to the pre-call configuration.
  [[nodiscard]] MoveOutcome move_into_range(std::int32_t mover,
                                            std::int32_t partner);

 private:
  /// Places `q` at `target`, recursively displacing obstructing AOD atoms
  /// and lines. Returns false when the budget runs out or a static atom
  /// blocks the exact spot.
  bool place_atom(std::int32_t q, geom::Point target, int depth);

  /// Pushes the AOD atom `q` radially away from `from` until it clears the
  /// minimum separation, recursing on secondary obstructions.
  bool push_away(std::int32_t q, geom::Point from, int depth);

  /// Resolves AOD line-ordering conflicts for atom q sitting at `target`.
  bool resolve_line_order(std::int32_t q, geom::Point target, int depth);

  /// Moves line `line` (row when is_row) to `coord`, recursively pushing
  /// neighbour lines outward and carrying any occupant atom along.
  bool move_line(bool is_row, std::int32_t line, double coord, int depth);

  /// Pushes the neighbours of `line` out of the way so it can sit at
  /// `coord`; does not move `line` itself.
  bool make_room(bool is_row, std::int32_t line, double coord, int depth);

  void note_move(std::int32_t q, geom::Point from, geom::Point to);

  hardware::Machine* machine_;
  int max_iterations_;
  int iterations_used_ = 0;
  double max_distance_ = 0.0;
  int displaced_ = 0;
};

}  // namespace parallax::compiler
