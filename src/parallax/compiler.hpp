// The Parallax compiler: the paper's four-step pipeline behind one call.
//   Step 1  Graphine annealed placement of the interaction graph.
//   Step 2  Discretization onto the machine's site grid under the minimum-
//           separation constraint.
//   Step 3  AOD qubit selection (one atom per row/column pair).
//   Step 4  Gate + movement scheduling (Algorithm 1).
// Since the pass-pipeline refactor this is a thin front door over the
// "parallax" technique's pipeline (technique::Registry assembles the same
// stages); it remains the convenience entry point for single-technique
// callers. The result carries the layer schedule, movement statistics, and
// the single-shot runtime; pair it with noise::success_probability and
// shots::parallelize for the paper's other metrics.
#pragma once

#include "pipeline/pipeline.hpp"

namespace parallax::compiler {

/// Per-stage options, shared by every technique's pipeline.
using CompilerOptions = pipeline::CompileOptions;

/// Thrown when a circuit cannot be compiled for a machine (e.g. more qubits
/// than atoms).
using CompileError = pipeline::CompileError;

/// Compiles `input` for the machine described by `config` with the Parallax
/// pipeline. Never inserts SWAP gates (the compiled circuit's swap count is
/// zero by construction). Equivalent to technique::compile("parallax", ...).
[[nodiscard]] CompileResult compile(const circuit::Circuit& input,
                                    const hardware::HardwareConfig& config,
                                    const CompilerOptions& options = {});

}  // namespace parallax::compiler
