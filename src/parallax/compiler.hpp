// The Parallax compiler: the paper's four-step pipeline behind one call.
//   Step 1  Graphine annealed placement of the interaction graph.
//   Step 2  Discretization onto the machine's site grid under the minimum-
//           separation constraint.
//   Step 3  AOD qubit selection (one atom per row/column pair).
//   Step 4  Gate + movement scheduling (Algorithm 1).
// The result carries the layer schedule, movement statistics, and the
// single-shot runtime; pair it with noise::success_probability and
// shots::parallelize for the paper's other metrics.
#pragma once

#include <optional>
#include <stdexcept>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "parallax/aod_selection.hpp"
#include "parallax/scheduler.hpp"
#include "placement/discretize.hpp"
#include "placement/graphine.hpp"

namespace parallax::compiler {

struct CompilerOptions {
  circuit::TranspileOptions transpile{};
  placement::GraphineOptions placement{};
  placement::DiscretizeOptions discretize{};
  SchedulerOptions scheduler{};
  AodSelectionOptions aod_selection{};
  /// Input is already in the {U3, CZ} basis; skip transpilation.
  bool assume_transpiled = false;
  /// Pre-computed Graphine placement (the paper's command-line option for
  /// loading earlier results to cut compile time). Skips Step 1.
  std::optional<placement::Topology> preset_topology;
  /// Master seed; placement and shuffle seeds derive from it and the
  /// circuit name, so runs are reproducible per circuit.
  std::uint64_t seed = 0xA77AC5ULL;
};

/// Thrown when a circuit cannot be compiled for a machine (e.g. more qubits
/// than atoms).
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Compiles `input` for the machine described by `config`. Never inserts
/// SWAP gates (the compiled circuit's swap count is zero by construction).
[[nodiscard]] CompileResult compile(const circuit::Circuit& input,
                                    const hardware::HardwareConfig& config,
                                    const CompilerOptions& options = {});

}  // namespace parallax::compiler
