#include "parallax/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "circuit/dag.hpp"
#include "parallax/movement.hpp"

namespace parallax::compiler {

namespace {

double gate_time_us(const circuit::Gate& g,
                    const hardware::HardwareConfig& config) {
  switch (g.type) {
    case circuit::GateType::kU3: return config.u3_time_us;
    case circuit::GateType::kCZ: return config.cz_time_us;
    case circuit::GateType::kSwap: return config.swap_time_us;
    case circuit::GateType::kMeasure: return 0.0;  // readout happens once,
                                                   // post-circuit
    case circuit::GateType::kBarrier: return 0.0;
  }
  return 0.0;
}

/// Blockade interference at current atom positions: two CZ gates cannot run
/// in the same layer if any endpoint of one lies within the blockade radius
/// of an endpoint of the other (paper Fig. 3a).
bool blockade_conflict(const hardware::Machine& machine,
                       const circuit::Gate& g1, const circuit::Gate& g2) {
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (geom::distance(machine.position(g1.q[i]),
                         machine.position(g2.q[j])) <
          machine.blockade_radius()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ScheduleOutput schedule_gates(const circuit::Circuit& circuit,
                              hardware::Machine& machine,
                              const SchedulerOptions& options) {
  if (circuit.swap_count() != 0) {
    throw std::invalid_argument(
        "Parallax scheduler requires a SWAP-free circuit (transpile first)");
  }

  ScheduleOutput output;
  circuit::DependencyTracker dag(circuit);
  MovementEngine mover(machine, options.max_move_iterations);
  util::Rng rng(options.shuffle_seed);
  const auto& config = machine.config();

  machine.save_home();

  while (!dag.done()) {
    Layer layer;
    bool moved_this_layer = false;

    // --- lines 8-11: one ready gate per qubit -------------------------------
    std::vector<std::size_t> candidates;
    for (std::int32_t q = 0; q < circuit.n_qubits(); ++q) {
      const auto next = dag.next_gate(q);
      if (!next || !dag.is_ready(*next)) continue;
      // A two-qubit gate surfaces from both endpoints; keep one copy.
      if (!candidates.empty() &&
          std::find(candidates.begin(), candidates.end(), *next) !=
              candidates.end()) {
        continue;
      }
      candidates.push_back(*next);
    }
    assert(!candidates.empty());  // a non-done DAG always has a ready head

    // --- lines 12-19: movement resolution for out-of-range CZs --------------
    // Trap changes are *recorded* here but only charged (time + error) for
    // gates that survive the blockade filter and execute — an ejected gate
    // retries in a later layer and must not accumulate phantom trap
    // changes. The single physical AOD move is different: it mutates
    // machine state, so the moved gate is pinned into the layer.
    std::vector<std::size_t> accepted;
    std::vector<char> needs_trap_change;  // parallel to `accepted`
    std::size_t moved_gate = static_cast<std::size_t>(-1);
    for (const std::size_t gi : candidates) {
      const circuit::Gate& g = circuit.gate(gi);
      if (g.type != circuit::GateType::kCZ ||
          machine.within_interaction(g.q[0], g.q[1])) {
        accepted.push_back(gi);
        needs_trap_change.push_back(0);
        continue;
      }

      // Prefer moving a mobile endpoint; one move-into-range per layer.
      const bool q0_mobile = machine.atom(g.q[0]).in_aod();
      const bool q1_mobile = machine.atom(g.q[1]).in_aod();
      if ((q0_mobile || q1_mobile) && !moved_this_layer) {
        const std::int32_t mobile = q0_mobile ? g.q[0] : g.q[1];
        const std::int32_t anchor = q0_mobile ? g.q[1] : g.q[0];
        const MoveOutcome move = mover.move_into_range(mobile, anchor);
        if (move.success) {
          moved_this_layer = true;
          moved_gate = gi;
          ++output.stats.aod_moves;
          ++layer.aod_moves;
          layer.move_distance_um =
              std::max(layer.move_distance_um, move.max_distance_um);
          output.stats.total_move_distance_um += move.max_distance_um;
          output.stats.max_move_distance_um = std::max(
              output.stats.max_move_distance_um, move.max_distance_um);
          accepted.push_back(gi);
          needs_trap_change.push_back(0);
        } else {
          // Failed moves are resolved with a trap change (paper Sec. III).
          accepted.push_back(gi);
          needs_trap_change.push_back(1);
        }
        continue;
      }
      if (!q0_mobile && !q1_mobile) {
        // Both static and out of range: trap-and-move excursion (the ~1.3%
        // case). The atom is temporarily AOD-trapped, moved into range,
        // the gate runs, and it returns to its SLM trap within the layer.
        accepted.push_back(gi);
        needs_trap_change.push_back(2);  // 2 marks the SLM-SLM statistic
        continue;
      }
      // Mobile endpoint exists but this layer already moved: defer the gate
      // to a later layer (paper lines 16-17).
    }

    // --- line 20: shuffle to avoid starvation --------------------------------
    {
      std::vector<std::size_t> order(accepted.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.shuffle(order);
      // Pin the physically-moved gate to the front so the blockade filter
      // can never waste the move.
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (accepted[order[i]] == moved_gate) {
          std::swap(order[0], order[i]);
          break;
        }
      }
      std::vector<std::size_t> acc2(accepted.size());
      std::vector<char> tc2(accepted.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        acc2[i] = accepted[order[i]];
        tc2[i] = needs_trap_change[order[i]];
      }
      accepted = std::move(acc2);
      needs_trap_change = std::move(tc2);
    }

    // --- lines 21-22: blockade-interference serialization --------------------
    std::vector<std::size_t> final_gates;
    for (std::size_t idx = 0; idx < accepted.size(); ++idx) {
      const std::size_t gi = accepted[idx];
      const circuit::Gate& g = circuit.gate(gi);
      if (g.type == circuit::GateType::kCZ) {
        // Re-verify range: the layer's AOD move may have recursively
        // displaced an endpoint of a gate that was in range when it was
        // accepted. Such gates are ejected and retry next layer.
        // (Trap-change gates execute via an excursion and are exempt.)
        if (needs_trap_change[idx] == 0 &&
            !machine.within_interaction(g.q[0], g.q[1])) {
          continue;
        }
        bool conflicts = false;
        for (const std::size_t prior : final_gates) {
          const circuit::Gate& pg = circuit.gate(prior);
          if (pg.type == circuit::GateType::kCZ &&
              blockade_conflict(machine, g, pg)) {
            conflicts = true;
            break;
          }
        }
        if (conflicts) continue;  // ejected back to the pool
      }
      if (needs_trap_change[idx] != 0) {
        ++layer.trap_changes;
        ++output.stats.trap_changes;
        if (needs_trap_change[idx] == 2) ++output.stats.slm_slm_cz;
      }
      final_gates.push_back(gi);
    }
    if (final_gates.empty()) {
      // Progress guarantee: if every accepted gate was ejected (which the
      // movement engine's post-conditions should prevent), force the first
      // accepted gate through with a trap-change excursion rather than
      // spinning on an empty layer.
      assert(!accepted.empty());
      ++layer.trap_changes;
      ++output.stats.trap_changes;
      final_gates.push_back(accepted.front());
    }

    // --- line 23: execute -----------------------------------------------------
    if (options.record_positions) {
      layer.positions.reserve(static_cast<std::size_t>(machine.n_qubits()));
      for (std::int32_t q = 0; q < machine.n_qubits(); ++q) {
        layer.positions.push_back(machine.position(q));
      }
    }
    double max_gate_time = 0.0;
    for (const std::size_t gi : final_gates) {
      const circuit::Gate& g = circuit.gate(gi);
      max_gate_time = std::max(max_gate_time, gate_time_us(g, config));
      switch (g.type) {
        case circuit::GateType::kU3: ++output.stats.u3_gates; break;
        case circuit::GateType::kCZ: ++output.stats.cz_gates; break;
        default: break;
      }
      dag.mark_executed(gi);
    }

    // --- line 24: reset moved atoms -------------------------------------------
    if (options.return_home) {
      layer.return_distance_um = machine.return_all_home();
    } else if (moved_this_layer) {
      // Home drifts with the atoms: future saves anchor at current state.
      machine.save_home();
    }

    layer.gates = std::move(final_gates);
    layer.duration_us =
        max_gate_time +
        (layer.move_distance_um + layer.return_distance_um) /
            config.aod_speed_um_per_us +
        static_cast<double>(layer.trap_changes) * config.trap_switch_time_us;
    output.runtime_us += layer.duration_us;
    output.stats.layers += 1;
    output.layers.push_back(std::move(layer));
  }

  // Every executed out-of-range CZ was resolved by exactly one AOD move or
  // one trap change.
  output.stats.out_of_range_cz =
      output.stats.aod_moves + output.stats.trap_changes;
  return output;
}

}  // namespace parallax::compiler
