#include "parallax/movement.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <vector>

namespace parallax::compiler {

namespace {

/// Snapshot of all mutable AOD state, for rollback when a move attempt fails
/// (the paper resolves failed moves with a trap change; the machine must be
/// left exactly as it was).
struct AodSnapshot {
  std::vector<geom::Point> positions;
  std::vector<double> rows;
  std::vector<double> cols;

  explicit AodSnapshot(const hardware::Machine& machine) {
    positions.reserve(static_cast<std::size_t>(machine.n_qubits()));
    for (std::int32_t q = 0; q < machine.n_qubits(); ++q) {
      positions.push_back(machine.position(q));
    }
    const auto& aod = machine.aod();
    for (std::int32_t r = 0; r < aod.n_rows(); ++r) {
      rows.push_back(aod.row_coord(r));
    }
    for (std::int32_t c = 0; c < aod.n_cols(); ++c) {
      cols.push_back(aod.col_coord(c));
    }
  }

  void restore(hardware::Machine& machine) const {
    for (std::int32_t q = 0; q < machine.n_qubits(); ++q) {
      if (machine.atom(q).in_aod()) {
        machine.move_aod_atom(q, positions[static_cast<std::size_t>(q)]);
      }
    }
    auto& aod = machine.aod();
    for (std::int32_t r = 0; r < aod.n_rows(); ++r) {
      aod.set_row_coord(r, rows[static_cast<std::size_t>(r)]);
    }
    for (std::int32_t c = 0; c < aod.n_cols(); ++c) {
      aod.set_col_coord(c, cols[static_cast<std::size_t>(c)]);
    }
  }
};

geom::Point rotate(geom::Point v, double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {v.x * c - v.y * s, v.x * s + v.y * c};
}

// Travel accounting shared across one move operation. (File-local so the
// header stays free of the map; the engine is not reentrant, matching its
// single-scheduler use.)
thread_local std::map<std::int32_t, double> t_travel;

}  // namespace

void MovementEngine::note_move(std::int32_t q, geom::Point from,
                               geom::Point to) {
  t_travel[q] += geom::distance(from, to);
  max_distance_ = std::max(max_distance_, t_travel[q]);
}

bool MovementEngine::move_line(bool is_row, std::int32_t line, double coord,
                               int depth) {
  auto& machine = *machine_;
  auto& aod = machine.aod();
  if (++iterations_used_ > max_iterations_ || depth > max_iterations_) {
    return false;
  }
  if (!make_room(is_row, line, coord, depth)) return false;

  const std::int32_t occupant = is_row ? aod.row_qubit(line)
                                       : aod.col_qubit(line);
  if (occupant < 0) {
    if (is_row) {
      aod.set_row_coord(line, coord);
    } else {
      aod.set_col_coord(line, coord);
    }
    return true;
  }

  // Occupied line: the atom rides along (tandem constraint). Its landing
  // spot may hit a static atom; nudge further along the push direction a
  // few times before giving up.
  const double old_coord = is_row ? aod.row_coord(line) : aod.col_coord(line);
  const double direction = (coord >= old_coord) ? 1.0 : -1.0;
  const double step = machine.config().min_separation_um;
  ++displaced_;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const double c = coord + direction * step * attempt;
    geom::Point p = machine.position(occupant);
    if (is_row) {
      p.y = c;
    } else {
      p.x = c;
    }
    if (place_atom(occupant, p, depth + 1)) return true;
    if (iterations_used_ > max_iterations_) return false;
  }
  return false;
}

bool MovementEngine::make_room(bool is_row, std::int32_t line, double coord,
                               int depth) {
  auto& machine = *machine_;
  auto& aod = machine.aod();
  const double gap = aod.min_line_gap();
  const std::int32_t count = is_row ? aod.n_rows() : aod.n_cols();
  auto coord_of = [&](std::int32_t l) {
    return is_row ? aod.row_coord(l) : aod.col_coord(l);
  };
  // Only the neighbour on the side we move toward can newly violate the
  // gap; pushing it propagates outward in one direction, so the recursion
  // terminates after at most `count` lines.
  if (line + 1 < count && coord_of(line + 1) < coord + gap) {
    if (!move_line(is_row, line + 1, coord + gap * 1.01, depth + 1)) {
      return false;
    }
  }
  if (line - 1 >= 0 && coord_of(line - 1) > coord - gap) {
    if (!move_line(is_row, line - 1, coord - gap * 1.01, depth + 1)) {
      return false;
    }
  }
  return true;
}

bool MovementEngine::resolve_line_order(std::int32_t q, geom::Point target,
                                        int depth) {
  const hardware::Atom& atom = machine_->atom(q);
  return make_room(/*is_row=*/true, atom.aod_row, target.y, depth) &&
         make_room(/*is_row=*/false, atom.aod_col, target.x, depth);
}

bool MovementEngine::push_away(std::int32_t q, geom::Point from, int depth) {
  auto& machine = *machine_;
  const double min_sep = machine.config().min_separation_um;
  const geom::Point pos = machine.position(q);
  geom::Point dir = pos - from;
  const double d = dir.norm();
  if (d > 1e-12) {
    dir = dir * (1.0 / d);
  } else {
    dir = {1.0, 0.0};  // coincident: pick an arbitrary direction
  }
  const double needed = min_sep * 1.05 - d;
  // Try the radial direction first, then rotations, in case a static atom
  // sits exactly along the escape path.
  constexpr double kAngles[] = {0.0, 0.7853981633974483, -0.7853981633974483,
                                1.5707963267948966, -1.5707963267948966};
  for (const double angle : kAngles) {
    if (iterations_used_ > max_iterations_) return false;
    const geom::Point candidate =
        pos + rotate(dir, angle) * std::max(needed, min_sep * 0.55);
    if (place_atom(q, candidate, depth + 1)) return true;
  }
  return false;
}

bool MovementEngine::place_atom(std::int32_t q, geom::Point target,
                                int depth) {
  auto& machine = *machine_;
  if (++iterations_used_ > max_iterations_ || depth > max_iterations_) {
    return false;
  }

  // Static atoms cannot yield; an SLM atom inside the separation zone of the
  // target makes this spot infeasible.
  const double min_sep = machine.config().min_separation_um;
  for (std::int32_t other = 0; other < machine.n_qubits(); ++other) {
    if (other == q || machine.atom(other).in_aod()) continue;
    if (geom::distance(machine.position(other), target) < min_sep) {
      return false;
    }
  }

  if (!resolve_line_order(q, target, depth)) return false;

  // Mobile atoms in the way are displaced recursively.
  for (std::int32_t other = 0; other < machine.n_qubits(); ++other) {
    if (other == q || !machine.atom(other).in_aod()) continue;
    if (geom::distance(machine.position(other), target) < min_sep) {
      if (!push_away(other, target, depth + 1)) return false;
    }
  }

  const geom::Point from = machine.position(q);
  machine.move_aod_atom(q, target);
  note_move(q, from, target);
  return true;
}

MoveOutcome MovementEngine::move_into_range(std::int32_t mover,
                                            std::int32_t partner) {
  auto& machine = *machine_;
  MoveOutcome outcome;
  iterations_used_ = 0;
  max_distance_ = 0.0;
  displaced_ = 0;
  t_travel.clear();

  const double r = machine.interaction_radius();
  const double min_sep = machine.config().min_separation_um;
  const double approach =
      std::clamp(0.9 * r, std::min(1.2 * min_sep, 0.98 * r), 0.98 * r);
  const double extent = machine.grid().extent();

  // Approach points around the partner, nearest-to-current-direction first.
  constexpr double kDeg = std::numbers::pi / 180.0;
  constexpr double kAngles[] = {0.0,         30.0 * kDeg,  -30.0 * kDeg,
                                60.0 * kDeg, -60.0 * kDeg, 90.0 * kDeg,
                                -90.0 * kDeg, 135.0 * kDeg, -135.0 * kDeg,
                                180.0 * kDeg};

  const AodSnapshot initial(machine);

  // The recursive displacement of a successful placement may carry the
  // *partner* along (its AOD line can be an order-blocker of the mover's).
  // When that happens the mover chases the partner's new position for a few
  // rounds instead of giving up — a genuine physical sequence of moves whose
  // travel accumulates into the timing model.
  constexpr int kChaseRounds = 4;
  for (int round = 0; round < kChaseRounds; ++round) {
    const geom::Point partner_pos = machine.position(partner);
    geom::Point dir = machine.position(mover) - partner_pos;
    const double d = dir.norm();
    dir = (d > 1e-12) ? dir * (1.0 / d) : geom::Point{1.0, 0.0};

    bool placed = false;
    for (const double angle : kAngles) {
      geom::Point target = partner_pos + rotate(dir, angle) * approach;
      target.x = std::clamp(target.x, 0.0, extent);
      target.y = std::clamp(target.y, 0.0, extent);
      if (geom::distance(target, partner_pos) > r) continue;  // clamped out
      if (geom::distance(target, partner_pos) < min_sep) continue;
      // A mobile partner rides its own AOD lines: approaching almost
      // axis-aligned would force the mover's row (or column) within the
      // line gap of the partner's, pushing the partner away with it. Skip
      // those angles — an oblique approach keeps both lines clear.
      if (machine.atom(partner).in_aod()) {
        const double gap = machine.aod().min_line_gap() * 1.05;
        if (std::abs(target.y - partner_pos.y) < gap ||
            std::abs(target.x - partner_pos.x) < gap) {
          continue;
        }
      }

      // Roll back failed attempts (machine state and travel accounting).
      const AodSnapshot attempt_start(machine);
      const auto travel_start = t_travel;
      const double max_distance_start = max_distance_;
      const int displaced_start = displaced_;
      if (place_atom(mover, target, 0)) {
        placed = true;
        break;
      }
      attempt_start.restore(machine);
      t_travel = travel_start;
      max_distance_ = max_distance_start;
      displaced_ = displaced_start;
      if (iterations_used_ > max_iterations_) break;  // budget exhausted
    }

    if (!placed) break;
    if (machine.within_interaction(mover, partner)) {
      outcome.success = true;
      outcome.max_distance_um = max_distance_;
      outcome.displaced_atoms = displaced_;
      outcome.iterations = iterations_used_;
      return outcome;
    }
    // Partner drifted: keep the state and chase in the next round.
    if (iterations_used_ > max_iterations_) break;
  }

  initial.restore(machine);
  outcome.success = false;
  outcome.iterations = iterations_used_;
  return outcome;
}

}  // namespace parallax::compiler
