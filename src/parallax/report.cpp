#include "parallax/report.hpp"

#include "noise/model.hpp"
#include "util/json.hpp"

namespace parallax::compiler {

std::string report_json(const CompileResult& result,
                        const hardware::HardwareConfig& config,
                        const ReportOptions& options) {
  using util::JsonValue;
  JsonValue root = JsonValue::object();
  root["technique"] = result.technique;
  root["circuit"] = result.circuit.name();
  root["machine"] = config.name;
  root["n_qubits"] = static_cast<std::int64_t>(result.circuit.n_qubits());

  JsonValue gates = JsonValue::object();
  gates["u3"] = result.stats.u3_gates;
  gates["cz"] = result.stats.cz_gates;
  gates["swap"] = result.stats.swap_gates;
  gates["effective_cz"] = result.stats.effective_cz();
  root["gates"] = std::move(gates);

  JsonValue schedule = JsonValue::object();
  schedule["layers"] = result.stats.layers;
  schedule["runtime_us"] = result.runtime_us;
  schedule["aod_moves"] = result.stats.aod_moves;
  schedule["trap_changes"] = result.stats.trap_changes;
  schedule["out_of_range_cz"] = result.stats.out_of_range_cz;
  schedule["slm_slm_cz"] = result.stats.slm_slm_cz;
  schedule["max_move_distance_um"] = result.stats.max_move_distance_um;
  schedule["total_move_distance_um"] = result.stats.total_move_distance_um;
  root["schedule"] = std::move(schedule);

  JsonValue topology = JsonValue::object();
  topology["grid_side"] = static_cast<std::int64_t>(result.topology.grid.side());
  topology["pitch_um"] = result.topology.grid.pitch();
  topology["interaction_radius_um"] = result.topology.interaction_radius_um;
  topology["blockade_radius_um"] = result.topology.blockade_radius_um;
  topology["aod_qubits"] = result.aod_qubit_count();
  root["topology"] = std::move(topology);

  root["success_probability"] =
      noise::success_probability(result, config);

  if (options.include_layers) {
    JsonValue layers = JsonValue::array();
    for (const Layer& layer : result.layers) {
      JsonValue item = JsonValue::object();
      JsonValue gate_list = JsonValue::array();
      for (const std::size_t gi : layer.gates) gate_list.push_back(gi);
      item["gates"] = std::move(gate_list);
      item["duration_us"] = layer.duration_us;
      item["move_distance_um"] = layer.move_distance_um;
      item["return_distance_um"] = layer.return_distance_um;
      item["trap_changes"] = static_cast<std::int64_t>(layer.trap_changes);
      layers.push_back(std::move(item));
    }
    root["layers"] = std::move(layers);
  }
  return root.dump(options.indent);
}

}  // namespace parallax::compiler
