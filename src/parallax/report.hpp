// Machine-readable compile reports: serializes a CompileResult (plus the
// noise model's estimate) to JSON for downstream analysis pipelines.
#pragma once

#include <string>

#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::compiler {

struct ReportOptions {
  /// Include the per-layer schedule (gates, durations, movement); makes the
  /// report O(gates) large.
  bool include_layers = false;
  /// JSON indentation; < 0 for compact output.
  int indent = 2;
};

/// JSON report with technique, gate statistics, runtime, topology summary,
/// and the estimated success probability under `config`.
[[nodiscard]] std::string report_json(const CompileResult& result,
                                      const hardware::HardwareConfig& config,
                                      const ReportOptions& options = {});

}  // namespace parallax::compiler
