#include "parallax/validate.hpp"

#include <map>
#include <set>
#include <sstream>

namespace parallax::compiler {

namespace {

std::string gate_desc(const circuit::Circuit& circuit, std::size_t index) {
  std::ostringstream out;
  out << "gate#" << index << " (" << circuit.gate(index).to_string() << ")";
  return out.str();
}

}  // namespace

ValidationReport validate_schedule(const CompileResult& result,
                                   const hardware::HardwareConfig& config,
                                   bool expect_zero_swaps) {
  ValidationReport report;
  const circuit::Circuit& circuit = result.circuit;

  // L1: zero SWAPs for Parallax.
  if (expect_zero_swaps && circuit.swap_count() != 0) {
    report.fail("L1: circuit contains " +
                std::to_string(circuit.swap_count()) + " SWAP gates");
  }

  // L2: every non-barrier gate scheduled exactly once.
  std::vector<int> times_scheduled(circuit.size(), 0);
  for (const Layer& layer : result.layers) {
    for (const std::size_t gi : layer.gates) {
      if (gi >= circuit.size()) {
        report.fail("L2: layer references out-of-range gate index " +
                    std::to_string(gi));
        continue;
      }
      ++times_scheduled[gi];
    }
  }
  for (std::size_t gi = 0; gi < circuit.size(); ++gi) {
    const int expected =
        circuit.gate(gi).type == circuit::GateType::kBarrier ? 0 : 1;
    if (times_scheduled[gi] != expected) {
      report.fail("L2: " + gate_desc(circuit, gi) + " scheduled " +
                  std::to_string(times_scheduled[gi]) + " times");
    }
  }

  // L3: no qubit reuse within a layer.
  for (std::size_t li = 0; li < result.layers.size(); ++li) {
    std::set<std::int32_t> touched;
    for (const std::size_t gi : result.layers[li].gates) {
      const auto& g = circuit.gate(gi);
      for (int k = 0; k < g.arity(); ++k) {
        if (!touched.insert(g.q[k]).second) {
          report.fail("L3: layer " + std::to_string(li) + " uses qubit " +
                      std::to_string(g.q[k]) + " twice");
        }
      }
    }
  }

  // L4: per-qubit order preservation.
  std::map<std::int32_t, std::vector<std::size_t>> expected_order;
  for (std::size_t gi = 0; gi < circuit.size(); ++gi) {
    const auto& g = circuit.gate(gi);
    if (g.type == circuit::GateType::kBarrier) continue;
    for (int k = 0; k < g.arity(); ++k) expected_order[g.q[k]].push_back(gi);
  }
  std::map<std::int32_t, std::vector<std::size_t>> actual_order;
  for (const Layer& layer : result.layers) {
    for (const std::size_t gi : layer.gates) {
      const auto& g = circuit.gate(gi);
      for (int k = 0; k < g.arity(); ++k) actual_order[g.q[k]].push_back(gi);
    }
  }
  if (expected_order != actual_order) {
    report.fail("L4: per-qubit execution order deviates from program order");
  }

  // Physical checks require the recorded snapshots.
  const double radius = result.topology.interaction_radius_um;
  const double blockade = result.topology.blockade_radius_um;
  for (std::size_t li = 0; li < result.layers.size(); ++li) {
    const Layer& layer = result.layers[li];
    if (layer.positions.empty()) continue;
    const auto& pos = layer.positions;

    // P1: CZ atoms in range.
    for (const std::size_t gi : layer.gates) {
      const auto& g = circuit.gate(gi);
      if (g.type != circuit::GateType::kCZ) continue;
      // Trap-change gates execute during an off-snapshot excursion; the
      // snapshot shows the pre-excursion position, so skip gates whose
      // atoms are both static and far (they are exactly the trap-change
      // set, already accounted in stats).
      const double d =
          geom::distance(pos[static_cast<std::size_t>(g.q[0])],
                         pos[static_cast<std::size_t>(g.q[1])]);
      const bool q0_mobile = result.in_aod[static_cast<std::size_t>(g.q[0])];
      const bool q1_mobile = result.in_aod[static_cast<std::size_t>(g.q[1])];
      if (d > radius * (1.0 + 1e-9) && (q0_mobile || q1_mobile) &&
          layer.trap_changes == 0) {
        report.fail("P1: layer " + std::to_string(li) + " " +
                    gate_desc(circuit, gi) + " executes at distance " +
                    std::to_string(d) + " > radius " + std::to_string(radius));
      }
    }

    // P2: blockade exclusivity between distinct CZs (skip trap-change
    // layers, whose excursions are not in the snapshot).
    if (layer.trap_changes == 0) {
      std::vector<std::size_t> cz_gates;
      for (const std::size_t gi : layer.gates) {
        if (circuit.gate(gi).type == circuit::GateType::kCZ) {
          cz_gates.push_back(gi);
        }
      }
      for (std::size_t i = 0; i < cz_gates.size(); ++i) {
        for (std::size_t j = i + 1; j < cz_gates.size(); ++j) {
          const auto& g1 = circuit.gate(cz_gates[i]);
          const auto& g2 = circuit.gate(cz_gates[j]);
          for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
              const double d = geom::distance(
                  pos[static_cast<std::size_t>(g1.q[a])],
                  pos[static_cast<std::size_t>(g2.q[b])]);
              if (d < blockade * (1.0 - 1e-9)) {
                report.fail("P2: layer " + std::to_string(li) +
                            " blockade violation between " +
                            gate_desc(circuit, cz_gates[i]) + " and " +
                            gate_desc(circuit, cz_gates[j]));
              }
            }
          }
        }
      }
    }

    // P3: minimum separation at the snapshot.
    for (std::size_t a = 0; a < pos.size(); ++a) {
      for (std::size_t b = a + 1; b < pos.size(); ++b) {
        if (geom::distance(pos[a], pos[b]) <
            config.min_separation_um * (1.0 - 1e-9)) {
          report.fail("P3: layer " + std::to_string(li) + " atoms " +
                      std::to_string(a) + " and " + std::to_string(b) +
                      " closer than the minimum separation");
        }
      }
    }
  }

  return report;
}

}  // namespace parallax::compiler
