// Post-hoc schedule validation: re-checks a CompileResult against the
// paper's physical and logical invariants. Used by the property-test suite
// and available to downstream users as a safety net after custom
// modifications to the pipeline.
//
// Logical invariants (always checkable):
//   L1  zero SWAP gates in a Parallax result;
//   L2  every non-barrier gate scheduled exactly once;
//   L3  no two gates in a layer touch the same qubit;
//   L4  per-qubit gate order equals the circuit's program order.
// Physical invariants (need SchedulerOptions::record_positions):
//   P1  every CZ executes with its atoms within the interaction radius;
//   P2  no two distinct CZs in a layer violate the blockade radius;
//   P3  the minimum separation constraint holds at every execution snapshot.
#pragma once

#include <string>
#include <vector>

#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::compiler {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message) {
    ok = false;
    violations.push_back(std::move(message));
  }
};

/// Validates all checkable invariants of `result` on `config`.
/// `expect_zero_swaps` should be true for Parallax results and false for
/// the SWAP-routing baselines.
[[nodiscard]] ValidationReport validate_schedule(
    const CompileResult& result, const hardware::HardwareConfig& config,
    bool expect_zero_swaps = true);

/// The continuous-time event ledger (implemented by the discrete-event
/// simulator, src/sim/ledger.cpp): replays the schedule as timestamped
/// events and checks the invariants per-layer snapshots cannot see —
///   E0  every layer records atom positions (one per logical qubit);
///   E1  the event timeline is sane (ordered, non-negative durations);
///   E2  min-separation holds at every event boundary configuration, and no
///       two atoms occupy one site (an atom cannot be in two places);
///   E3  no atom teleports: per-layer displacement from the layer's start
///       configuration is within the layer's recorded movement budget;
///   E4  each layer's `duration_us` matches the simulated wall time of its
///       event legs within tolerance, and `runtime_us` matches their sum.
[[nodiscard]] ValidationReport validate_continuous(
    const CompileResult& result, const hardware::HardwareConfig& config);

}  // namespace parallax::compiler
