// Output of a compilation: the scheduled layers, movement/trap-change
// accounting, and the runtime model's totals. Shared by Parallax and the
// baseline compilers so the bench harness can treat techniques uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "placement/discretize.hpp"

namespace parallax::compiler {

/// One hardware-executable layer: gates that run simultaneously, plus the
/// movement and trap-change activity that preceded them.
struct Layer {
  std::vector<std::size_t> gates;   // indices into `CompileResult::circuit`
  double move_distance_um = 0.0;    // max distance any atom moved (inbound)
  double return_distance_um = 0.0;  // max distance for the home-return leg
  int aod_moves = 0;                // move-into-range operations this layer
  int trap_changes = 0;             // 100 us AOD trap-change operations
  double duration_us = 0.0;         // total wall time of this layer
  /// Atom positions at gate execution time (one per logical qubit). Only
  /// populated when SchedulerOptions::record_positions is set; enables the
  /// physical-invariant validator (parallax/validate.hpp).
  std::vector<geom::Point> positions;
};

struct CompileStats {
  std::size_t u3_gates = 0;
  std::size_t cz_gates = 0;       // native CZ executions
  std::size_t swap_gates = 0;     // SWAPs inserted by routing (baselines)
  /// Paper Fig. 9 metric: CZ executions including 3 per SWAP.
  [[nodiscard]] std::size_t effective_cz() const noexcept {
    return cz_gates + 3 * swap_gates;
  }
  std::size_t layers = 0;
  std::size_t aod_moves = 0;         // move-into-range operations
  std::size_t trap_changes = 0;      // total trap-change operations
  std::size_t out_of_range_cz = 0;   // CZs that required movement or a trap
                                     // change
  std::size_t slm_slm_cz = 0;        // CZs between two SLM atoms out of range
                                     // (the paper's ~1.3% case)
  double max_move_distance_um = 0.0;
  double total_move_distance_um = 0.0;
};

/// Wall-clock of one pipeline pass. Observational metadata: it is excluded
/// from the compilation cache's serialized payloads and from every
/// determinism guarantee.
struct PassTiming {
  std::string pass;
  double seconds = 0.0;
  /// The pass's product was served from a cache instead of computed: the
  /// sweep driver marks transpile/placement stages it satisfied from its
  /// memos or the persistent cache, and a whole-result cache hit marks
  /// every pass.
  bool cached = false;
  /// Render emphasis (e.g. the winning portfolio entrant's row); purely
  /// presentational.
  bool highlight = false;
};

struct CompileResult {
  std::string technique;          // "parallax", "eldi", or "graphine"
  circuit::Circuit circuit;       // the gate stream actually scheduled
  placement::PhysicalTopology topology;
  std::vector<Layer> layers;
  std::vector<std::int8_t> in_aod;  // per logical qubit, after AOD selection
  CompileStats stats;
  /// One logical shot's runtime (us) — the paper's Table IV metric.
  double runtime_us = 0.0;
  /// Per-pass compile-time profile, in pipeline order (ROADMAP: O(q^5)
  /// placement dominance without google-benchmark).
  std::vector<PassTiming> pass_timings;

  [[nodiscard]] std::size_t aod_qubit_count() const {
    std::size_t n = 0;
    for (auto f : in_aod) n += (f != 0);
    return n;
  }
};

}  // namespace parallax::compiler
