// Step 3 of the Parallax pipeline (paper Sec. II-C): choose which atoms go
// into the AOD. Each atom is scored
//     0.99 * (# out-of-interaction-radius 2q interactions, normalized)
//   + 0.01 * (blockade-serialization caused in ASAP layers, normalized)
// and the highest-weight atoms are selected greedily until every
// out-of-range interaction has at least one mobile endpoint (or AOD
// capacity runs out). Selected atoms are lifted into AOD row/column pairs —
// one atom per pair — with the paper's recursive nudge resolving shared
// row/column coordinates.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/machine.hpp"

namespace parallax::compiler {

struct AodSelectionOptions {
  /// Criterion weights (paper Sec. II-C: 0.99 out-of-range, 0.01 blockade
  /// serialization). Exposed for the design-choice ablation bench.
  double out_of_range_weight = 0.99;
  double interference_weight = 0.01;
};

struct AodSelectionResult {
  std::vector<std::int8_t> in_aod;      // per logical qubit
  std::vector<double> weights;          // diagnostic: selection score
  std::size_t out_of_range_pairs = 0;   // distinct pairs beyond the radius
  std::size_t uncovered_pairs = 0;      // pairs left with no AOD endpoint
};

/// Scores and lifts atoms. Mutates `machine` (atoms move from SLM traps to
/// AOD lines, possibly nudged to resolve shared coordinates).
[[nodiscard]] AodSelectionResult select_aod_qubits(
    const circuit::Circuit& circuit, hardware::Machine& machine,
    const AodSelectionOptions& options = {});

}  // namespace parallax::compiler
