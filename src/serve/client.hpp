// Client for a running `parallax serve` session. Submits a SweepSpec over
// one connection, streams the cell frames back into a caller callback as
// they arrive, and reassembles the flat circuit-major sweep::Result the
// in-process sweep::run would have produced — for a fully-executed request
// the reassembly is byte-identical under shard::canonical_bytes.
//
// This is what the bench harness speaks when PARALLAX_SERVE names a serve
// socket, and what `parallax serve submit` wraps. One connection serves
// many sequential run() calls (the warm-session pattern: the second run of
// the same spec replays from the server's cache with zero anneals).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"
#include "shard/spec.hpp"
#include "sweep/sweep.hpp"

namespace parallax::serve {

struct ClientOutcome {
  /// Cells in flat circuit-major order. Cells the server never ran
  /// (cancelled request) carry labels with Cell::cancelled set.
  sweep::Result result;
  Summary summary;
};

class Client {
 public:
  /// Connects to a serve unix socket (what PARALLAX_SERVE names). Throws
  /// ServeError when the socket cannot be reached.
  explicit Client(const std::string& socket_path);
  /// Adopts an already-connected descriptor (tests hand in a socketpair
  /// end; closed on destruction).
  explicit Client(int connected_fd) noexcept : fd_(connected_fd) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits `spec` and blocks until its kDone frame, invoking `on_cell`
  /// (from this thread, in frame-arrival order) per streamed cell. Throws
  /// ServeError on any connection or protocol failure, including a kError
  /// response; a request-level failure the server completed politely is
  /// returned in Summary::error instead.
  ClientOutcome run(const shard::SweepSpec& spec,
                    const std::function<void(const sweep::Cell&)>& on_cell = {});

  /// Queries the session-wide accounting snapshot (requests served, cells
  /// executed, cache hit and anneal counters). Throws ServeError on any
  /// connection or protocol failure, including a kError response.
  SessionStats stats();

  /// Asks the server to stop this connection after in-flight work drains.
  void quit();

  /// Asks the server to drain the whole session gracefully (STOP): the
  /// listener stops accepting, in-flight tickets are cancelled, every
  /// connection's done frames flush, and the socket file is unlinked.
  /// Blocks until the server's kDone acknowledgement. Throws ServeError on
  /// any connection or protocol failure, including a kError response.
  void stop();

 private:
  int fd_ = -1;
  std::uint64_t last_id_ = 0;
};

}  // namespace parallax::serve
