// The farm front-end of `parallax serve`: line-framed requests in,
// length-prefixed frames out. Two modes share one protocol:
//
//   * serve_connection — one connection over an arbitrary fd pair (stdio
//     for `parallax serve` in a pipeline, a socketpair in tests). Blocking
//     writes, drained by whichever thread finds the sink idle.
//   * serve_unix_socket — the multi-tenant event loop the bench harness
//     targets through PARALLAX_SERVE: a poll()-driven front-end accepting
//     and multiplexing many concurrent AF_UNIX connections over one
//     SweepService, with non-blocking per-connection write buffers.
//
// Fault containment: a malformed request line (bad verb, bad hex, corrupt
// spec bytes, unknown cancel id, duplicate submit id, overlong line) is
// answered with a kError frame and the connection keeps serving — only
// QUIT, input EOF, STOP, or an unwritable output ends a connection. A
// client that disappears or stops reading mid-request (write failure,
// buffered-byte overflow, write-timeout stall) is detached: its in-flight
// work is cancelled so the session's pool is not burned for a reader that
// is gone, and every other client's frames keep flowing.
//
// Tenancy: each accepted connection is one client (accept-order client id).
// Quotas bound what any one client can hold — queued-but-unfinished
// requests (rejected with a kError frame naming the limit) and unflushed
// frame bytes (overflow detaches the connection). Scheduling across
// clients is the service's round-robin, so quotas plus fair-share keep one
// tenant from starving the rest.
//
// Shutdown: a STOP request, the ServerOptions::stop flag (the CLI's signal
// handlers), or an accept failure all drain the session gracefully — the
// listener closes and the socket file is unlinked immediately, in-flight
// tickets are cancelled, every connection's done frames flush, and
// serve_unix_socket returns. Every exit path closes the listener and
// unlinks the socket.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "serve/service.hpp"

namespace parallax::serve {

struct ServerOptions {
  /// Request lines longer than this are discarded (through the next
  /// newline) with a kError frame; bounds the line buffer against a client
  /// that streams garbage without newlines. The default comfortably fits a
  /// paper-scale sweep spec in hex.
  std::size_t max_line_bytes = 256ull << 20;
  /// Socket mode: a connection whose peer accepts no bytes for this long
  /// while frames are pending is detached (in-flight work cancelled, fd
  /// closed) — a stalled reader costs the farm one timeout, never a wedged
  /// worker. 0 disables the bound.
  std::size_t write_timeout_seconds = 60;
  /// Per-client cap on requests submitted but not yet finished; a SUBMIT
  /// over the cap is rejected with a kError frame naming the limit.
  std::size_t max_inflight_per_client = 64;
  /// Per-client cap on frame bytes accepted for the connection but not yet
  /// written to it. A frame that would exceed it marks the client dead and
  /// detaches it — the bound that keeps a slow reader from buffering the
  /// session's memory away. 0 disables the bound.
  std::size_t max_client_buffered_bytes = 256ull << 20;
  /// External graceful-drain request (the CLI points its SIGINT/SIGTERM
  /// handlers here). Polled ~10x per second by serve_unix_socket; also
  /// honored by serve_connection between request lines.
  std::atomic<bool>* stop = nullptr;
};

/// Serves one connection until QUIT, STOP, input EOF, or output failure;
/// blocks until every request submitted on the connection has finished and
/// its frames are flushed. Returns the number of requests submitted.
std::size_t serve_connection(int in_fd, int out_fd, SweepService& service,
                             const ServerOptions& options = {});

/// Binds an AF_UNIX socket at `path` (replacing any stale socket file) and
/// multiplexes concurrent connections over one poll() loop until a STOP
/// request or ServerOptions::stop drains the session — then returns true.
/// Returns false when the socket cannot be created/bound/listened or
/// accept fails hard (errno describes why); the listener is closed and the
/// socket file unlinked on every exit path, graceful or not.
bool serve_unix_socket(const std::string& path, SweepService& service,
                       const ServerOptions& options = {});

}  // namespace parallax::serve
