// The connection loop of `parallax serve`: line-framed requests in,
// length-prefixed frames out, over any pair of file descriptors — stdio for
// `parallax serve` in a pipeline, an accepted AF_UNIX connection for the
// socket mode the bench harness targets through PARALLAX_SERVE.
//
// Fault containment: a malformed request line (bad verb, bad hex, corrupt
// spec bytes, unknown cancel id, duplicate submit id, overlong line) is
// answered with a kError frame and the connection keeps serving — only
// QUIT, input EOF, or an unwritable output ends a connection. A client that
// disappears mid-request (write failure) implicitly cancels its in-flight
// work so the session's pool is not burned for a reader that is gone.
#pragma once

#include <cstddef>
#include <string>

#include "serve/service.hpp"

namespace parallax::serve {

struct ServerOptions {
  /// Request lines longer than this are discarded (through the next
  /// newline) with a kError frame; bounds the line buffer against a client
  /// that streams garbage without newlines. The default comfortably fits a
  /// paper-scale sweep spec in hex.
  std::size_t max_line_bytes = 256ull << 20;
  /// Socket mode only: SO_SNDTIMEO per frame write, so a connected peer
  /// that stops reading stalls a worker for at most this long before the
  /// write fails into the dead-peer path (in-flight work cancelled, next
  /// connection accepted). 0 disables the bound.
  std::size_t write_timeout_seconds = 60;
};

/// Serves one connection until QUIT, input EOF, or output failure; blocks
/// until every request submitted on the connection has finished and its
/// frames are written. Returns the number of requests submitted.
std::size_t serve_connection(int in_fd, int out_fd, SweepService& service,
                             const ServerOptions& options = {});

/// Binds an AF_UNIX socket at `path` (replacing any stale socket file) and
/// serves connections one at a time, forever. Returns false only when the
/// socket cannot be created/bound/listened (errno describes why).
bool serve_unix_socket(const std::string& path, SweepService& service,
                       const ServerOptions& options = {});

}  // namespace parallax::serve
