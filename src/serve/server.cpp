#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "util/parse.hpp"

namespace parallax::serve {

namespace {

/// Shared sink for one connection's frames: worker threads (cell frames)
/// and the dispatcher (done frames) interleave here, one frame at a time.
/// The first failed write marks the peer dead; later frames are dropped and
/// the injected on_dead hook cancels in-flight work exactly once.
class FrameSink {
 public:
  explicit FrameSink(int fd) : fd_(fd) {}

  void set_on_dead(std::function<void()> on_dead) {
    on_dead_ = std::move(on_dead);
  }

  void write_frame(const std::string& frame) {
    std::function<void()> notify;
    {
      std::lock_guard lock(mutex_);
      if (dead_) return;
      if (!write_all(fd_, frame)) {
        dead_ = true;
        notify = on_dead_;
      }
    }
    if (notify) notify();
  }

  [[nodiscard]] bool dead() const {
    std::lock_guard lock(mutex_);
    return dead_;
  }

 private:
  const int fd_;
  mutable std::mutex mutex_;
  bool dead_ = false;
  std::function<void()> on_dead_;
};

/// Best-effort request id from a line that failed to parse, so the error
/// frame still names the request when the id token itself was readable.
std::uint64_t best_effort_id(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::string verb, id_token;
  if (!(in >> verb >> id_token)) return 0;
  return util::parse_u64(id_token).value_or(0);
}

}  // namespace

std::size_t serve_connection(int in_fd, int out_fd, SweepService& service,
                             const ServerOptions& options) {
  FrameSink sink(out_fd);

  // Tickets submitted on this connection: `inflight` powers CANCEL and
  // duplicate-id rejection; `submitted` is what the teardown wait drains.
  // `finished_early` closes the submit/on_done race: a request that
  // completes before the submitting thread re-acquires the lock leaves a
  // marker instead of an erase that found nothing, so the submitter knows
  // not to park a completed ticket in `inflight` forever.
  std::mutex tickets_mutex;
  std::map<std::uint64_t, std::shared_ptr<Ticket>> inflight;
  std::set<std::uint64_t> finished_early;
  std::vector<std::shared_ptr<Ticket>> submitted;

  sink.set_on_dead([&] {
    // The peer stopped reading; nobody will see these cells. Cancel what
    // is in flight so the session's pool goes back to idle.
    std::lock_guard lock(tickets_mutex);
    for (const auto& [id, ticket] : inflight) ticket->cancel();
  });

  const auto process_line = [&](const std::string& line) -> bool {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
    RequestLine request;
    try {
      request = parse_request_line(line);
    } catch (const std::exception& error) {
      sink.write_frame(error_frame(best_effort_id(line), error.what()));
      return true;
    }
    switch (request.verb) {
      case RequestLine::Verb::kQuit:
        return false;
      case RequestLine::Verb::kStats:
        // Answered immediately from this reader thread — a session-wide
        // snapshot must be queryable while a sweep is still in flight (the
        // FrameSink serializes it against concurrently streaming cells).
        sink.write_frame(stats_frame(request.id, service.session_stats()));
        return true;
      case RequestLine::Verb::kCancel: {
        std::shared_ptr<Ticket> ticket;
        {
          std::lock_guard lock(tickets_mutex);
          if (const auto it = inflight.find(request.id);
              it != inflight.end()) {
            ticket = it->second;
          }
        }
        if (ticket) {
          ticket->cancel();
        } else {
          sink.write_frame(error_frame(
              request.id, "CANCEL names an unknown or completed request id"));
        }
        return true;
      }
      case RequestLine::Verb::kSubmit:
        break;
    }
    const std::uint64_t id = request.id;
    {
      std::lock_guard lock(tickets_mutex);
      if (inflight.count(id) != 0) {
        sink.write_frame(
            error_frame(id, "SUBMIT reuses an in-flight request id"));
        return true;
      }
    }
    auto ticket = service.submit(
        std::move(request.spec),
        [&sink, id](const sweep::Cell& cell) {
          sink.write_frame(cell_frame(id, cell));
        },
        [&sink, &tickets_mutex, &inflight, &finished_early,
         id](const Summary& summary) {
          sink.write_frame(done_frame(id, summary));
          std::lock_guard lock(tickets_mutex);
          if (inflight.erase(id) == 0) finished_early.insert(id);
        },
        id);
    {
      std::lock_guard lock(tickets_mutex);
      if (finished_early.erase(id) == 0) inflight[id] = ticket;
      submitted.push_back(ticket);
    }
    if (sink.dead()) ticket->cancel();
    return true;
  };

  std::string buffer;
  char chunk[1 << 16];
  bool discarding = false;  // inside an overlong line, dropping to newline
  bool keep_reading = true;
  while (keep_reading) {
    for (;;) {
      const std::size_t newline = buffer.find('\n');
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        discarding = false;  // the oversized line finally ended; drop it
        continue;
      }
      if (!process_line(line)) {
        keep_reading = false;
        break;
      }
    }
    if (!keep_reading) break;
    if (discarding) {
      // Still inside the oversized line: keep dropping so the buffer stays
      // bounded no matter how much newline-free garbage streams in.
      buffer.clear();
    } else if (buffer.size() > options.max_line_bytes) {
      // Only the first few tokens can matter for the error frame; never
      // copy the oversized buffer to extract them.
      sink.write_frame(
          error_frame(best_effort_id(std::string_view(buffer).substr(0, 256)),
                      "request line exceeds the size limit"));
      buffer.clear();
      discarding = true;
    }
    const ssize_t got = ::read(in_fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // EOF: drain outstanding work below, then return
    buffer.append(chunk, static_cast<std::size_t>(got));
  }

  // Input is done (QUIT or EOF) but submitted requests may still be
  // compiling; wait() returns only after each request's done frame was
  // written, so returning from here cannot race a dangling sink.
  std::vector<std::shared_ptr<Ticket>> to_drain;
  {
    std::lock_guard lock(tickets_mutex);
    to_drain = submitted;
  }
  for (const auto& ticket : to_drain) (void)ticket->wait();
  return to_drain.size();
}

bool serve_unix_socket(const std::string& path, SweepService& service,
                       const ServerOptions& options) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return false;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    const int saved = errno;
    ::close(listener);
    errno = saved;
    return false;
  }
  for (;;) {
    const int connection = ::accept(listener, nullptr, nullptr);
    if (connection < 0) {
      if (errno == EINTR) continue;
      // Surface the failure to the caller: a serve session that silently
      // stopped accepting would strand the rest of a campaign.
      const int saved = errno;
      ::close(listener);
      errno = saved;
      return false;
    }
    // Bound every frame write: a connected-but-not-reading peer would
    // otherwise block a worker in send() forever (the sink only detects
    // peers whose writes FAIL), wedging this one-connection-at-a-time
    // loop. With the timeout, a stalled send degrades into the handled
    // dead-peer path and the session moves on.
    if (options.write_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = static_cast<time_t>(options.write_timeout_seconds);
      (void)::setsockopt(connection, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                         sizeof(timeout));
    }
    (void)serve_connection(connection, connection, service, options);
    ::close(connection);
  }
}

}  // namespace parallax::serve
