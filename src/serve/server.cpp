#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string_view>
#include <vector>

#include "util/parse.hpp"

namespace parallax::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Shared sink for one connection's frames: worker threads (cell frames),
/// the dispatcher (done frames), and the serving thread (stats/error
/// frames) interleave here, one frame at a time. Frames are enqueued under
/// the lock but never written under it — a blocked peer must not serialize
/// the whole farm through one connection's mutex. Two draining modes:
///
///   * blocking (no wake fd): whichever thread finds the sink idle becomes
///     the flusher, swaps the queue out, and write_all()s it outside the
///     critical section; other writers enqueue and return immediately.
///   * event (wake fd set): nothing blocks — writers enqueue and poke the
///     event loop's wake pipe, and the loop drains with MSG_DONTWAIT sends
///     when poll() reports the fd writable.
///
/// The first failed write — or a frame that would push the unflushed bytes
/// past max_pending — marks the peer dead; later frames are dropped and
/// the injected on_dead hook cancels in-flight work exactly once.
class FrameSink {
 public:
  FrameSink(int fd, std::size_t max_pending)
      : fd_(fd), max_pending_(max_pending) {}

  void set_on_dead(std::function<void()> on_dead) {
    on_dead_ = std::move(on_dead);
  }
  /// Switches the sink to event mode: fd_ must be non-blocking, and the
  /// poll loop owns the actual writes (on_writable).
  void set_wake_fd(int wake_fd) { wake_fd_ = wake_fd; }

  void write_frame(const std::string& frame) {
    std::function<void()> notify;
    bool poke = false;
    {
      std::unique_lock lock(mutex_);
      if (!dead_) {
        if (max_pending_ > 0 && pending_bytes_ + frame.size() > max_pending_) {
          dead_ = true;
          cv_.notify_all();
          notify = on_dead_;
        } else {
          if (pending_bytes_ == 0) last_progress_ = Clock::now();
          pending_.push_back(frame);
          pending_bytes_ += frame.size();
          poke = wake_fd_ >= 0;
          if (wake_fd_ < 0 && !flushing_) {
            flushing_ = true;
            notify = flush_locked(lock);
          }
        }
      }
    }
    if (notify) notify();
    if (poke) poke_wake();
  }

  /// Event mode: drains as much as the socket accepts right now. Called
  /// from the poll thread; MSG_DONTWAIT keeps the held lock cheap (no
  /// send() here ever blocks).
  void on_writable() {
    std::function<void()> notify;
    {
      std::lock_guard lock(mutex_);
      if (dead_) return;
      while (!pending_.empty()) {
        const std::string& front = pending_.front();
        const ssize_t n =
            ::send(fd_, front.data() + front_offset_,
                   front.size() - front_offset_,
                   MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          dead_ = true;
          cv_.notify_all();
          notify = on_dead_;
          break;
        }
        last_progress_ = Clock::now();
        pending_bytes_ -= static_cast<std::size_t>(n);
        front_offset_ += static_cast<std::size_t>(n);
        if (front_offset_ == front.size()) {
          pending_.pop_front();
          front_offset_ = 0;
        }
      }
    }
    if (notify) notify();
  }

  /// Kills the sink from outside (stall detach, read error): drops pending
  /// frames and fires on_dead exactly once.
  void mark_dead() {
    std::function<void()> notify;
    {
      std::lock_guard lock(mutex_);
      if (dead_) return;
      dead_ = true;
      cv_.notify_all();
      notify = on_dead_;
    }
    if (notify) notify();
  }

  /// Silences the sink before its fd closes (normal teardown, where no
  /// producer is left): late frames are dropped without firing on_dead.
  void retire() {
    std::lock_guard lock(mutex_);
    dead_ = true;
    cv_.notify_all();
  }

  /// Blocking mode: waits until every accepted frame reached the fd (or
  /// the sink died) — the teardown barrier that keeps a worker's in-flight
  /// flush from outliving the connection.
  void drain() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] {
      return dead_ || (pending_.empty() && !flushing_);
    });
  }

  [[nodiscard]] bool dead() const {
    std::lock_guard lock(mutex_);
    return dead_;
  }

  [[nodiscard]] std::size_t pending_bytes() const {
    std::lock_guard lock(mutex_);
    return pending_bytes_;
  }

  [[nodiscard]] bool want_write() const {
    std::lock_guard lock(mutex_);
    return !dead_ && pending_bytes_ > 0;
  }

  /// True when frames have been pending without a single byte of progress
  /// for longer than `timeout` — the stalled-reader predicate.
  [[nodiscard]] bool stalled(std::chrono::seconds timeout) const {
    std::lock_guard lock(mutex_);
    return !dead_ && pending_bytes_ > 0 &&
           Clock::now() - last_progress_ > timeout;
  }

 private:
  /// Blocking-mode flusher; entered with the lock held and flushing_ just
  /// claimed. Swaps the queue out and writes it unlocked, looping until no
  /// new frames arrived behind its back. Returns the on_dead hook to run
  /// (after unlock) if the peer died mid-flush.
  std::function<void()> flush_locked(std::unique_lock<std::mutex>& lock) {
    while (!pending_.empty() && !dead_) {
      std::deque<std::string> batch;
      batch.swap(pending_);
      lock.unlock();
      bool ok = true;
      for (const std::string& chunk : batch) {
        if (ok) ok = write_all(fd_, chunk);
      }
      lock.lock();
      for (const std::string& chunk : batch) pending_bytes_ -= chunk.size();
      if (!ok) {
        dead_ = true;
        flushing_ = false;
        cv_.notify_all();
        return on_dead_;
      }
    }
    flushing_ = false;
    cv_.notify_all();
    return nullptr;
  }

  void poke_wake() const {
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(wake_fd_, "x", 1);
  }

  const int fd_;
  const std::size_t max_pending_;
  int wake_fd_ = -1;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool dead_ = false;
  bool flushing_ = false;
  std::deque<std::string> pending_;
  std::size_t pending_bytes_ = 0;
  std::size_t front_offset_ = 0;
  Clock::time_point last_progress_ = Clock::now();
  std::function<void()> on_dead_;
};

/// Best-effort request id from a line that failed to parse, so the error
/// frame still names the request when the id token itself was readable.
std::uint64_t best_effort_id(std::string_view line) {
  constexpr std::string_view kSpace = " \t\r\v\f";
  std::size_t pos = 0;
  const auto next_token = [&]() -> std::string_view {
    const std::size_t begin = line.find_first_not_of(kSpace, pos);
    if (begin == std::string_view::npos) {
      pos = line.size();
      return {};
    }
    std::size_t end = line.find_first_of(kSpace, begin);
    if (end == std::string_view::npos) end = line.size();
    pos = end;
    return line.substr(begin, end - begin);
  };
  if (next_token().empty()) return 0;
  return util::parse_u64(next_token()).value_or(0);
}

[[nodiscard]] bool blank_line(std::string_view line) {
  return line.find_first_not_of(" \t\r\v\f") == std::string_view::npos;
}

std::string inflight_quota_message(std::size_t limit) {
  return "SUBMIT rejected: client exceeds max in-flight requests (limit " +
         std::to_string(limit) + ")";
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

std::size_t serve_connection(int in_fd, int out_fd, SweepService& service,
                             const ServerOptions& options) {
  constexpr std::uint64_t kClientId = 0;
  service.register_client(kClientId);
  const Clock::time_point connected_at = Clock::now();
  const auto sink =
      std::make_shared<FrameSink>(out_fd, options.max_client_buffered_bytes);

  // Tickets submitted on this connection, keyed by request id. `inflight`
  // powers CANCEL, duplicate-id rejection, the per-client quota, and the
  // teardown wait; a ticket is erased the moment its done frame is written
  // (pruned, not parked forever). `finished_early` closes the
  // submit/on_done race: a request that completes before the submitting
  // thread re-acquires the lock leaves a marker instead of an erase that
  // found nothing, so the submitter knows not to park a completed ticket in
  // `inflight` forever. Recursive because a done-frame write that kills the
  // sink re-enters through on_dead on the same thread.
  std::recursive_mutex tickets_mutex;
  std::map<std::uint64_t, std::shared_ptr<Ticket>> inflight;
  std::set<std::uint64_t> finished_early;
  std::size_t submitted_count = 0;
  bool cancel_on_teardown = false;  // STOP drains by cancelling, EOF politely

  sink->set_on_dead([&] {
    // The peer stopped reading; nobody will see these cells. Cancel what
    // is in flight so the session's pool goes back to idle.
    std::lock_guard lock(tickets_mutex);
    for (const auto& [id, ticket] : inflight) ticket->cancel();
  });

  const auto process_line = [&](std::string_view line) -> bool {
    if (blank_line(line)) return true;
    RequestLine request;
    try {
      request = parse_request_line(line);
    } catch (const std::exception& error) {
      sink->write_frame(error_frame(best_effort_id(line), error.what()));
      return true;
    }
    switch (request.verb) {
      case RequestLine::Verb::kQuit:
        return false;
      case RequestLine::Verb::kStop: {
        // Single-connection mode: drain this connection (cancelling its
        // work) and propagate the session-wide stop to the embedder.
        sink->write_frame(done_frame(request.id, Summary{}));
        if (options.stop != nullptr) {
          options.stop->store(true, std::memory_order_relaxed);
        }
        cancel_on_teardown = true;
        return false;
      }
      case RequestLine::Verb::kStats: {
        // Answered immediately from this reader thread — a session-wide
        // snapshot must be queryable while a sweep is still in flight (the
        // FrameSink serializes it against concurrently streaming cells).
        SessionStats stats = service.session_stats();
        for (ClientStats& row : stats.clients) {
          if (row.client_id != kClientId) continue;
          row.connected = true;
          row.bytes_queued = sink->pending_bytes();
          row.connected_seconds =
              std::chrono::duration<double>(Clock::now() - connected_at)
                  .count();
        }
        sink->write_frame(stats_frame(request.id, stats));
        return true;
      }
      case RequestLine::Verb::kCancel: {
        std::shared_ptr<Ticket> ticket;
        {
          std::lock_guard lock(tickets_mutex);
          if (const auto it = inflight.find(request.id);
              it != inflight.end()) {
            ticket = it->second;
          }
        }
        if (ticket) {
          ticket->cancel();
        } else {
          sink->write_frame(error_frame(
              request.id, "CANCEL names an unknown or completed request id"));
        }
        return true;
      }
      case RequestLine::Verb::kSubmit:
        break;
    }
    const std::uint64_t id = request.id;
    {
      std::lock_guard lock(tickets_mutex);
      if (inflight.count(id) != 0) {
        sink->write_frame(
            error_frame(id, "SUBMIT reuses an in-flight request id"));
        return true;
      }
      if (options.max_inflight_per_client > 0 &&
          inflight.size() >= options.max_inflight_per_client) {
        sink->write_frame(error_frame(
            id, inflight_quota_message(options.max_inflight_per_client)));
        return true;
      }
    }
    auto ticket = service.submit(
        std::move(request.spec),
        [sink, id](const sweep::Cell& cell) {
          sink->write_frame(cell_frame(id, cell));
        },
        [sink, &tickets_mutex, &inflight, &finished_early,
         id](const Summary& summary) {
          // One critical section for frame + prune: once the client can see
          // the done frame, the id is already free again — a CANCEL or
          // re-SUBMIT racing the completion can never hit the stale ticket.
          std::lock_guard lock(tickets_mutex);
          sink->write_frame(done_frame(id, summary));
          if (inflight.erase(id) == 0) finished_early.insert(id);
        },
        id, kClientId);
    ++submitted_count;
    {
      std::lock_guard lock(tickets_mutex);
      if (finished_early.erase(id) == 0) inflight[id] = ticket;
    }
    if (sink->dead()) ticket->cancel();
    return true;
  };

  std::string buffer;
  char chunk[1 << 16];
  bool discarding = false;  // inside an overlong line, dropping to newline
  bool keep_reading = true;
  while (keep_reading) {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      cancel_on_teardown = true;
      break;
    }
    for (;;) {
      const std::size_t newline = buffer.find('\n');
      if (newline == std::string::npos) break;
      const std::string_view line(buffer.data(), newline);
      if (discarding) {
        discarding = false;  // the oversized line finally ended; drop it
      } else if (!process_line(line)) {
        keep_reading = false;
      }
      buffer.erase(0, newline + 1);
      if (!keep_reading) break;
    }
    if (!keep_reading) break;
    if (discarding) {
      // Still inside the oversized line: keep dropping so the buffer stays
      // bounded no matter how much newline-free garbage streams in.
      buffer.clear();
    } else if (buffer.size() > options.max_line_bytes) {
      // Only the first few tokens can matter for the error frame; never
      // copy the oversized buffer to extract them.
      sink->write_frame(
          error_frame(best_effort_id(std::string_view(buffer).substr(0, 256)),
                      "request line exceeds the size limit"));
      buffer.clear();
      discarding = true;
    }
    const ssize_t got = ::read(in_fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // EOF: drain outstanding work below, then return
    buffer.append(chunk, static_cast<std::size_t>(got));
  }

  // Input is done (QUIT, STOP, or EOF) but submitted requests may still be
  // compiling. No new submissions can arrive, so everything outstanding is
  // in `inflight`; wait() returns only after each request's done frame was
  // accepted by the sink, and drain() then flushes whatever a still-running
  // flusher holds — returning from here cannot race a dangling sink.
  std::vector<std::shared_ptr<Ticket>> to_drain;
  {
    std::lock_guard lock(tickets_mutex);
    to_drain.reserve(inflight.size());
    for (const auto& [id, ticket] : inflight) to_drain.push_back(ticket);
  }
  for (const auto& ticket : to_drain) {
    if (cancel_on_teardown) ticket->cancel();
    (void)ticket->wait();
  }
  sink->drain();
  return submitted_count;
}

namespace {

/// One multiplexed farm connection. Owned (shared) by the event loop and by
/// every submitted ticket's callbacks, so the sink outlives any late
/// frame; the loop's bookkeeping fields (inbuf, reading, fd) are touched by
/// the loop thread only.
struct Connection {
  int fd = -1;
  std::uint64_t client_id = 0;
  std::shared_ptr<FrameSink> sink;
  Clock::time_point connected_at = Clock::now();

  // Loop-thread-only input state.
  std::string inbuf;
  std::size_t scanned = 0;  // newline search resumes here, never rescans
  bool discarding = false;
  bool reading = true;

  /// Recursive: a done-frame write that overflows the sink re-enters
  /// through on_dead -> cancel_inflight on the same thread.
  std::recursive_mutex tickets_mutex;
  std::map<std::uint64_t, std::shared_ptr<Ticket>> inflight;
  std::set<std::uint64_t> finished_early;

  [[nodiscard]] bool inflight_empty() {
    std::lock_guard lock(tickets_mutex);
    return inflight.empty();
  }

  void cancel_inflight() {
    std::lock_guard lock(tickets_mutex);
    for (const auto& [id, ticket] : inflight) ticket->cancel();
  }
};

/// The poll()-driven farm loop state; serve_unix_socket drives exactly one.
class Farm {
 public:
  Farm(std::string path, int listener, int wake_read, int wake_write,
       SweepService& service, const ServerOptions& options)
      : path_(std::move(path)),
        listener_(listener),
        wake_read_(wake_read),
        wake_write_(wake_write),
        service_(service),
        options_(options) {}

  bool run() {
    while (!(draining_ && connections_.empty())) {
      if (options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        begin_drain();
      }
      reap_connections();
      if (draining_ && connections_.empty()) break;
      poll_once();
    }
    if (!draining_) begin_drain();  // cannot happen today; belt and braces
    if (!ok_ && saved_errno_ != 0) errno = saved_errno_;
    return ok_;
  }

 private:
  void begin_drain() {
    if (draining_) return;
    draining_ = true;
    // Stop accepting and release the name first: a drained session must
    // not leave a socket file that connects to nothing.
    if (listener_ >= 0) {
      ::close(listener_);
      listener_ = -1;
    }
    ::unlink(path_.c_str());
    for (const auto& connection : connections_) {
      connection->reading = false;
      connection->cancel_inflight();
    }
  }

  void fail(int error) {
    ok_ = false;
    if (saved_errno_ == 0) saved_errno_ = error;
    begin_drain();
  }

  /// Detaches a misbehaving connection: the sink dies (cancelling its
  /// in-flight work), the fd closes immediately so poll() never waits on it
  /// again, and the Connection lingers only until its tickets finish.
  void detach(Connection& connection) {
    connection.sink->mark_dead();
    connection.reading = false;
    if (connection.fd >= 0) {
      ::close(connection.fd);
      connection.fd = -1;
    }
  }

  /// Per-iteration bookkeeping: stall detection, dead-sink detach, and
  /// removal of connections that finished (input done, tickets done,
  /// frames flushed).
  void reap_connections() {
    const auto timeout = std::chrono::seconds(options_.write_timeout_seconds);
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& connection = **it;
      if (connection.fd >= 0 && options_.write_timeout_seconds > 0 &&
          connection.sink->stalled(timeout)) {
        detach(connection);
      }
      if (connection.fd >= 0 && connection.sink->dead()) {
        detach(connection);
      }
      const bool idle = connection.inflight_empty();
      if (connection.fd < 0) {
        // Already detached: linger until the cancelled tickets finish so a
        // drain never returns with the service mid-request.
        it = idle ? connections_.erase(it) : std::next(it);
        continue;
      }
      if (!connection.reading && idle && !connection.sink->want_write()) {
        connection.sink->retire();
        ::close(connection.fd);
        connection.fd = -1;
        it = connections_.erase(it);
        continue;
      }
      ++it;
    }
  }

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<Connection*> owners;  // parallel to fds; null for non-conns
    fds.reserve(connections_.size() + 2);
    if (listener_ >= 0 && !draining_) {
      fds.push_back({listener_, POLLIN, 0});
      owners.push_back(nullptr);
    }
    fds.push_back({wake_read_, POLLIN, 0});
    owners.push_back(nullptr);
    const std::size_t first_conn = fds.size();
    for (const auto& connection : connections_) {
      if (connection->fd < 0) continue;
      short events = 0;
      if (connection->reading) events |= POLLIN;
      if (connection->sink->want_write()) events |= POLLOUT;
      fds.push_back({connection->fd, events, 0});
      owners.push_back(connection.get());
    }
    // 100ms tick: bounds the latency of the stop flag, stall detection,
    // and ticket-finished cleanup even when no fd fires.
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (ready < 0) {
      if (errno != EINTR) fail(errno);
      return;
    }
    if (ready == 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& entry = fds[i];
      if (entry.revents == 0) continue;
      if (entry.fd == wake_read_) {
        char sinkhole[256];
        while (::read(wake_read_, sinkhole, sizeof(sinkhole)) > 0) {
        }
        continue;
      }
      if (i < first_conn) {
        accept_ready();
        continue;
      }
      Connection* connection = owners[i];
      // A reap above may have closed this fd after poll() returned; the
      // owners pointer stays valid (connections_ holds shared_ptrs and
      // reap runs before poll), but re-check liveness anyway.
      if (connection == nullptr || connection->fd != entry.fd) continue;
      if ((entry.revents & POLLOUT) != 0) connection->sink->on_writable();
      if ((entry.revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          connection->reading) {
        handle_readable(*connection);
      }
    }
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // Surface the failure to the caller: a serve session that silently
        // stopped accepting would strand the rest of a campaign. Drain
        // first so connected clients still get their frames.
        fail(errno);
        return;
      }
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      auto connection = std::make_shared<Connection>();
      connection->fd = fd;
      connection->client_id = next_client_id_++;
      connection->sink = std::make_shared<FrameSink>(
          fd, options_.max_client_buffered_bytes);
      connection->sink->set_wake_fd(wake_write_);
      // on_dead may fire from a worker thread mid-frame; it only touches
      // the ticket map (its own mutex), and the loop's next reap notices
      // dead() and detaches.
      connection->sink->set_on_dead(
          [weak = std::weak_ptr<Connection>(connection)] {
            if (const auto alive = weak.lock()) alive->cancel_inflight();
          });
      service_.register_client(connection->client_id);
      connections_.push_back(std::move(connection));
    }
  }

  void handle_readable(Connection& connection) {
    char chunk[1 << 16];
    // Bounded per wakeup so one firehose client cannot monopolize the
    // loop; poll() immediately reports the fd readable again.
    for (int rounds = 0; rounds < 16 && connection.reading; ++rounds) {
      const ssize_t got = ::read(connection.fd, chunk, sizeof(chunk));
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        detach(connection);  // reset mid-stream: peer is gone
        return;
      }
      if (got == 0) {
        // Orderly EOF: stop reading, let in-flight work finish and flush.
        connection.reading = false;
        return;
      }
      connection.inbuf.append(chunk, static_cast<std::size_t>(got));
      process_buffer(connection);
    }
  }

  void process_buffer(Connection& connection) {
    while (connection.reading) {
      const std::size_t newline =
          connection.inbuf.find('\n', connection.scanned);
      if (newline == std::string::npos) {
        if (connection.discarding) {
          connection.inbuf.clear();
          connection.scanned = 0;
        } else if (connection.inbuf.size() > options_.max_line_bytes) {
          connection.sink->write_frame(error_frame(
              best_effort_id(
                  std::string_view(connection.inbuf).substr(0, 256)),
              "request line exceeds the size limit"));
          connection.inbuf.clear();
          connection.scanned = 0;
          connection.discarding = true;
        } else {
          connection.scanned = connection.inbuf.size();
        }
        return;
      }
      const std::string_view line(connection.inbuf.data(), newline);
      if (connection.discarding) {
        connection.discarding = false;  // the oversized line finally ended
      } else {
        handle_line(connection, line);
      }
      connection.inbuf.erase(0, newline + 1);
      connection.scanned = 0;
    }
  }

  void handle_line(Connection& connection, std::string_view line) {
    if (blank_line(line)) return;
    const std::shared_ptr<FrameSink>& sink = connection.sink;
    RequestLine request;
    try {
      request = parse_request_line(line);
    } catch (const std::exception& error) {
      sink->write_frame(error_frame(best_effort_id(line), error.what()));
      return;
    }
    switch (request.verb) {
      case RequestLine::Verb::kQuit:
        connection.reading = false;
        return;
      case RequestLine::Verb::kStop:
        // Acknowledge before draining so the requester sees the ack even
        // though drain stops all reading; the frame flushes with the rest.
        sink->write_frame(done_frame(request.id, Summary{}));
        begin_drain();
        return;
      case RequestLine::Verb::kStats:
        sink->write_frame(
            stats_frame(request.id, snapshot_stats()));
        return;
      case RequestLine::Verb::kCancel: {
        std::shared_ptr<Ticket> ticket;
        {
          std::lock_guard lock(connection.tickets_mutex);
          if (const auto it = connection.inflight.find(request.id);
              it != connection.inflight.end()) {
            ticket = it->second;
          }
        }
        if (ticket) {
          ticket->cancel();
        } else {
          sink->write_frame(error_frame(
              request.id, "CANCEL names an unknown or completed request id"));
        }
        return;
      }
      case RequestLine::Verb::kSubmit:
        break;
    }
    const std::uint64_t id = request.id;
    {
      std::lock_guard lock(connection.tickets_mutex);
      if (connection.inflight.count(id) != 0) {
        sink->write_frame(
            error_frame(id, "SUBMIT reuses an in-flight request id"));
        return;
      }
      if (options_.max_inflight_per_client > 0 &&
          connection.inflight.size() >= options_.max_inflight_per_client) {
        sink->write_frame(error_frame(
            id, inflight_quota_message(options_.max_inflight_per_client)));
        return;
      }
    }
    // Callbacks share ownership of the Connection, so a ticket finishing
    // after detach still has a (dead, harmless) sink to drop frames into.
    auto shared = shared_connection(connection);
    auto ticket = service_.submit(
        std::move(request.spec),
        [sink, id](const sweep::Cell& cell) {
          sink->write_frame(cell_frame(id, cell));
        },
        [shared, id](const Summary& summary) {
          // Frame + prune in one critical section: a CANCEL or re-SUBMIT
          // racing the completion blocks on the mutex until the id is
          // pruned, so it can never hit the stale ticket. The enqueue also
          // pokes the wake pipe *before* the erase, so the loop cannot
          // miss the transition to idle and close the pipe under a later
          // poke.
          std::lock_guard lock(shared->tickets_mutex);
          shared->sink->write_frame(done_frame(id, summary));
          if (shared->inflight.erase(id) == 0) {
            shared->finished_early.insert(id);
          }
        },
        id, connection.client_id);
    {
      std::lock_guard lock(connection.tickets_mutex);
      if (connection.finished_early.erase(id) == 0) {
        connection.inflight[id] = ticket;
      }
    }
    if (sink->dead()) ticket->cancel();
  }

  [[nodiscard]] std::shared_ptr<Connection> shared_connection(
      Connection& connection) const {
    for (const auto& candidate : connections_) {
      if (candidate.get() == &connection) return candidate;
    }
    return nullptr;  // unreachable: handle_line runs on listed connections
  }

  /// The service's session totals with the connection-level columns only
  /// the server knows (unflushed bytes, connection age) overlaid for every
  /// still-connected client.
  [[nodiscard]] SessionStats snapshot_stats() const {
    SessionStats stats = service_.session_stats();
    const Clock::time_point now = Clock::now();
    for (ClientStats& row : stats.clients) {
      for (const auto& connection : connections_) {
        if (connection->client_id != row.client_id || connection->fd < 0) {
          continue;
        }
        row.connected = true;
        row.bytes_queued = connection->sink->pending_bytes();
        row.connected_seconds =
            std::chrono::duration<double>(now - connection->connected_at)
                .count();
      }
    }
    return stats;
  }

  const std::string path_;
  int listener_;
  const int wake_read_;
  const int wake_write_;
  SweepService& service_;
  const ServerOptions& options_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::uint64_t next_client_id_ = 1;  // 0 is the stdio/legacy client
  bool draining_ = false;
  bool ok_ = true;
  int saved_errno_ = 0;
};

}  // namespace

bool serve_unix_socket(const std::string& path, SweepService& service,
                       const ServerOptions& options) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return false;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0 || !set_nonblocking(listener)) {
    const int saved = errno;
    ::close(listener);
    ::unlink(path.c_str());  // listen/fcntl failure leaves the bound file
    errno = saved;
    return false;
  }
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0 || !set_nonblocking(wake[0]) ||
      !set_nonblocking(wake[1])) {
    const int saved = errno;
    if (wake[0] >= 0) ::close(wake[0]);
    if (wake[1] >= 0) ::close(wake[1]);
    ::close(listener);
    ::unlink(path.c_str());
    errno = saved;
    return false;
  }
  Farm farm(path, listener, wake[0], wake[1], service, options);
  const bool ok = farm.run();
  const int saved = errno;
  ::close(wake[0]);
  ::close(wake[1]);
  errno = saved;
  return ok;
}

}  // namespace parallax::serve
