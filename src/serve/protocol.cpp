#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "cache/serialize.hpp"
#include "shard/shard.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace parallax::serve {

namespace {

using cache::Reader;
using cache::Writer;

constexpr std::uint64_t kMagic = 0x3145565245535850ULL;  // "PXSERVE1" LE
/// Frames larger than this are rejected before allocation — far beyond any
/// real cell or summary, small enough that a corrupt size field cannot ask
/// a client to buffer terabytes.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 33;

std::string frame(FrameType type, std::uint64_t request_id,
                  const std::string& payload) {
  Writer writer;
  writer.u64(kMagic);
  writer.u32(kServeVersion);
  writer.u32(static_cast<std::uint32_t>(type));
  writer.u64(request_id);
  writer.u64(payload.size());
  writer.u64(util::checksum64(payload.data(), payload.size()));
  return writer.take() + payload;
}

void encode_summary(Writer& writer, const Summary& summary) {
  writer.u64(summary.total_cells);
  writer.u64(summary.executed_cells);
  writer.u64(summary.failed_cells);
  writer.u64(summary.cancelled_cells);
  writer.u64(summary.result_cache_hits);
  writer.u64(summary.result_cache_misses);
  writer.u64(summary.placement_disk_hits);
  writer.u64(summary.anneals);
  writer.boolean(summary.cancelled);
  writer.f64(summary.wall_seconds);
  writer.str(summary.error);
}

Summary decode_summary(Reader& reader) {
  Summary summary;
  summary.total_cells = reader.u64();
  summary.executed_cells = reader.u64();
  summary.failed_cells = reader.u64();
  summary.cancelled_cells = reader.u64();
  summary.result_cache_hits = reader.u64();
  summary.result_cache_misses = reader.u64();
  summary.placement_disk_hits = reader.u64();
  summary.anneals = reader.u64();
  summary.cancelled = reader.boolean();
  summary.wall_seconds = reader.f64();
  summary.error = reader.str();
  return summary;
}

void encode_session_stats(Writer& writer, const SessionStats& stats) {
  writer.u64(stats.requests);
  writer.u64(stats.cells_executed);
  writer.u64(stats.cells_failed);
  writer.u64(stats.result_cache_hits);
  writer.u64(stats.result_cache_misses);
  writer.u64(stats.placement_cache_hits);
  writer.u64(stats.placement_cache_misses);
  writer.u64(stats.anneals);
  writer.u64(stats.threads);
  writer.boolean(stats.cache_enabled);
  writer.f64(stats.uptime_seconds);
  writer.u64(stats.clients.size());
  for (const ClientStats& client : stats.clients) {
    writer.u64(client.client_id);
    writer.u64(client.requests);
    writer.u64(client.cells_executed);
    writer.u64(client.anneals);
    writer.u64(client.bytes_queued);
    writer.f64(client.connected_seconds);
    writer.boolean(client.connected);
  }
}

SessionStats decode_session_stats(Reader& reader) {
  SessionStats stats;
  stats.requests = reader.u64();
  stats.cells_executed = reader.u64();
  stats.cells_failed = reader.u64();
  stats.result_cache_hits = reader.u64();
  stats.result_cache_misses = reader.u64();
  stats.placement_cache_hits = reader.u64();
  stats.placement_cache_misses = reader.u64();
  stats.anneals = reader.u64();
  stats.threads = reader.u64();
  stats.cache_enabled = reader.boolean();
  stats.uptime_seconds = reader.f64();
  const std::uint64_t n_clients = reader.u64();
  stats.clients.reserve(n_clients);
  for (std::uint64_t i = 0; i < n_clients; ++i) {
    ClientStats client;
    client.client_id = reader.u64();
    client.requests = reader.u64();
    client.cells_executed = reader.u64();
    client.anneals = reader.u64();
    client.bytes_queued = reader.u64();
    client.connected_seconds = reader.f64();
    client.connected = reader.boolean();
    stats.clients.push_back(client);
  }
  return stats;
}

}  // namespace

std::string submit_line(std::uint64_t id, const shard::SweepSpec& spec) {
  return "SUBMIT " + std::to_string(id) + ' ' +
         hex_encode(shard::serialize_sweep_spec(spec)) + '\n';
}

std::string cancel_line(std::uint64_t id) {
  return "CANCEL " + std::to_string(id) + '\n';
}

std::string stats_line(std::uint64_t id) {
  return "STATS " + std::to_string(id) + '\n';
}

std::string stop_line(std::uint64_t id) {
  return "STOP " + std::to_string(id) + '\n';
}

std::string quit_line() { return "QUIT\n"; }

namespace {

/// Whitespace-delimited tokens over the request line, yielded as views into
/// the caller's buffer. A SUBMIT line is dominated by its spec hex — often
/// megabytes — so the parser must never copy the line (the istringstream it
/// replaced duplicated the whole buffer before reading one verb).
class LineTokenizer {
 public:
  explicit LineTokenizer(std::string_view line) : line_(line) {}

  /// The next token, or an empty view once the line is exhausted (empty
  /// tokens cannot otherwise occur).
  [[nodiscard]] std::string_view next() noexcept {
    constexpr std::string_view kSpace = " \t\r\v\f";
    const std::size_t begin = line_.find_first_not_of(kSpace, pos_);
    if (begin == std::string_view::npos) {
      pos_ = line_.size();
      return {};
    }
    std::size_t end = line_.find_first_of(kSpace, begin);
    if (end == std::string_view::npos) end = line_.size();
    pos_ = end;
    return line_.substr(begin, end - begin);
  }

  [[nodiscard]] bool exhausted() noexcept { return next().empty(); }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

}  // namespace

RequestLine parse_request_line(std::string_view line) {
  LineTokenizer tokens(line);
  const std::string_view verb = tokens.next();
  if (verb.empty()) throw ServeError("empty request line");
  RequestLine request;
  if (verb == "QUIT") {
    if (!tokens.exhausted()) throw ServeError("QUIT takes no arguments");
    request.verb = RequestLine::Verb::kQuit;
    return request;
  }
  const bool is_submit = verb == "SUBMIT";
  if (!is_submit && verb != "CANCEL" && verb != "STATS" && verb != "STOP") {
    throw ServeError("unknown request verb '" + std::string(verb) +
                     "' (use SUBMIT, CANCEL, STATS, STOP, QUIT)");
  }
  const std::string_view id_token = tokens.next();
  if (id_token.empty()) {
    throw ServeError(std::string(verb) + " needs a request id");
  }
  const auto id = util::parse_u64(id_token);
  if (!id) {
    throw ServeError(std::string(verb) + " request id '" +
                     std::string(id_token) +
                     "' is not a non-negative integer");
  }
  request.id = *id;
  if (!is_submit) {
    if (!tokens.exhausted()) {
      throw ServeError(std::string(verb) + " takes only a request id");
    }
    request.verb = verb == "CANCEL"  ? RequestLine::Verb::kCancel
                   : verb == "STATS" ? RequestLine::Verb::kStats
                                     : RequestLine::Verb::kStop;
    return request;
  }
  const std::string_view payload_token = tokens.next();
  if (payload_token.empty()) {
    throw ServeError("SUBMIT needs a hex-encoded sweep spec");
  }
  if (!tokens.exhausted()) {
    throw ServeError("SUBMIT takes exactly id and spec hex");
  }
  const auto bytes = hex_decode(payload_token);
  if (!bytes) {
    throw ServeError("SUBMIT payload is not valid hex");
  }
  request.verb = RequestLine::Verb::kSubmit;
  request.spec = shard::parse_sweep_spec(*bytes);
  return request;
}

std::string cell_frame(std::uint64_t request_id, const sweep::Cell& cell) {
  Writer writer;
  shard::encode_cell(writer, cell);
  return frame(FrameType::kCell, request_id, writer.take());
}

std::string done_frame(std::uint64_t request_id, const Summary& summary) {
  Writer writer;
  encode_summary(writer, summary);
  return frame(FrameType::kDone, request_id, writer.take());
}

std::string stats_frame(std::uint64_t request_id, const SessionStats& stats) {
  Writer writer;
  encode_session_stats(writer, stats);
  return frame(FrameType::kStats, request_id, writer.take());
}

std::string error_frame(std::uint64_t request_id, std::string_view message) {
  Writer writer;
  writer.str(message);
  return frame(FrameType::kError, request_id, writer.take());
}

FrameHeader parse_frame_header(std::string_view bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    throw ServeError("serve frame header has the wrong size");
  }
  Reader reader(bytes);
  if (reader.u64() != kMagic) throw ServeError("not a parallax serve frame");
  if (reader.u32() != kServeVersion) {
    throw ServeError("serve frame from an incompatible version");
  }
  const std::uint32_t type = reader.u32();
  if (type != static_cast<std::uint32_t>(FrameType::kCell) &&
      type != static_cast<std::uint32_t>(FrameType::kDone) &&
      type != static_cast<std::uint32_t>(FrameType::kStats) &&
      type != static_cast<std::uint32_t>(FrameType::kError)) {
    throw ServeError("serve frame has an unknown type");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.request_id = reader.u64();
  header.payload_size = reader.u64();
  header.checksum = reader.u64();
  if (header.payload_size > kMaxPayloadBytes) {
    throw ServeError("serve frame declares an implausibly large payload");
  }
  return header;
}

Frame decode_frame(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_size) {
    throw ServeError("serve frame payload size mismatch");
  }
  if (util::checksum64(payload.data(), payload.size()) != header.checksum) {
    throw ServeError("serve frame payload checksum mismatch");
  }
  Frame result;
  result.type = header.type;
  result.request_id = header.request_id;
  Reader reader(payload);
  switch (header.type) {
    case FrameType::kCell:
      result.cell = shard::decode_cell(reader);
      break;
    case FrameType::kDone:
      result.summary = decode_summary(reader);
      break;
    case FrameType::kStats:
      result.stats = decode_session_stats(reader);
      break;
    case FrameType::kError:
      result.message = reader.str();
      break;
  }
  reader.expect_end();
  return result;
}

std::string hex_encode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xf]);
  }
  return hex;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + offset, bytes.size() - offset,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, bytes.data() + offset, bytes.size() - offset);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    offset += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, std::string& out, std::size_t n) {
  const std::size_t start = out.size();
  out.resize(start + n);
  std::size_t offset = 0;
  while (offset < n) {
    const ssize_t got = ::read(fd, out.data() + start + offset, n - offset);
    if (got < 0) {
      if (errno == EINTR) continue;
      out.resize(start);
      return false;
    }
    if (got == 0) {
      out.resize(start);
      return false;
    }
    offset += static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace parallax::serve
