#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace parallax::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw ServeError("serve socket path too long: " + socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ServeError(std::string("cannot create a unix socket: ") +
                     std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw ServeError("cannot connect to serve socket '" + socket_path +
                     "': " + std::strerror(saved));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::quit() {
  if (!write_all(fd_, quit_line())) {
    throw ServeError("cannot write to the serve connection");
  }
}

void Client::stop() {
  const std::uint64_t id = ++last_id_;
  if (!write_all(fd_, stop_line(id))) {
    throw ServeError("cannot write to the serve connection");
  }
  std::string bytes;
  if (!read_exact(fd_, bytes, kFrameHeaderBytes)) {
    throw ServeError("serve connection closed mid-response");
  }
  const FrameHeader header = parse_frame_header(bytes);
  std::string payload;
  if (!read_exact(fd_, payload,
                  static_cast<std::size_t>(header.payload_size))) {
    throw ServeError("serve connection closed mid-frame");
  }
  const Frame frame = decode_frame(header, payload);
  if (frame.request_id != id) {
    throw ServeError("serve response names an unexpected request id");
  }
  if (frame.type == FrameType::kError) {
    throw ServeError("serve stop request rejected: " + frame.message);
  }
  if (frame.type != FrameType::kDone) {
    throw ServeError("serve answered STOP with the wrong frame type");
  }
}

SessionStats Client::stats() {
  const std::uint64_t id = ++last_id_;
  if (!write_all(fd_, stats_line(id))) {
    throw ServeError("cannot write to the serve connection");
  }
  std::string bytes;
  if (!read_exact(fd_, bytes, kFrameHeaderBytes)) {
    throw ServeError("serve connection closed mid-response");
  }
  const FrameHeader header = parse_frame_header(bytes);
  std::string payload;
  if (!read_exact(fd_, payload,
                  static_cast<std::size_t>(header.payload_size))) {
    throw ServeError("serve connection closed mid-frame");
  }
  const Frame frame = decode_frame(header, payload);
  if (frame.request_id != id) {
    throw ServeError("serve response names an unexpected request id");
  }
  if (frame.type == FrameType::kError) {
    throw ServeError("serve stats request rejected: " + frame.message);
  }
  if (frame.type != FrameType::kStats) {
    throw ServeError("serve answered STATS with the wrong frame type");
  }
  return frame.stats;
}

ClientOutcome Client::run(
    const shard::SweepSpec& spec,
    const std::function<void(const sweep::Cell&)>& on_cell) {
  const std::uint64_t id = ++last_id_;
  if (!write_all(fd_, submit_line(id, spec))) {
    throw ServeError("cannot write to the serve connection");
  }

  const std::size_t n_techniques = spec.techniques.size();
  const std::size_t n_machines = spec.machines.size();
  const std::size_t total = spec.total_cells();

  ClientOutcome outcome;
  outcome.result.cells.resize(total);
  std::vector<char> placed(total, 0);

  bool done = false;
  while (!done) {
    std::string bytes;
    if (!read_exact(fd_, bytes, kFrameHeaderBytes)) {
      throw ServeError("serve connection closed mid-response");
    }
    const FrameHeader header = parse_frame_header(bytes);
    std::string payload;
    if (!read_exact(fd_, payload,
                    static_cast<std::size_t>(header.payload_size))) {
      throw ServeError("serve connection closed mid-frame");
    }
    Frame frame = decode_frame(header, payload);
    if (frame.request_id != id) {
      // One request per connection at a time; anything else is a protocol
      // violation (including id-0 error frames for lines we never sent).
      throw ServeError("serve response names an unexpected request id");
    }
    switch (frame.type) {
      case FrameType::kError:
        throw ServeError("serve request rejected: " + frame.message);
      case FrameType::kStats:
        // Stats frames only answer STATS lines; one mid-run is a protocol
        // violation like any other unexpected frame.
        throw ServeError("serve streamed a stats frame into a SUBMIT");
      case FrameType::kDone:
        outcome.summary = std::move(frame.summary);
        done = true;
        break;
      case FrameType::kCell: {
        sweep::Cell& cell = frame.cell;
        if (cell.circuit_index >= spec.circuits.size() ||
            cell.technique_index >= n_techniques ||
            cell.machine_index >= n_machines) {
          throw ServeError("streamed cell indexes outside the request matrix");
        }
        const std::size_t flat =
            (cell.circuit_index * n_techniques + cell.technique_index) *
                n_machines +
            cell.machine_index;
        if (placed[flat] != 0) {
          throw ServeError("server streamed the same cell twice");
        }
        placed[flat] = 1;
        outcome.result.cells[flat] = std::move(cell);
        if (on_cell) on_cell(outcome.result.cells[flat]);
        break;
      }
    }
  }

  // Label the cells the server never streamed (a cancelled request) the
  // way sweep::run labels them, so the reassembled Result is shaped
  // identically either way.
  for (std::size_t flat = 0; flat < total; ++flat) {
    if (placed[flat] != 0) continue;
    sweep::Cell& cell = outcome.result.cells[flat];
    const std::size_t per_circuit = n_techniques * n_machines;
    cell.circuit_index = flat / per_circuit;
    cell.technique_index = (flat % per_circuit) / n_machines;
    cell.machine_index = flat % n_machines;
    cell.circuit = spec.circuits[cell.circuit_index].name;
    cell.technique = spec.techniques[cell.technique_index];
    cell.machine = spec.machines[cell.machine_index].name;
    cell.cancelled = outcome.summary.cancelled;
    cell.skipped = !outcome.summary.cancelled;
  }
  outcome.result.cancelled = outcome.summary.cancelled;
  outcome.result.result_cache_hits = outcome.summary.result_cache_hits;
  outcome.result.result_cache_misses = outcome.summary.result_cache_misses;
  outcome.result.placement_disk_hits = outcome.summary.placement_disk_hits;
  outcome.result.anneals = static_cast<std::size_t>(outcome.summary.anneals);
  outcome.result.wall_seconds = outcome.summary.wall_seconds;
  return outcome;
}

}  // namespace parallax::serve
