// Wire protocol for the sweep-serving layer.
//
// Requests travel client -> server as newline-terminated text lines, so a
// request stream is greppable, scriptable (`printf ... | parallax serve`),
// and trivially framed:
//   SUBMIT <id> <hex>     submit a sweep; <hex> is the framed, checksummed
//                         shard/spec.hpp sweep-spec serialization
//                         (serialize_sweep_spec) in lowercase hex
//   CANCEL <id>           cooperatively cancel an in-flight request
//   STATS <id>            query session-wide accounting (requests served,
//                         cells executed, cache hit/anneal counters, and
//                         per-client rows since v3)
//   STOP <id>             gracefully drain the whole session: the listener
//                         stops accepting, in-flight tickets are cancelled,
//                         every connection's done frames flush, the socket
//                         file is unlinked; acknowledged with a kDone frame
//   QUIT                  stop this connection after draining its requests
//
// Responses travel server -> client as length-prefixed binary frames, each
// a fixed 40-byte header (magic, version, type, request id, payload size,
// 64-bit payload checksum) followed by the payload:
//   kCell   one completed sweep cell (shard::encode_cell bytes), streamed
//           as it finishes — completion order, not matrix order
//   kDone   the request's completion summary; exactly one per request,
//           after its last kCell frame
//   kStats  the session-wide accounting snapshot answering a STATS line
//   kError  a rejected request line / unknown id / service failure; the
//           connection survives (request id 0 when the line was too
//           malformed to carry one)
//
// Malformed bytes in either direction throw ServeError (or cache::ReadError
// from the nested codecs); the server converts per-line failures into
// kError frames, while clients treat any response-side violation as fatal
// for the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "shard/spec.hpp"
#include "sweep/sweep.hpp"

namespace parallax::serve {

/// Protocol-level failure: malformed frames, checksum mismatches, broken
/// connections, or a server-reported request failure surfaced by a client.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bump to retire every peer speaking an older framing (encoding change).
/// v2: STATS request verb + kStats response frame.
/// v3: multi-tenant farm — per-client rows in the kStats payload and the
///     STOP (graceful session drain) request verb.
inline constexpr std::uint32_t kServeVersion = 3;

enum class FrameType : std::uint32_t {
  kCell = 1,
  kDone = 2,
  kError = 3,
  kStats = 4,
};

/// One client's row of the kStats payload (v3). Request/cell/anneal
/// counters cover the client's *completed* requests, so summing the rows
/// reproduces the session totals exactly; the connection-level fields
/// (bytes queued, connected seconds) describe the live connection and are
/// zero once the client disconnected (rows outlive their connections —
/// accounting never vanishes with a departing peer).
struct ClientStats {
  std::uint64_t client_id = 0;
  std::uint64_t requests = 0;
  std::uint64_t cells_executed = 0;
  std::uint64_t anneals = 0;
  /// Frame bytes accepted for this client but not yet written to its
  /// socket (the backpressure quantity the per-client byte quota bounds).
  std::uint64_t bytes_queued = 0;
  double connected_seconds = 0.0;
  bool connected = false;
};

/// Session-wide accounting snapshot — the kStats payload. Counters cover
/// every request the service completed since it started; the cache counters
/// are the session CompilationCache's own hit/miss tallies (all zero when
/// the service runs cacheless).
struct SessionStats {
  std::uint64_t requests = 0;
  std::uint64_t cells_executed = 0;
  std::uint64_t cells_failed = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t placement_cache_hits = 0;
  std::uint64_t placement_cache_misses = 0;
  /// Graphine anneals the session actually paid for across all requests.
  std::uint64_t anneals = 0;
  std::uint64_t threads = 0;
  bool cache_enabled = false;
  double uptime_seconds = 0.0;
  /// v3: one row per client the session has ever served, ascending
  /// client_id. The request/cell/anneal columns sum to the totals above.
  std::vector<ClientStats> clients;
};

/// Per-request completion summary — the kDone payload.
struct Summary {
  std::uint64_t total_cells = 0;
  /// Cells that actually ran (cache hits and failed cells included).
  std::uint64_t executed_cells = 0;
  std::uint64_t failed_cells = 0;
  /// Cells never started because the request was cancelled.
  std::uint64_t cancelled_cells = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t placement_disk_hits = 0;
  /// Graphine anneals this request actually paid for — 0 for a request
  /// fully served from the session cache.
  std::uint64_t anneals = 0;
  bool cancelled = false;
  double wall_seconds = 0.0;
  /// Non-empty when the request failed as a whole (unknown technique,
  /// service shutdown) — per-cell compile errors live in the cells instead.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

// --- request lines (client -> server) -----------------------------------------

struct RequestLine {
  enum class Verb { kSubmit, kCancel, kStats, kStop, kQuit };
  Verb verb = Verb::kQuit;
  std::uint64_t id = 0;
  /// kSubmit only.
  shard::SweepSpec spec;
};

[[nodiscard]] std::string submit_line(std::uint64_t id,
                                      const shard::SweepSpec& spec);
[[nodiscard]] std::string cancel_line(std::uint64_t id);
[[nodiscard]] std::string stats_line(std::uint64_t id);
[[nodiscard]] std::string stop_line(std::uint64_t id);
[[nodiscard]] std::string quit_line();

/// Parses one request line (no trailing newline). Throws ServeError on an
/// unknown verb, malformed id, or bad hex, and cache::ReadError /
/// shard::ShardError from the spec payload itself.
[[nodiscard]] RequestLine parse_request_line(std::string_view line);

// --- response frames (server -> client) ---------------------------------------

inline constexpr std::size_t kFrameHeaderBytes = 40;

struct FrameHeader {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

/// One decoded response frame; the payload field matching `type` is set.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  sweep::Cell cell;     // kCell
  Summary summary;      // kDone
  SessionStats stats;   // kStats
  std::string message;  // kError
};

[[nodiscard]] std::string cell_frame(std::uint64_t request_id,
                                     const sweep::Cell& cell);
[[nodiscard]] std::string done_frame(std::uint64_t request_id,
                                     const Summary& summary);
[[nodiscard]] std::string stats_frame(std::uint64_t request_id,
                                      const SessionStats& stats);
[[nodiscard]] std::string error_frame(std::uint64_t request_id,
                                      std::string_view message);

/// Parses exactly kFrameHeaderBytes of header. Throws ServeError on bad
/// magic, version drift, an unknown type, or an implausible payload size.
[[nodiscard]] FrameHeader parse_frame_header(std::string_view bytes);
/// Validates the payload against its header (checksum) and decodes it.
[[nodiscard]] Frame decode_frame(const FrameHeader& header,
                                 std::string_view payload);

// --- helpers ------------------------------------------------------------------

[[nodiscard]] std::string hex_encode(std::string_view bytes);
/// Strict: even length, hex digits only. nullopt otherwise.
[[nodiscard]] std::optional<std::string> hex_decode(std::string_view hex);

/// Full write with EINTR retry; uses send(MSG_NOSIGNAL) on sockets so a
/// vanished peer is an error return, never a SIGPIPE kill.
[[nodiscard]] bool write_all(int fd, std::string_view bytes);
/// Appends exactly `n` bytes from fd to `out`; false on EOF or error.
[[nodiscard]] bool read_exact(int fd, std::string& out, std::size_t n);

}  // namespace parallax::serve
