// The long-lived sweep-serving session: one SweepService owns one
// cache::CompilationCache (the session state) and one persistent
// util::ThreadPool, and executes submitted SweepSpecs through sweep::run,
// streaming each Cell to the submitter's callback as it completes.
//
// Why a service beats a batch job: the cache makes requests incremental
// across the session (and across restarts, through its disk tier). A
// request that overlaps an earlier one is served from whole-cell result
// hits — zero anneals, byte-identical cells — and the cache's in-memory LRU
// doubles as the hot working set. Cancellation is cooperative and cheap:
// cells not yet started never run, so aborting an in-flight request costs
// at most one cell's compile time.
//
// Execution model: requests run one at a time on a dedicated dispatcher
// thread; each request's cells fan out across the shared pool. Serializing
// requests is deliberate — overlapping sweeps would fight for the same
// cores, and the second of two overlapping requests is exactly the case the
// result cache turns into a no-compute replay. Across clients the
// dispatcher is fair-share, not FIFO: each client has its own queue and the
// dispatcher round-robins over clients in ascending id order, so one tenant
// queueing a hundred sweeps cannot starve another's first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "serve/protocol.hpp"
#include "shard/spec.hpp"
#include "sweep/sweep.hpp"
#include "technique/registry.hpp"
#include "util/thread_pool.hpp"

namespace parallax::serve {

struct ServiceOptions {
  /// Persistent worker threads; 0 selects hardware concurrency.
  std::size_t n_threads = 0;
  /// The session state. Null serves every request cold (still correct —
  /// only the overlap-replay property is lost).
  std::shared_ptr<cache::CompilationCache> cache;
};

/// Handle to one submitted request. Thread-safe.
class Ticket {
 public:
  /// Requests cooperative cancellation: cells not yet started are skipped;
  /// the in-flight cell (if any) completes. Idempotent, callable from any
  /// thread, including from the request's own on_cell callback.
  void cancel() noexcept { token_->store(true, std::memory_order_relaxed); }

  /// Blocks until the request finished (completed, failed, or cancelled).
  /// By then every on_cell/on_done callback has returned.
  const Summary& wait();

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t client_id() const noexcept { return client_id_; }

 private:
  friend class SweepService;

  Ticket(std::uint64_t id, std::uint64_t client_id, shard::SweepSpec spec,
         std::function<void(const sweep::Cell&)> on_cell,
         std::function<void(const Summary&)> on_done);
  /// Publishes the summary: runs on_done, then releases wait()ers.
  void finish(Summary summary);

  const std::uint64_t id_;
  const std::uint64_t client_id_;
  shard::SweepSpec spec_;
  std::function<void(const sweep::Cell&)> on_cell_;
  std::function<void(const Summary&)> on_done_;
  std::shared_ptr<std::atomic<bool>> token_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Summary summary_;
};

class SweepService {
 public:
  explicit SweepService(
      ServiceOptions options = {},
      const technique::Registry& registry = technique::Registry::global());
  /// Cancels the in-flight request and every queue (their waiters all
  /// release, summaries marked cancelled), then joins the dispatcher.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Enqueues a request on `client_id`'s queue. Never blocks on
  /// compilation. `on_cell` fires once per executed cell from worker
  /// threads (see sweep::Options::on_cell for the concurrency contract);
  /// `on_done` fires exactly once, from the dispatcher thread, after the
  /// last on_cell and before wait() releases. `id` is an opaque caller
  /// label carried into Ticket::id(); requests sharing a client id execute
  /// in submission order relative to each other.
  std::shared_ptr<Ticket> submit(
      shard::SweepSpec spec,
      std::function<void(const sweep::Cell&)> on_cell = {},
      std::function<void(const Summary&)> on_done = {}, std::uint64_t id = 0,
      std::uint64_t client_id = 0);

  /// Ensures `client_id` has an accounting row (all-zero until its first
  /// request completes). The server calls this at accept time so a STATS
  /// snapshot lists connected-but-idle clients too. Rows are never removed:
  /// a disconnected client's work stays attributed, which is what keeps the
  /// per-client columns summing to the session totals.
  void register_client(std::uint64_t client_id);

  [[nodiscard]] const std::shared_ptr<cache::CompilationCache>& cache()
      const noexcept {
    return options_.cache;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Session-wide accounting since construction: completed requests, cells
  /// executed/failed, anneals paid, the session cache's own hit/miss
  /// counters, and one ClientStats row per registered client (ascending
  /// client_id; connection-level fields left zero — the server overlays
  /// those, since only it knows about sockets). Callable from any thread
  /// while a sweep is in flight.
  [[nodiscard]] SessionStats session_stats() const;

 private:
  /// Per-client ledger folded in on the dispatcher thread as each request
  /// completes, so one mutex acquisition per *request* — not per cell.
  struct ClientAccount {
    std::uint64_t requests = 0;
    std::uint64_t cells_executed = 0;
    std::uint64_t anneals = 0;
  };

  void dispatch_loop();
  [[nodiscard]] Summary execute(Ticket& ticket);
  /// The next ticket under the fair-share policy: the first non-empty
  /// queue whose client id follows last_served_ in ascending-wrapping
  /// order. Caller holds mutex_; returns null when every queue is empty.
  [[nodiscard]] std::shared_ptr<Ticket> pop_next_locked();

  ServiceOptions options_;
  const technique::Registry& registry_;
  util::ThreadPool pool_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  // Session accounting, folded in as each request completes.
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> cells_executed_{0};
  std::atomic<std::uint64_t> cells_failed_{0};
  std::atomic<std::uint64_t> anneals_{0};

  mutable std::mutex accounts_mutex_;
  std::map<std::uint64_t, ClientAccount> accounts_;

  std::mutex mutex_;
  std::condition_variable cv_;
  /// One FIFO per client; fairness happens across the map, order within a
  /// client's own queue is preserved.
  std::map<std::uint64_t, std::deque<std::shared_ptr<Ticket>>> queues_;
  std::size_t queued_ = 0;
  std::uint64_t last_served_ = 0;
  std::shared_ptr<Ticket> running_;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace parallax::serve
