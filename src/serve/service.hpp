// The long-lived sweep-serving session: one SweepService owns one
// cache::CompilationCache (the session state) and one persistent
// util::ThreadPool, and executes submitted SweepSpecs through sweep::run,
// streaming each Cell to the submitter's callback as it completes.
//
// Why a service beats a batch job: the cache makes requests incremental
// across the session (and across restarts, through its disk tier). A
// request that overlaps an earlier one is served from whole-cell result
// hits — zero anneals, byte-identical cells — and the cache's in-memory LRU
// doubles as the hot working set. Cancellation is cooperative and cheap:
// cells not yet started never run, so aborting an in-flight request costs
// at most one cell's compile time.
//
// Execution model: requests run one at a time, FIFO, on a dedicated
// dispatcher thread; each request's cells fan out across the shared pool.
// Serializing requests is deliberate — overlapping sweeps would fight for
// the same cores, and the second of two overlapping requests is exactly the
// case the result cache turns into a no-compute replay.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "cache/cache.hpp"
#include "serve/protocol.hpp"
#include "shard/spec.hpp"
#include "sweep/sweep.hpp"
#include "technique/registry.hpp"
#include "util/thread_pool.hpp"

namespace parallax::serve {

struct ServiceOptions {
  /// Persistent worker threads; 0 selects hardware concurrency.
  std::size_t n_threads = 0;
  /// The session state. Null serves every request cold (still correct —
  /// only the overlap-replay property is lost).
  std::shared_ptr<cache::CompilationCache> cache;
};

/// Handle to one submitted request. Thread-safe.
class Ticket {
 public:
  /// Requests cooperative cancellation: cells not yet started are skipped;
  /// the in-flight cell (if any) completes. Idempotent, callable from any
  /// thread, including from the request's own on_cell callback.
  void cancel() noexcept { token_->store(true, std::memory_order_relaxed); }

  /// Blocks until the request finished (completed, failed, or cancelled).
  /// By then every on_cell/on_done callback has returned.
  const Summary& wait();

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  friend class SweepService;

  Ticket(std::uint64_t id, shard::SweepSpec spec,
         std::function<void(const sweep::Cell&)> on_cell,
         std::function<void(const Summary&)> on_done);
  /// Publishes the summary: runs on_done, then releases wait()ers.
  void finish(Summary summary);

  const std::uint64_t id_;
  shard::SweepSpec spec_;
  std::function<void(const sweep::Cell&)> on_cell_;
  std::function<void(const Summary&)> on_done_;
  std::shared_ptr<std::atomic<bool>> token_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Summary summary_;
};

class SweepService {
 public:
  explicit SweepService(
      ServiceOptions options = {},
      const technique::Registry& registry = technique::Registry::global());
  /// Cancels the in-flight request and the queue (their waiters all
  /// release, summaries marked cancelled), then joins the dispatcher.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Enqueues a request. Never blocks on compilation. `on_cell` fires once
  /// per executed cell from worker threads (see sweep::Options::on_cell for
  /// the concurrency contract); `on_done` fires exactly once, from the
  /// dispatcher thread, after the last on_cell and before wait() releases.
  /// `id` is an opaque caller label carried into Ticket::id().
  std::shared_ptr<Ticket> submit(
      shard::SweepSpec spec,
      std::function<void(const sweep::Cell&)> on_cell = {},
      std::function<void(const Summary&)> on_done = {}, std::uint64_t id = 0);

  [[nodiscard]] const std::shared_ptr<cache::CompilationCache>& cache()
      const noexcept {
    return options_.cache;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Session-wide accounting since construction: completed requests, cells
  /// executed/failed, anneals paid, and the session cache's own hit/miss
  /// counters. Callable from any thread (this is what a STATS request line
  /// reads, answered from the connection's reader thread while a sweep may
  /// be in flight).
  [[nodiscard]] SessionStats session_stats() const;

 private:
  void dispatch_loop();
  [[nodiscard]] Summary execute(Ticket& ticket);

  ServiceOptions options_;
  const technique::Registry& registry_;
  util::ThreadPool pool_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  // Session accounting, folded in as each request completes.
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> cells_executed_{0};
  std::atomic<std::uint64_t> cells_failed_{0};
  std::atomic<std::uint64_t> anneals_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Ticket>> queue_;
  std::shared_ptr<Ticket> running_;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace parallax::serve
