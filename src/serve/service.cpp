#include "serve/service.hpp"

#include <utility>

#include "placement/graphine.hpp"

namespace parallax::serve {

Ticket::Ticket(std::uint64_t id, shard::SweepSpec spec,
               std::function<void(const sweep::Cell&)> on_cell,
               std::function<void(const Summary&)> on_done)
    : id_(id),
      spec_(std::move(spec)),
      on_cell_(std::move(on_cell)),
      on_done_(std::move(on_done)),
      token_(std::make_shared<std::atomic<bool>>(false)) {}

void Ticket::finish(Summary summary) {
  {
    std::lock_guard lock(mutex_);
    summary_ = std::move(summary);
  }
  // on_done runs before wait() releases, so a waiter returning from wait()
  // knows every frame/callback for this request has been written — the
  // ordering the server relies on to tear a connection down safely.
  if (on_done_) on_done_(summary_);
  {
    std::lock_guard lock(mutex_);
    done_ = true;
  }
  cv_.notify_all();
}

const Summary& Ticket::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return summary_;
}

bool Ticket::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

SweepService::SweepService(ServiceOptions options,
                           const technique::Registry& registry)
    : options_(std::move(options)),
      registry_(registry),
      pool_(options_.n_threads) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SweepService::~SweepService() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    // Queued and running requests finish as cancelled, fast — the
    // dispatcher drains the queue before exiting, so every wait() releases.
    for (const auto& ticket : queue_) ticket->cancel();
    if (running_) running_->cancel();
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::shared_ptr<Ticket> SweepService::submit(
    shard::SweepSpec spec, std::function<void(const sweep::Cell&)> on_cell,
    std::function<void(const Summary&)> on_done, std::uint64_t id) {
  std::shared_ptr<Ticket> ticket(new Ticket(
      id, std::move(spec), std::move(on_cell), std::move(on_done)));
  bool rejected = false;
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      rejected = true;
    } else {
      queue_.push_back(ticket);
    }
  }
  if (rejected) {
    Summary summary;
    summary.total_cells = ticket->spec_.total_cells();
    summary.error = "sweep service is shutting down";
    ticket->finish(std::move(summary));
    return ticket;
  }
  cv_.notify_all();
  return ticket;
}

void SweepService::dispatch_loop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      ticket = queue_.front();
      queue_.pop_front();
      running_ = ticket;
    }
    Summary summary = execute(*ticket);
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    cells_executed_.fetch_add(summary.executed_cells,
                              std::memory_order_relaxed);
    cells_failed_.fetch_add(summary.failed_cells, std::memory_order_relaxed);
    anneals_.fetch_add(summary.anneals, std::memory_order_relaxed);
    {
      std::lock_guard lock(mutex_);
      running_.reset();
    }
    ticket->finish(std::move(summary));
  }
}

SessionStats SweepService::session_stats() const {
  SessionStats stats;
  stats.requests = requests_completed_.load(std::memory_order_relaxed);
  stats.cells_executed = cells_executed_.load(std::memory_order_relaxed);
  stats.cells_failed = cells_failed_.load(std::memory_order_relaxed);
  stats.anneals = anneals_.load(std::memory_order_relaxed);
  stats.threads = pool_.size();
  if (options_.cache) {
    stats.cache_enabled = true;
    const cache::CacheStats cache_stats = options_.cache->stats();
    stats.result_cache_hits = cache_stats.result_hits;
    stats.result_cache_misses = cache_stats.result_misses;
    stats.placement_cache_hits = cache_stats.placement_hits;
    stats.placement_cache_misses = cache_stats.placement_misses;
  }
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  return stats;
}

Summary SweepService::execute(Ticket& ticket) {
  Summary summary;
  summary.total_cells = ticket.spec_.total_cells();
  if (ticket.token_->load(std::memory_order_relaxed)) {
    // Cancelled while queued: never touch the matrix.
    summary.cancelled = true;
    summary.cancelled_cells = summary.total_cells;
    return summary;
  }

  sweep::Options options = ticket.spec_.options;
  options.pool = &pool_;
  options.cache = options_.cache;
  options.on_cell = ticket.on_cell_;
  options.cancel = ticket.token_;

  const std::uint64_t anneals_before = placement::annealing_invocations();
  try {
    const sweep::Result result =
        sweep::run(ticket.spec_.circuits, ticket.spec_.techniques,
                   ticket.spec_.machines, options, registry_);
    summary.anneals = result.anneals;
    summary.cancelled = result.cancelled;
    summary.result_cache_hits = result.result_cache_hits;
    summary.result_cache_misses = result.result_cache_misses;
    summary.placement_disk_hits = result.placement_disk_hits;
    summary.wall_seconds = result.wall_seconds;
    for (const auto& cell : result.cells) {
      if (cell.cancelled) {
        ++summary.cancelled_cells;
      } else if (!cell.skipped) {
        ++summary.executed_cells;
        if (!cell.ok()) ++summary.failed_cells;
      }
    }
  } catch (const std::exception& error) {
    summary.anneals = placement::annealing_invocations() - anneals_before;
    summary.error = error.what();
  }
  return summary;
}

}  // namespace parallax::serve
