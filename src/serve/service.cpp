#include "serve/service.hpp"

#include <utility>

namespace parallax::serve {

Ticket::Ticket(std::uint64_t id, std::uint64_t client_id,
               shard::SweepSpec spec,
               std::function<void(const sweep::Cell&)> on_cell,
               std::function<void(const Summary&)> on_done)
    : id_(id),
      client_id_(client_id),
      spec_(std::move(spec)),
      on_cell_(std::move(on_cell)),
      on_done_(std::move(on_done)),
      token_(std::make_shared<std::atomic<bool>>(false)) {}

void Ticket::finish(Summary summary) {
  {
    std::lock_guard lock(mutex_);
    summary_ = std::move(summary);
  }
  // on_done runs before wait() releases, so a waiter returning from wait()
  // knows every frame/callback for this request has been written — the
  // ordering the server relies on to tear a connection down safely.
  if (on_done_) on_done_(summary_);
  {
    std::lock_guard lock(mutex_);
    done_ = true;
  }
  cv_.notify_all();
}

const Summary& Ticket::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return summary_;
}

bool Ticket::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

SweepService::SweepService(ServiceOptions options,
                           const technique::Registry& registry)
    : options_(std::move(options)),
      registry_(registry),
      pool_(options_.n_threads) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SweepService::~SweepService() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    // Queued and running requests finish as cancelled, fast — the
    // dispatcher drains every queue before exiting, so every wait()
    // releases.
    for (const auto& [client_id, queue] : queues_) {
      for (const auto& ticket : queue) ticket->cancel();
    }
    if (running_) running_->cancel();
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::shared_ptr<Ticket> SweepService::submit(
    shard::SweepSpec spec, std::function<void(const sweep::Cell&)> on_cell,
    std::function<void(const Summary&)> on_done, std::uint64_t id,
    std::uint64_t client_id) {
  std::shared_ptr<Ticket> ticket(new Ticket(
      id, client_id, std::move(spec), std::move(on_cell), std::move(on_done)));
  register_client(client_id);
  bool rejected = false;
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      rejected = true;
    } else {
      queues_[client_id].push_back(ticket);
      ++queued_;
    }
  }
  if (rejected) {
    Summary summary;
    summary.total_cells = ticket->spec_.total_cells();
    summary.error = "sweep service is shutting down";
    ticket->finish(std::move(summary));
    return ticket;
  }
  cv_.notify_all();
  return ticket;
}

void SweepService::register_client(std::uint64_t client_id) {
  std::lock_guard lock(accounts_mutex_);
  accounts_.try_emplace(client_id);
}

std::shared_ptr<Ticket> SweepService::pop_next_locked() {
  if (queued_ == 0) return nullptr;
  // The first non-empty queue strictly after the last-served client id,
  // wrapping to the smallest — deterministic round-robin regardless of
  // which client ids exist (ids are sparse: they are accept-order serials).
  auto pick = [this](auto begin, auto end) -> std::shared_ptr<Ticket> {
    for (auto it = begin; it != end; ++it) {
      if (it->second.empty()) continue;
      std::shared_ptr<Ticket> ticket = std::move(it->second.front());
      it->second.pop_front();
      --queued_;
      last_served_ = it->first;
      return ticket;
    }
    return nullptr;
  };
  if (auto ticket = pick(queues_.upper_bound(last_served_), queues_.end())) {
    return ticket;
  }
  return pick(queues_.begin(), queues_.upper_bound(last_served_));
}

void SweepService::dispatch_loop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      ticket = pop_next_locked();
      if (!ticket) return;  // stop_ set and nothing left to drain
      running_ = ticket;
    }
    Summary summary = execute(*ticket);
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    cells_executed_.fetch_add(summary.executed_cells,
                              std::memory_order_relaxed);
    cells_failed_.fetch_add(summary.failed_cells, std::memory_order_relaxed);
    anneals_.fetch_add(summary.anneals, std::memory_order_relaxed);
    {
      std::lock_guard lock(accounts_mutex_);
      ClientAccount& account = accounts_[ticket->client_id_];
      ++account.requests;
      account.cells_executed += summary.executed_cells;
      account.anneals += summary.anneals;
    }
    {
      std::lock_guard lock(mutex_);
      running_.reset();
    }
    ticket->finish(std::move(summary));
  }
}

SessionStats SweepService::session_stats() const {
  SessionStats stats;
  stats.requests = requests_completed_.load(std::memory_order_relaxed);
  stats.cells_executed = cells_executed_.load(std::memory_order_relaxed);
  stats.cells_failed = cells_failed_.load(std::memory_order_relaxed);
  stats.anneals = anneals_.load(std::memory_order_relaxed);
  stats.threads = pool_.size();
  if (options_.cache) {
    stats.cache_enabled = true;
    const cache::CacheStats cache_stats = options_.cache->stats();
    stats.result_cache_hits = cache_stats.result_hits;
    stats.result_cache_misses = cache_stats.result_misses;
    stats.placement_cache_hits = cache_stats.placement_hits;
    stats.placement_cache_misses = cache_stats.placement_misses;
  }
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  {
    std::lock_guard lock(accounts_mutex_);
    stats.clients.reserve(accounts_.size());
    for (const auto& [client_id, account] : accounts_) {
      ClientStats row;
      row.client_id = client_id;
      row.requests = account.requests;
      row.cells_executed = account.cells_executed;
      row.anneals = account.anneals;
      stats.clients.push_back(row);
    }
  }
  return stats;
}

Summary SweepService::execute(Ticket& ticket) {
  Summary summary;
  summary.total_cells = ticket.spec_.total_cells();
  if (ticket.token_->load(std::memory_order_relaxed)) {
    // Cancelled while queued: never touch the matrix.
    summary.cancelled = true;
    summary.cancelled_cells = summary.total_cells;
    return summary;
  }

  sweep::Options options = ticket.spec_.options;
  options.pool = &pool_;
  options.cache = options_.cache;
  options.on_cell = ticket.on_cell_;
  options.cancel = ticket.token_;
  // Per-request anneal ledger: the run increments it at each anneal it
  // actually pays for, so the charge is right even when the run throws
  // midway, and never picks up anneals a concurrent compile in the same
  // process happens to perform (the process-global counter both did).
  const auto anneal_counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  options.anneal_counter = anneal_counter;

  try {
    const sweep::Result result =
        sweep::run(ticket.spec_.circuits, ticket.spec_.techniques,
                   ticket.spec_.machines, options, registry_);
    summary.anneals = result.anneals;
    summary.cancelled = result.cancelled;
    summary.result_cache_hits = result.result_cache_hits;
    summary.result_cache_misses = result.result_cache_misses;
    summary.placement_disk_hits = result.placement_disk_hits;
    summary.wall_seconds = result.wall_seconds;
    for (const auto& cell : result.cells) {
      if (cell.cancelled) {
        ++summary.cancelled_cells;
      } else if (!cell.skipped) {
        ++summary.executed_cells;
        if (!cell.ok()) ++summary.failed_cells;
      }
    }
  } catch (const std::exception& error) {
    summary.anneals = anneal_counter->load(std::memory_order_relaxed);
    summary.error = error.what();
  }
  return summary;
}

}  // namespace parallax::serve
