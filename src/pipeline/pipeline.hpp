// The staged compilation pipeline: a CompileContext threaded through named
// Pass stages. The paper's four-step Parallax compiler is one assembly
// (transpile -> graphine-placement -> discretize -> aod-selection ->
// schedule); the baselines are alternative assemblies reusing the same
// stages (e.g. eldi-placement -> swap-route -> static-schedule). Pipelines
// are built by hand or looked up by name via technique::Registry, and fanned
// across circuit x technique x machine matrices by sweep::run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "geometry/point.hpp"
#include "hardware/config.hpp"
#include "hardware/machine.hpp"
#include "noise/model.hpp"
#include "parallax/aod_selection.hpp"
#include "parallax/result.hpp"
#include "parallax/scheduler.hpp"
#include "placement/discretize.hpp"
#include "placement/graphine.hpp"

namespace parallax::pipeline {

/// Thrown when a circuit cannot be compiled for a machine (e.g. more qubits
/// than atoms).
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Options for every stage any technique's pipeline may run. A pass reads
/// only the fields it owns, so one options struct serves all techniques.
struct CompileOptions {
  circuit::TranspileOptions transpile{};
  placement::GraphineOptions placement{};
  placement::DiscretizeOptions discretize{};
  compiler::SchedulerOptions scheduler{};
  compiler::AodSelectionOptions aod_selection{};
  /// Input is already in the {U3, CZ} basis; skip transpilation.
  bool assume_transpiled = false;
  /// Pre-computed Graphine placement (the paper's command-line option for
  /// loading earlier results to cut compile time). Skips Step 1; also how
  /// sweep::run shares one memoized placement across techniques.
  std::optional<placement::Topology> preset_topology;
  /// Master seed; placement and shuffle seeds derive from it and the
  /// circuit name via util::derive_seed, so runs are reproducible per
  /// circuit and identical across techniques that share a stage.
  std::uint64_t seed = 0xA77AC5ULL;
  /// How success probability is estimated downstream (closed-form model vs
  /// the discrete-event simulator). Requesting the simulator makes every
  /// scheduling pass record per-layer atom positions — the simulator's
  /// input — regardless of the scheduler's record_positions flag.
  noise::FidelityOptions fidelity{};
  /// Runtime-only anneal accounting: when set, a placement pass increments
  /// it once per Graphine anneal it actually runs (never for a preset
  /// topology). Excluded from fingerprints and serializations like every
  /// runtime hook — it is attribution, not identity.
  std::shared_ptr<std::atomic<std::uint64_t>> anneal_counter;
};

/// State threaded through the passes of one compilation. Passes communicate
/// exclusively through this struct: earlier stages fill the fields later
/// stages read, and `result` accumulates the final CompileResult.
struct CompileContext {
  CompileContext(const circuit::Circuit& input_,
                 const hardware::HardwareConfig& config_,
                 CompileOptions options_)
      : input(input_), config(config_), options(std::move(options_)) {}

  const circuit::Circuit& input;
  const hardware::HardwareConfig& config;
  CompileOptions options;

  /// Step-1 output: placement on the normalized [0,1]^2 plane (set by a
  /// placement pass that needs discretization; grid-native placements skip
  /// it and write result.topology directly).
  std::optional<placement::Topology> normalized;
  /// Physical atom positions, one per logical qubit (for the static-atom
  /// routing/scheduling stages).
  std::vector<geom::Point> positions;
  /// The mutable machine model (Parallax Steps 3-4).
  std::optional<hardware::Machine> machine;
  /// Accumulated output; `Pipeline::run` stamps the technique name and
  /// returns it once every pass has run.
  compiler::CompileResult result;
};

/// One named compilation stage. Cheap to copy; behaviour lives in a
/// std::function so pipelines are plain values that factories can return.
class Pass {
 public:
  Pass(std::string name, std::function<void(CompileContext&)> run)
      : name_(std::move(name)), run_(std::move(run)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void run(CompileContext& context) const { run_(context); }

 private:
  std::string name_;
  std::function<void(CompileContext&)> run_;
};

/// An ordered list of passes compiled against a technique name.
class Pipeline {
 public:
  explicit Pipeline(std::string technique) : technique_(std::move(technique)) {}

  Pipeline& add(Pass pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  [[nodiscard]] const std::string& technique() const noexcept {
    return technique_;
  }
  [[nodiscard]] bool contains(std::string_view pass_name) const;
  [[nodiscard]] std::vector<std::string> pass_names() const;

  /// Runs every pass over a fresh context and returns the accumulated
  /// result. Throws CompileError if the circuit needs more qubits than the
  /// machine has atoms; passes may throw their own errors.
  [[nodiscard]] compiler::CompileResult run(
      const circuit::Circuit& input, const hardware::HardwareConfig& config,
      const CompileOptions& options = {}) const;

 private:
  std::string technique_;
  std::vector<Pass> passes_;
};

}  // namespace parallax::pipeline
