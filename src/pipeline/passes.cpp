#include "pipeline/passes.hpp"

#include <cmath>
#include <utility>

#include "baselines/eldi_placement.hpp"
#include "baselines/static_schedule.hpp"
#include "baselines/swap_router.hpp"
#include "circuit/interaction_graph.hpp"
#include "placement/windowed.hpp"
#include "util/rng.hpp"

namespace parallax::pipeline::passes {

namespace {

/// Fills ctx.positions from the discretized topology's sites.
void positions_from_topology(CompileContext& ctx) {
  ctx.positions.clear();
  ctx.positions.reserve(ctx.result.topology.sites.size());
  for (const auto& cell : ctx.result.topology.sites) {
    ctx.positions.push_back(ctx.result.topology.grid.position(cell));
  }
}

/// Misassembled-pipeline guard: stages past placement need the physical
/// topology (one site per logical qubit) to be in place.
void require_topology(const CompileContext& ctx, const char* pass_name) {
  if (ctx.result.topology.sites.size() !=
      static_cast<std::size_t>(ctx.result.circuit.n_qubits())) {
    throw CompileError(std::string(pass_name) +
                       " pass needs a physical topology; add a placement "
                       "(and, for normalized placements, discretize) pass "
                       "before it");
  }
}

/// The hardware-compatible interaction radius for grid-native placements:
/// diagonal neighbours are reachable (8-connectivity), the setting the paper
/// applies to make ELDI comparable. Blockade is 2.5x (paper Sec. I-A).
void set_grid_native_radii(CompileContext& ctx) {
  ctx.result.topology.interaction_radius_um =
      ctx.result.topology.grid.pitch() * std::sqrt(2.0) * (1.0 + 1e-9);
  ctx.result.topology.blockade_radius_um =
      2.5 * ctx.result.topology.interaction_radius_um;
}

}  // namespace

Pass transpile() {
  return Pass("transpile", [](CompileContext& ctx) {
    ctx.result.circuit = ctx.options.assume_transpiled
                             ? ctx.input
                             : circuit::transpile(ctx.input,
                                                  ctx.options.transpile);
  });
}

Pass graphine_placement() {
  return Pass("graphine-placement", [](CompileContext& ctx) {
    // Every path emits an "anneal" timing row (before the pass's own row,
    // which Pipeline::run appends after) so table04's per-pass profile has
    // a uniform shape whether the anneal ran here, was injected by the
    // sweep driver, or was replayed from a cache.
    if (ctx.options.preset_topology) {
      ctx.normalized = *ctx.options.preset_topology;
      ctx.result.pass_timings.push_back({"anneal", 0.0, true});
      return;
    }
    placement::GraphineOptions options = ctx.options.placement;
    options.seed = util::derive_seed(ctx.options.seed, ctx.input.name(),
                                     util::kPlacementSeedSalt);
    const circuit::InteractionGraph graph(ctx.result.circuit);
    placement::PlacementStats stats;
    if (placement::windowing_applies(graph, options)) {
      ctx.normalized = placement::windowed_place(graph, options, &stats);
      if (ctx.options.anneal_counter) {
        ctx.options.anneal_counter->fetch_add(
            static_cast<std::uint64_t>(stats.windows_annealed),
            std::memory_order_relaxed);
      }
    } else {
      // Normalized single-window path: max_window_qubits plays no role here,
      // so its fingerprint stays byte-identical to pre-windowing builds.
      if (ctx.options.anneal_counter) {
        ctx.options.anneal_counter->fetch_add(1, std::memory_order_relaxed);
      }
      options.max_window_qubits = 0;
      ctx.normalized = placement::graphine_place(graph, options, &stats);
    }
    // Raced portfolios surface one row per entrant (winner highlighted)
    // ahead of the total anneal row.
    for (const auto& entrant : stats.entrants) {
      ctx.result.pass_timings.push_back({"anneal[" + entrant.name + "]",
                                         entrant.wall_seconds, false,
                                         entrant.winner});
    }
    ctx.result.pass_timings.push_back({"anneal", stats.anneal_seconds, false});
  });
}

Pass eldi_placement() {
  return Pass("eldi-placement", [](CompileContext& ctx) {
    const geom::Grid grid(ctx.config.grid_side, ctx.config.pitch_um());
    const std::int32_t region_side = baselines::eldi_region_side(
        ctx.result.circuit.n_qubits(), ctx.config.grid_side);
    const circuit::InteractionGraph graph(ctx.result.circuit);
    ctx.result.topology.grid = grid;
    ctx.result.topology.sites =
        baselines::compact_grid_placement(graph, grid, region_side);
    set_grid_native_radii(ctx);
    positions_from_topology(ctx);
  });
}

Pass identity_placement() {
  return Pass("identity-placement", [](CompileContext& ctx) {
    const geom::Grid grid(ctx.config.grid_side, ctx.config.pitch_um());
    const auto n = ctx.result.circuit.n_qubits();
    const auto side = std::min<std::int32_t>(
        ctx.config.grid_side,
        static_cast<std::int32_t>(
            std::ceil(std::sqrt(static_cast<double>(std::max(1, n))))));
    ctx.result.topology.grid = grid;
    ctx.result.topology.sites.clear();
    ctx.result.topology.sites.reserve(static_cast<std::size_t>(n));
    for (std::int32_t q = 0; q < n; ++q) {
      ctx.result.topology.sites.push_back(geom::Cell{q % side, q / side});
    }
    set_grid_native_radii(ctx);
    positions_from_topology(ctx);
  });
}

Pass discretize() {
  return Pass("discretize", [](CompileContext& ctx) {
    if (!ctx.normalized) {
      throw CompileError(
          "discretize pass needs a normalized placement; add a placement "
          "pass (e.g. graphine-placement) before it");
    }
    ctx.result.topology = placement::discretize(*ctx.normalized, ctx.config,
                                                ctx.options.discretize);
    positions_from_topology(ctx);
  });
}

Pass aod_selection() {
  return Pass("aod-selection", [](CompileContext& ctx) {
    require_topology(ctx, "aod-selection");
    ctx.machine.emplace(ctx.config, ctx.result.topology);
    const compiler::AodSelectionResult selection = compiler::select_aod_qubits(
        ctx.result.circuit, *ctx.machine, ctx.options.aod_selection);
    ctx.result.in_aod = selection.in_aod;
  });
}

Pass schedule() {
  return Pass("schedule", [](CompileContext& ctx) {
    require_topology(ctx, "schedule");
    if (!ctx.machine) ctx.machine.emplace(ctx.config, ctx.result.topology);
    compiler::SchedulerOptions options = ctx.options.scheduler;
    options.shuffle_seed = util::derive_seed(ctx.options.seed,
                                             ctx.input.name(),
                                             util::kShuffleSeedSalt);
    compiler::ScheduleOutput output =
        compiler::schedule_gates(ctx.result.circuit, *ctx.machine, options);
    ctx.result.layers = std::move(output.layers);
    ctx.result.stats = output.stats;
    ctx.result.runtime_us = output.runtime_us;
  });
}

Pass swap_route() {
  return Pass("swap-route", [](CompileContext& ctx) {
    require_topology(ctx, "swap-route");
    baselines::RoutedCircuit routed = baselines::route_with_swaps(
        ctx.result.circuit, ctx.positions,
        ctx.result.topology.interaction_radius_um);
    ctx.result.stats.out_of_range_cz = routed.routed_cz;
    ctx.result.circuit = std::move(routed.circuit);
  });
}

Pass static_schedule() {
  return Pass("static-schedule", [](CompileContext& ctx) {
    require_topology(ctx, "static-schedule");
    baselines::StaticScheduleOutput output = baselines::schedule_static(
        ctx.result.circuit, ctx.positions,
        ctx.result.topology.blockade_radius_um, ctx.config,
        util::derive_seed(ctx.options.seed, ctx.input.name(),
                          util::kShuffleSeedSalt));
    ctx.result.layers = std::move(output.layers);
    ctx.result.runtime_us = output.runtime_us;
    if (ctx.options.scheduler.record_positions) {
      // Baseline atoms never move: every layer executes at the placement's
      // static configuration. Recording it per layer gives the simulator
      // and the continuous-time ledger the same input shape as Parallax.
      for (auto& layer : ctx.result.layers) layer.positions = ctx.positions;
    }
    ctx.result.in_aod.assign(
        static_cast<std::size_t>(ctx.result.circuit.n_qubits()), 0);
    ctx.result.stats.u3_gates = ctx.result.circuit.u3_count();
    ctx.result.stats.cz_gates = ctx.result.circuit.cz_count();
    ctx.result.stats.swap_gates = ctx.result.circuit.swap_count();
    ctx.result.stats.layers = ctx.result.layers.size();
  });
}

}  // namespace parallax::pipeline::passes
