// The stage library: every pass any technique assembles its pipeline from.
// Pass contracts (what each reads/writes on CompileContext):
//
//   transpile           input -> result.circuit ({U3, CZ} basis)
//   graphine-placement  result.circuit -> normalized       (paper Step 1)
//   eldi-placement      result.circuit -> result.topology, positions
//   identity-placement  result.circuit -> result.topology, positions
//   discretize          normalized -> result.topology, positions (Step 2)
//   aod-selection       result.topology -> machine, result.in_aod (Step 3)
//   schedule            machine -> result.layers/stats/runtime_us (Step 4)
//   swap-route          result.circuit + positions -> result.circuit (SWAPs)
//   static-schedule     result.circuit + positions -> result.layers/stats/
//                       runtime_us (blockade-respecting layers, atoms static)
#pragma once

#include "pipeline/pipeline.hpp"

namespace parallax::pipeline::passes {

/// Transpiles the input to the {U3, CZ} basis (no-op copy when
/// options.assume_transpiled is set).
[[nodiscard]] Pass transpile();

/// Paper Step 1: Graphine annealed placement on the normalized plane, seeded
/// per circuit via util::derive_seed. Honors options.preset_topology.
[[nodiscard]] Pass graphine_placement();

/// ELDI's compact-grid greedy placement; grid-native, so it fills the
/// physical topology directly (8-neighbour interaction radius).
[[nodiscard]] Pass eldi_placement();

/// Naive placement: qubit q on the q-th cell of a compact square region in
/// row-major order (8-neighbour interaction radius). The "static" technique's
/// Step 1 — the no-optimization control every other technique is judged
/// against.
[[nodiscard]] Pass identity_placement();

/// Paper Step 2: snap the normalized placement onto the machine's site grid
/// under the minimum-separation constraint.
[[nodiscard]] Pass discretize();

/// Paper Step 3: AOD qubit selection (one atom per row/column pair).
[[nodiscard]] Pass aod_selection();

/// Paper Step 4: Algorithm 1 gate + movement scheduling.
[[nodiscard]] Pass schedule();

/// Resolves out-of-range CZs by SWAP chains over the in-range connectivity
/// graph of the static atom positions (baselines only).
[[nodiscard]] Pass swap_route();

/// Blockade-respecting layering for circuits on static atoms; finalizes the
/// baseline stats (gate counts, layers, out-of-range CZs).
[[nodiscard]] Pass static_schedule();

}  // namespace parallax::pipeline::passes
