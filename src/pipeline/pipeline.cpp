#include "pipeline/pipeline.hpp"

#include <algorithm>

#include "util/stopwatch.hpp"

namespace parallax::pipeline {

bool Pipeline::contains(std::string_view pass_name) const {
  return std::any_of(passes_.begin(), passes_.end(), [&](const Pass& pass) {
    return pass.name() == pass_name;
  });
}

std::vector<std::string> Pipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass.name());
  return names;
}

compiler::CompileResult Pipeline::run(const circuit::Circuit& input,
                                      const hardware::HardwareConfig& config,
                                      const CompileOptions& options) const {
  if (input.n_qubits() > config.n_atoms()) {
    throw CompileError("circuit '" + input.name() + "' needs " +
                       std::to_string(input.n_qubits()) +
                       " qubits; machine '" + config.name + "' has " +
                       std::to_string(config.n_atoms()) + " atoms");
  }
  CompileOptions effective = options;
  if (effective.fidelity.model == noise::FidelityModel::kSimulated) {
    // The simulator cannot run without per-layer atom positions; force the
    // recording on so a simulated-fidelity compile is always simulatable.
    effective.scheduler.record_positions = true;
  }
  CompileContext context(input, config, std::move(effective));
  context.result.technique = technique_;
  context.result.pass_timings.reserve(passes_.size());
  for (const auto& pass : passes_) {
    const util::Stopwatch watch;
    pass.run(context);
    context.result.pass_timings.push_back(
        {pass.name(), watch.seconds(), false});
  }
  return std::move(context.result);
}

}  // namespace parallax::pipeline
