#include "technique/registry.hpp"

#include <algorithm>
#include <utility>

#include "cache/cache.hpp"
#include "pipeline/passes.hpp"

namespace parallax::technique {

namespace passes = pipeline::passes;

Registry Registry::with_builtins() {
  Registry registry;
  registry.add(
      "parallax",
      "the paper's four-step compiler: annealed placement, discretization, "
      "AOD selection, movement scheduling (zero SWAPs)",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("parallax");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::aod_selection())
            .add(passes::schedule());
        return pipeline;
      });
  registry.add(
      "eldi",
      "ELDI baseline: compact-grid greedy placement, SWAP routing over "
      "8-neighbour connectivity, static scheduling",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("eldi");
        pipeline.add(passes::transpile())
            .add(passes::eldi_placement())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });
  registry.add(
      "graphine",
      "GRAPHINE baseline: the same annealed placement as Parallax, but atoms "
      "stay static and out-of-range CZs cost SWAP chains",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("graphine");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });
  registry.add(
      "static",
      "no-optimization control: identity placement on a compact square, SWAP "
      "routing, static scheduling",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("static");
        pipeline.add(passes::transpile())
            .add(passes::identity_placement())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });
  return registry;
}

const Registry& Registry::global() {
  static const Registry registry = with_builtins();
  return registry;
}

void Registry::add(std::string name, std::string description,
                   Factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("technique '" + name +
                                "' is already registered");
  }
  techniques_.push_back(
      {std::move(name), std::move(description), std::move(factory)});
}

bool Registry::contains(std::string_view name) const noexcept {
  return std::any_of(
      techniques_.begin(), techniques_.end(),
      [&](const TechniqueInfo& info) { return info.name == name; });
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> names;
  names.reserve(techniques_.size());
  for (const auto& info : techniques_) names.push_back(info.name);
  return names;
}

const TechniqueInfo& Registry::info(std::string_view name) const {
  const auto it = std::find_if(
      techniques_.begin(), techniques_.end(),
      [&](const TechniqueInfo& info) { return info.name == name; });
  if (it == techniques_.end()) {
    std::string known;
    for (const auto& info : techniques_) {
      if (!known.empty()) known += ", ";
      known += info.name;
    }
    throw UnknownTechniqueError("unknown technique '" + std::string(name) +
                                "' (known: " + known + ")");
  }
  return *it;
}

pipeline::Pipeline Registry::make_pipeline(
    std::string_view name, const pipeline::CompileOptions& options) const {
  return info(name).factory(options);
}

compiler::CompileResult Registry::compile(
    std::string_view name, const circuit::Circuit& input,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options) const {
  return make_pipeline(name, options).run(input, config, options);
}

compiler::CompileResult Registry::compile(
    std::string_view name, const circuit::Circuit& input,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options,
    cache::CompilationCache* cache) const {
  const pipeline::Pipeline pipeline = make_pipeline(name, options);
  if (cache == nullptr) return pipeline.run(input, config, options);
  const cache::Digest128 key =
      cache::result_key(cache::fingerprint(input), name,
                        pipeline.pass_names(), config, options);
  if (auto hit = cache->get_result(key)) {
    for (const auto& pass : pipeline.pass_names()) {
      hit->result.pass_timings.push_back({pass, 0.0, true});
    }
    return std::move(hit->result);
  }
  compiler::CompileResult result = pipeline.run(input, config, options);
  cache::CachedCell stored;
  stored.result = result;
  cache->put_result(key, stored);
  return result;
}

compiler::CompileResult compile(std::string_view name,
                                const circuit::Circuit& input,
                                const hardware::HardwareConfig& config,
                                const pipeline::CompileOptions& options) {
  return Registry::global().compile(name, input, config, options);
}

}  // namespace parallax::technique
