#include "technique/registry.hpp"

#include <algorithm>
#include <utility>

#include "cache/cache.hpp"
#include "pipeline/passes.hpp"

namespace parallax::technique {

namespace passes = pipeline::passes;

Registry Registry::with_builtins() {
  Registry registry;
  registry.add(
      "parallax",
      "the paper's four-step compiler: annealed placement, discretization, "
      "AOD selection, movement scheduling (zero SWAPs)",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("parallax");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::aod_selection())
            .add(passes::schedule());
        return pipeline;
      });
  registry.add(
      "eldi",
      "ELDI baseline: compact-grid greedy placement, SWAP routing over "
      "8-neighbour connectivity, static scheduling",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("eldi");
        pipeline.add(passes::transpile())
            .add(passes::eldi_placement())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });
  registry.add(
      "graphine",
      "GRAPHINE baseline: the same annealed placement as Parallax, but atoms "
      "stay static and out-of-range CZs cost SWAP chains",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("graphine");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });
  registry.add(
      "static",
      "no-optimization control: identity placement on a compact square, SWAP "
      "routing, static scheduling",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("static");
        pipeline.add(passes::transpile())
            .add(passes::identity_placement())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      });

  // Fast-annealer variants: the same pipelines, with the placement annealer
  // tuned to the delta-cost hot path. Batched sweeps propose n moves per
  // iteration (each scored incrementally through the SIMD kernels, with all
  // randomness pre-drawn per iteration), so far fewer outer iterations
  // reach legacy quality; the mc4 variants additionally race four
  // deterministic chains and keep the reproducible winner.
  const auto tune_per_qubit = [](pipeline::CompileOptions& options) {
    options.placement.proposal = placement::ProposalMode::kBatched;
    // 120 batched sweeps + a 300-evaluation lean polish land at or below the
    // legacy 600-iteration objective on every table04 circuit (TFIM-128:
    // bit-equal 229.64) at ~11.6ms vs 147.8ms legacy wall.
    options.placement.anneal_iterations = 120;
    options.placement.local_search_evaluations = 300;
  };
  const auto tune_mc4 = [tune_per_qubit](pipeline::CompileOptions& options) {
    tune_per_qubit(options);
    options.placement.chains = 4;
    // Four chains buy exploration, not just wall-clock: with the longer
    // budget the reduced winner lands in measurably better basins than the
    // legacy single full-vector chain (TFIM-128: ~16% lower objective),
    // while the per-chain delta cost keeps each chain ~5x cheaper than one
    // legacy anneal.
    options.placement.anneal_iterations = 250;
  };
  registry.add(
      "parallax-fast",
      "parallax with delta-cost per-qubit annealing (single chain): "
      "identical pass list, order-of-magnitude cheaper placement search",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("parallax-fast");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::aod_selection())
            .add(passes::schedule());
        return pipeline;
      },
      tune_per_qubit);
  registry.add(
      "parallax-mc4",
      "parallax with 4-chain deterministic delta-cost annealing (best of "
      "four independent seeds, thread-count-invariant winner)",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("parallax-mc4");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::aod_selection())
            .add(passes::schedule());
        return pipeline;
      },
      tune_mc4);
  registry.add(
      "graphine-mc4",
      "graphine baseline with 4-chain deterministic delta-cost annealing",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("graphine-mc4");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::swap_route())
            .add(passes::static_schedule());
        return pipeline;
      },
      tune_mc4);
  // Raced optimizer portfolio: the fast anneal budget is split across four
  // entrants (delta single-chain, mc4 reduction, Nelder-Mead polish, fresh
  // restart) and the deterministic strict-< winner is kept — robustness
  // against any one optimizer stalling, at roughly the single-chain cost.
  const auto tune_race = [tune_per_qubit](pipeline::CompileOptions& options) {
    tune_per_qubit(options);
    options.placement.portfolio_entrants = 4;
  };
  registry.add(
      "parallax-race",
      "parallax with a budget-raced optimizer portfolio (delta, mc4, "
      "Nelder-Mead polish, fresh restart; deterministic winner)",
      [](const pipeline::CompileOptions&) {
        pipeline::Pipeline pipeline("parallax-race");
        pipeline.add(passes::transpile())
            .add(passes::graphine_placement())
            .add(passes::discretize())
            .add(passes::aod_selection())
            .add(passes::schedule());
        return pipeline;
      },
      tune_race);
  return registry;
}

const Registry& Registry::global() {
  static const Registry registry = with_builtins();
  return registry;
}

void Registry::add(std::string name, std::string description, Factory factory,
                   Tune tune) {
  if (contains(name)) {
    throw std::invalid_argument("technique '" + name +
                                "' is already registered");
  }
  techniques_.push_back({std::move(name), std::move(description),
                         std::move(factory), std::move(tune)});
}

void Registry::apply_tuning(std::string_view name,
                            pipeline::CompileOptions& options) const {
  const TechniqueInfo& technique = info(name);
  if (technique.tune) technique.tune(options);
}

bool Registry::contains(std::string_view name) const noexcept {
  return std::any_of(
      techniques_.begin(), techniques_.end(),
      [&](const TechniqueInfo& info) { return info.name == name; });
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> names;
  names.reserve(techniques_.size());
  for (const auto& info : techniques_) names.push_back(info.name);
  return names;
}

const TechniqueInfo& Registry::info(std::string_view name) const {
  const auto it = std::find_if(
      techniques_.begin(), techniques_.end(),
      [&](const TechniqueInfo& info) { return info.name == name; });
  if (it == techniques_.end()) {
    std::string known;
    for (const auto& info : techniques_) {
      if (!known.empty()) known += ", ";
      known += info.name;
    }
    throw UnknownTechniqueError("unknown technique '" + std::string(name) +
                                "' (known: " + known + ")");
  }
  return *it;
}

pipeline::Pipeline Registry::make_pipeline(
    std::string_view name, const pipeline::CompileOptions& options) const {
  return info(name).factory(options);
}

compiler::CompileResult Registry::compile(
    std::string_view name, const circuit::Circuit& input,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options) const {
  pipeline::CompileOptions tuned = options;
  apply_tuning(name, tuned);
  return make_pipeline(name, tuned).run(input, config, tuned);
}

compiler::CompileResult Registry::compile(
    std::string_view name, const circuit::Circuit& input,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options,
    cache::CompilationCache* cache) const {
  pipeline::CompileOptions tuned = options;
  apply_tuning(name, tuned);
  const pipeline::Pipeline pipeline = make_pipeline(name, tuned);
  if (cache == nullptr) return pipeline.run(input, config, tuned);
  const cache::Digest128 key =
      cache::result_key(cache::fingerprint(input), name,
                        pipeline.pass_names(), config, tuned);
  if (auto hit = cache->get_result(key)) {
    for (const auto& pass : pipeline.pass_names()) {
      if (pass == "graphine-placement") {
        hit->result.pass_timings.push_back({"anneal", 0.0, true});
      }
      hit->result.pass_timings.push_back({pass, 0.0, true});
    }
    return std::move(hit->result);
  }
  compiler::CompileResult result = pipeline.run(input, config, tuned);
  cache::CachedCell stored;
  stored.result = result;
  cache->put_result(key, stored);
  return result;
}

compiler::CompileResult compile(std::string_view name,
                                const circuit::Circuit& input,
                                const hardware::HardwareConfig& config,
                                const pipeline::CompileOptions& options) {
  return Registry::global().compile(name, input, config, options);
}

}  // namespace parallax::technique
