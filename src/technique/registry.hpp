// The Technique registry: the uniform front door to every compiler. A
// technique is a name ("parallax", "eldi", "graphine", "static") mapped to a
// pipeline factory; callers compile through the registry instead of bespoke
// per-baseline entry points, so benches, examples, the CLI, and the sweep
// driver treat all techniques identically — and new techniques (a different
// router, a learned placement) plug in without touching any caller.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/pipeline.hpp"

namespace parallax::cache {
class CompilationCache;
}

namespace parallax::technique {

/// Thrown for a name the registry does not know; the message lists every
/// registered technique.
class UnknownTechniqueError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct TechniqueInfo {
  std::string name;
  std::string description;
  /// Builds the technique's pipeline. Receives the compile options so a
  /// factory may choose its pass list structurally (none of the built-ins
  /// currently do).
  std::function<pipeline::Pipeline(const pipeline::CompileOptions&)> factory;
  /// Optional option tuning the technique declares for itself (e.g.
  /// graphine-mc4 switching placement to per-qubit multi-chain annealing).
  /// Every driver applies it through apply_tuning() before deriving memo
  /// keys or fingerprints, so a tuned variant is "its base pipeline with
  /// these options" uniformly across compile, sweep, shard, and serve —
  /// caching and placement sharing come for free.
  std::function<void(pipeline::CompileOptions&)> tune;
};

class Registry {
 public:
  using Factory = std::function<pipeline::Pipeline(
      const pipeline::CompileOptions&)>;

  /// An empty registry (for tests or custom technique sets).
  Registry() = default;
  /// A registry pre-loaded with the four built-in techniques.
  [[nodiscard]] static Registry with_builtins();
  /// The process-wide registry of built-ins.
  [[nodiscard]] static const Registry& global();

  using Tune = std::function<void(pipeline::CompileOptions&)>;

  /// Registers a technique. Throws std::invalid_argument on a duplicate
  /// name. `tune` (optional) is the technique's option adjustment; see
  /// TechniqueInfo::tune.
  void add(std::string name, std::string description, Factory factory,
           Tune tune = {});

  /// Applies the technique's declared option tuning (no-op when it has
  /// none). Callers that derive keys from options themselves (the sweep
  /// driver) must call this before doing so.
  void apply_tuning(std::string_view name,
                    pipeline::CompileOptions& options) const;

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Technique names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const TechniqueInfo& info(std::string_view name) const;

  [[nodiscard]] pipeline::Pipeline make_pipeline(
      std::string_view name, const pipeline::CompileOptions& options = {}) const;

  /// Builds the technique's pipeline and runs it over `input` for `config`.
  [[nodiscard]] compiler::CompileResult compile(
      std::string_view name, const circuit::Circuit& input,
      const hardware::HardwareConfig& config,
      const pipeline::CompileOptions& options = {}) const;

  /// Like compile(), but consults (and populates) the persistent
  /// compilation cache first: a hit returns the stored result without
  /// running any pass (its pass_timings are all marked cached). A null
  /// cache is the plain compile().
  [[nodiscard]] compiler::CompileResult compile(
      std::string_view name, const circuit::Circuit& input,
      const hardware::HardwareConfig& config,
      const pipeline::CompileOptions& options,
      cache::CompilationCache* cache) const;

 private:
  std::vector<TechniqueInfo> techniques_;
};

/// Compiles via the global registry — the one-call front door:
///   technique::compile("eldi", circuit, config, options)
[[nodiscard]] compiler::CompileResult compile(
    std::string_view name, const circuit::Circuit& input,
    const hardware::HardwareConfig& config,
    const pipeline::CompileOptions& options = {});

}  // namespace parallax::technique
