#include "import/manifest.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/fingerprint.hpp"
#include "qasm/stream_parser.hpp"

namespace parallax::importer {

namespace {

constexpr std::string_view kHeader = "# parallax-import v1";

/// Grammar-validating scan with no gate storage: everything import_file
/// needs comes from the totals and the hashing stream.
class CountingVisitor final : public qasm::GateStreamVisitor {
 public:
  void on_gate(const circuit::Gate&) override {}
};

template <typename T>
T parse_int(std::string_view field, std::string_view what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw ImportError("manifest: malformed " + std::string(what) + " '" +
                      std::string(field) + "'");
  }
  return value;
}

/// Splits off the next tab-separated field; `last` takes the remainder.
std::string_view next_field(std::string_view& line, bool last = false) {
  if (last) {
    const std::string_view field = line;
    line = {};
    return field;
  }
  const std::size_t tab = line.find('\t');
  if (tab == std::string_view::npos) {
    throw ImportError("manifest: truncated line (expected 7 tab-separated "
                      "fields)");
  }
  const std::string_view field = line.substr(0, tab);
  line.remove_prefix(tab + 1);
  return field;
}

}  // namespace

ImportEntry import_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw ImportError("import: cannot open '" + path + "'");
  }
  cache::HashingStreamBuf hashing(file.rdbuf());
  std::istream in(&hashing);
  qasm::StreamParser parser(in, path);
  CountingVisitor visitor;
  const qasm::StreamTotals totals = parser.run(visitor);

  ImportEntry entry;
  entry.name = std::filesystem::path(path).stem().string();
  entry.path = path;
  entry.digest = hashing.content_digest();
  entry.n_qubits = totals.n_qubits;
  entry.n_clbits = totals.n_clbits;
  entry.n_gates = totals.n_gates;
  entry.n_bytes = hashing.bytes_hashed();
  return entry;
}

std::string write_manifest(const std::vector<ImportEntry>& entries) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const ImportEntry& e : entries) {
    out << e.name << '\t' << e.digest.hex() << '\t' << e.n_qubits << '\t'
        << e.n_clbits << '\t' << e.n_gates << '\t' << e.n_bytes << '\t'
        << e.path << '\n';
  }
  return out.str();
}

std::vector<ImportEntry> parse_manifest(std::string_view text) {
  std::vector<ImportEntry> entries;
  bool saw_header = false;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (!saw_header) {
        if (line != kHeader) {
          throw ImportError("manifest: unknown header '" + std::string(line) +
                            "' (expected '" + std::string(kHeader) + "')");
        }
        saw_header = true;
      }
      continue;
    }
    if (!saw_header) {
      throw ImportError("manifest: missing '" + std::string(kHeader) +
                        "' header line");
    }
    ImportEntry entry;
    entry.name = std::string(next_field(line));
    const std::string_view digest_hex = next_field(line);
    const auto digest = util::Digest128::from_hex(digest_hex);
    if (!digest) {
      throw ImportError("manifest: malformed digest '" +
                        std::string(digest_hex) + "' for circuit '" +
                        entry.name + "'");
    }
    entry.digest = *digest;
    entry.n_qubits = parse_int<std::int32_t>(next_field(line), "qubit count");
    entry.n_clbits = parse_int<std::int32_t>(next_field(line), "clbit count");
    entry.n_gates = parse_int<std::uint64_t>(next_field(line), "gate count");
    entry.n_bytes = parse_int<std::uint64_t>(next_field(line), "byte count");
    entry.path = std::string(next_field(line, /*last=*/true));
    if (entry.name.empty() || entry.path.empty()) {
      throw ImportError("manifest: empty name or path field");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

void save_manifest(const std::vector<ImportEntry>& entries,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw ImportError("import: cannot write manifest '" + path + "'");
  }
  out << write_manifest(entries);
  if (!out) {
    throw ImportError("import: failed writing manifest '" + path + "'");
  }
}

std::vector<ImportEntry> load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ImportError("import: cannot open manifest '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_manifest(text.str());
}

std::vector<sweep::CircuitSpec> load_circuits(
    const std::vector<ImportEntry>& entries) {
  std::vector<sweep::CircuitSpec> specs;
  specs.reserve(entries.size());
  for (const ImportEntry& entry : entries) {
    std::ifstream file(entry.path, std::ios::binary);
    if (!file) {
      throw ImportError("import: cannot open '" + entry.path +
                        "' (manifest entry '" + entry.name + "')");
    }
    cache::HashingStreamBuf hashing(file.rdbuf());
    std::istream in(&hashing);
    qasm::StreamParser parser(in, entry.path);
    qasm::CircuitBuilder builder;
    const qasm::StreamTotals totals = parser.run(builder);
    const util::Digest128 digest = hashing.content_digest();
    if (digest != entry.digest) {
      throw ImportError("import: '" + entry.path +
                        "' changed since it was imported (manifest digest " +
                        entry.digest.hex() + ", file digest " + digest.hex() +
                        "); re-run import to refresh the manifest");
    }
    specs.push_back({entry.name, builder.take(entry.name, totals)});
  }
  return specs;
}

}  // namespace parallax::importer
