// External-circuit import: turns OpenQASM files on disk into sweep axes.
//
// `import_file` streams a file once through qasm::StreamParser behind a
// cache::HashingStreamBuf — counting qubits/clbits/gates and fingerprinting
// the raw bytes in the same pass, O(1) memory in the gate count — and
// records the result as a manifest entry. A manifest is a plain
// tab-separated text file (one circuit per line, self-describing header),
// stable under re-import of unchanged files, diff-friendly, and safe to
// commit next to the circuits it describes.
//
// `load_circuits` is the consuming side: it re-parses each manifest entry
// into a sweep::CircuitSpec, re-hashing the bytes while it parses and
// refusing (ImportError) any file whose content digest no longer matches
// the manifest — a sweep never silently runs on drifted inputs. The digest
// is the same content fingerprint the persistent compilation cache keys on,
// so "manifest verified" and "cache hit valid" are one notion of identity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/sweep.hpp"
#include "util/hash.hpp"

namespace parallax::importer {

class ImportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One imported circuit: identity (name + content digest) plus the totals
/// the single-pass scan observed. `path` is kept verbatim as given at import
/// time; relative paths resolve against the consumer's working directory.
struct ImportEntry {
  std::string name;            // circuit name: file stem
  std::string path;            // file path as imported
  util::Digest128 digest;      // content fingerprint of the raw bytes
  std::int32_t n_qubits = 0;
  std::int32_t n_clbits = 0;
  std::uint64_t n_gates = 0;   // resolved gate events (post macro expansion)
  std::uint64_t n_bytes = 0;   // file size consumed by the parser
};

/// Scans one QASM file: parse (validating the full grammar), count, and
/// fingerprint in a single streaming pass. Never materializes the gate
/// list. Throws ImportError if the file cannot be opened and
/// qasm::ParseError (with path:line:column) if it does not parse.
[[nodiscard]] ImportEntry import_file(const std::string& path);

/// Renders entries in the manifest text format (header line + one
/// tab-separated line per entry, in the given order).
[[nodiscard]] std::string write_manifest(const std::vector<ImportEntry>& entries);

/// Parses the write_manifest format. Throws ImportError on an unknown
/// header, malformed line, or bad digest.
[[nodiscard]] std::vector<ImportEntry> parse_manifest(std::string_view text);

/// File convenience wrappers around write_manifest/parse_manifest.
void save_manifest(const std::vector<ImportEntry>& entries,
                   const std::string& path);
[[nodiscard]] std::vector<ImportEntry> load_manifest(const std::string& path);

/// Materializes every entry into a sweep circuit, re-verifying content: each
/// file is parsed through the same hashing stream as import_file and must
/// reproduce the manifest's digest exactly, else ImportError names the file
/// and both digests. Circuit names come from the manifest, so per-circuit
/// seed derivation is stable however the files are laid out on disk.
[[nodiscard]] std::vector<sweep::CircuitSpec> load_circuits(
    const std::vector<ImportEntry>& entries);

}  // namespace parallax::importer
