#include "shots/parallelize.hpp"

#include <algorithm>
#include <cmath>

namespace parallax::shots {

std::int32_t footprint_side(const compiler::CompileResult& result) {
  std::int32_t min_col = 0, min_row = 0, max_col = 0, max_row = 0;
  bool first = true;
  for (const auto& cell : result.topology.sites) {
    if (first) {
      min_col = max_col = cell.col;
      min_row = max_row = cell.row;
      first = false;
      continue;
    }
    min_col = std::min(min_col, cell.col);
    max_col = std::max(max_col, cell.col);
    min_row = std::min(min_row, cell.row);
    max_row = std::max(max_row, cell.row);
  }
  if (first) return 1;  // empty circuit
  // +1 to convert the inclusive span to a width, +1 margin cell between
  // neighbouring copies.
  return std::max(max_col - min_col, max_row - min_row) + 2;
}

namespace {
/// AOD lines a single copy occupies (rows and columns are selected in equal
/// numbers by construction — one atom per pair).
std::int32_t lines_per_copy(const compiler::CompileResult& result) {
  return static_cast<std::int32_t>(result.aod_qubit_count());
}
}  // namespace

std::int32_t max_copies_per_dim(const compiler::CompileResult& result,
                                const hardware::HardwareConfig& config) {
  const std::int32_t footprint = footprint_side(result);
  std::int32_t by_space = std::max(1, config.grid_side / footprint);
  const std::int32_t lines = lines_per_copy(result);
  if (lines > 0) {
    const std::int32_t by_aod =
        std::max(1, std::min(config.aod_rows, config.aod_cols) / lines);
    by_space = std::min(by_space, by_aod);
  }
  return by_space;
}

ParallelPlan plan_parallel_shots(const compiler::CompileResult& result,
                                 const hardware::HardwareConfig& config,
                                 std::int32_t copies_per_dim,
                                 const ShotOptions& options) {
  ParallelPlan plan;
  plan.copies_per_dim =
      std::clamp(copies_per_dim, 1, max_copies_per_dim(result, config));
  plan.copies = plan.copies_per_dim * plan.copies_per_dim;
  plan.physical_shots =
      (options.logical_shots + plan.copies - 1) / plan.copies;
  plan.total_execution_time_us =
      static_cast<double>(plan.physical_shots) *
      (result.runtime_us + options.inter_shot_overhead_us);
  return plan;
}

std::vector<ParallelPlan> parallelization_sweep(
    const compiler::CompileResult& result,
    const hardware::HardwareConfig& config, const ShotOptions& options) {
  std::vector<ParallelPlan> plans;
  const std::int32_t max_dim = max_copies_per_dim(result, config);
  for (std::int32_t k = 1; k <= max_dim; ++k) {
    plans.push_back(plan_parallel_shots(result, config, k, options));
  }
  return plans;
}

}  // namespace parallax::shots
