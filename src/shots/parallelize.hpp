// Logical-shot parallelization (paper Sec. II-E): the compiled circuit is
// replicated as a square tiling across the machine's atom grid. Copies run
// the identical schedule in lockstep and *share* AOD rows/columns — a row
// holds one atom per copy in its horizontal band, and since all copies move
// identically, the tandem-movement constraint is satisfied by construction.
//
// Feasibility constraints:
//   * tile footprint:   copies_per_dim * footprint_side <= grid side
//   * AOD line budget:  copies_per_dim * aod_lines_used_per_copy <= aod rows
//     (each *band* of copies needs its own set of row coordinates; within a
//     band all copies share them; columns symmetrically).
#pragma once

#include <cstdint>
#include <vector>

#include "hardware/config.hpp"
#include "parallax/result.hpp"

namespace parallax::shots {

struct ShotOptions {
  /// Logical shots needed for an output distribution (paper: 8,000).
  std::int64_t logical_shots = 8000;
  /// Per-physical-shot overhead (us): state preparation, readout, and atom
  /// rearrangement between hardware shots.
  double inter_shot_overhead_us = 50.0;
};

struct ParallelPlan {
  std::int32_t copies_per_dim = 1;
  std::int32_t copies = 1;              // logical shots per physical shot
  std::int64_t physical_shots = 0;      // ceil(logical / copies)
  double total_execution_time_us = 0.0; // the paper's Fig. 11 metric
};

/// Side of the compiled circuit's bounding box in grid cells (plus one cell
/// of margin so neighbouring copies keep the separation constraint).
[[nodiscard]] std::int32_t footprint_side(
    const compiler::CompileResult& result);

/// Largest feasible parallelization factor per dimension for `result` on
/// `config` (>= 1; a circuit that fills the machine gets exactly 1).
[[nodiscard]] std::int32_t max_copies_per_dim(
    const compiler::CompileResult& result,
    const hardware::HardwareConfig& config);

/// Plan for a given per-dimension factor (clamped to the feasible maximum).
[[nodiscard]] ParallelPlan plan_parallel_shots(
    const compiler::CompileResult& result,
    const hardware::HardwareConfig& config, std::int32_t copies_per_dim,
    const ShotOptions& options = {});

/// Plans for every square factor 1, 4, 9, ... up to the feasible maximum —
/// the series of the paper's Fig. 11.
[[nodiscard]] std::vector<ParallelPlan> parallelization_sweep(
    const compiler::CompileResult& result,
    const hardware::HardwareConfig& config, const ShotOptions& options = {});

}  // namespace parallax::shots
