// Output formats for rendered artifacts. The text format reproduces the
// historical bench-binary layout (preamble, aligned tables, derived summary
// lines); csv and json are machine-readable projections of the same
// deterministic document — volatile extras (Rendered::volatile_text) are
// excluded from all three and printed to stderr by the drivers.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "report/artifact.hpp"

namespace parallax::report {

enum class Format { kTable, kCsv, kJson };

/// Single-line projection of possibly multi-line text (embedded newlines
/// become spaces) — used for CSV comment lines and `bench --list` rows.
[[nodiscard]] std::string flat_line(std::string text);

/// "table" / "csv" / "json"; nullopt otherwise.
[[nodiscard]] std::optional<Format> parse_format(std::string_view name);
[[nodiscard]] std::string_view format_name(Format format) noexcept;

/// The historical bench-binary layout:
///   === <title> ===
///   <description>
///   seed=<seed> full_scale=<0|1>
///
///   [<block title>:]
///   <aligned table>
///   [<block notes>]
///
///   <summary lines>
[[nodiscard]] std::string render_text(const Rendered& rendered,
                                      const Options& options);

/// Comment-annotated CSV: `# artifact/title/summary` comment lines around
/// one header+rows record set per block (util::csv escaping).
[[nodiscard]] std::string render_csv(const Rendered& rendered);

/// One compact JSON object (util::json) terminated by a newline — `--all`
/// emits one object per line (JSON Lines).
[[nodiscard]] std::string render_json(const Rendered& rendered);

[[nodiscard]] std::string render(const Rendered& rendered,
                                 const Options& options, Format format);

}  // namespace parallax::report
