#include "report/perf.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "anneal/kernels.hpp"
#include "bench_circuits/registry.hpp"
#include "cache/cache.hpp"
#include "circuit/interaction_graph.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "parallax/compiler.hpp"
#include "placement/graphine.hpp"
#include "placement/windowed.hpp"
#include "qasm/stream_parser.hpp"
#include "qasm/writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "shard/spec.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep.hpp"
#include "technique/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace parallax::report {

namespace {

/// The largest table04 circuit — the cold-anneal cost ceiling the hot-path
/// work is gated on.
constexpr const char* kGateCircuit = "TFIM";

struct AnnealSample {
  double wall_seconds = 0.0;
  placement::PlacementStats stats;
  double objective = 0.0;
  double interaction_radius = 0.0;
};

/// Min-of-`repeats` cold anneal of `graph` under `popts` (wall noise is
/// one-sided, so the minimum is the stable estimator).
AnnealSample measure_anneal(const circuit::InteractionGraph& graph,
                            const placement::GraphineOptions& popts,
                            int repeats) {
  AnnealSample best;
  best.wall_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    placement::PlacementStats stats;
    const placement::Topology topology =
        placement::graphine_place(graph, popts, &stats);
    if (stats.anneal_seconds < best.wall_seconds) {
      best.wall_seconds = stats.anneal_seconds;
      best.stats = stats;
      best.interaction_radius = topology.interaction_radius;
      std::vector<double> coords(2 * topology.positions.size());
      for (std::size_t q = 0; q < topology.positions.size(); ++q) {
        coords[2 * q] = topology.positions[q].x;
        coords[2 * q + 1] = topology.positions[q].y;
      }
      // Scored with the legacy objective so all three modes are directly
      // comparable.
      best.objective =
          placement::placement_objective(coords, graph, popts);
    }
  }
  return best;
}

util::JsonValue anneal_json(const AnnealSample& sample) {
  auto node = util::JsonValue::object();
  node["wall_seconds"] = sample.wall_seconds;
  node["evaluations"] = sample.stats.evaluations;
  node["delta_evaluations"] = sample.stats.delta_evaluations;
  const double total = static_cast<double>(sample.stats.evaluations +
                                           sample.stats.delta_evaluations);
  node["evaluations_per_second"] =
      sample.wall_seconds > 0.0 ? total / sample.wall_seconds : 0.0;
  node["restarts"] = sample.stats.restarts;
  node["local_searches"] = sample.stats.local_searches;
  node["chains"] = sample.stats.chains;
  node["objective"] = sample.objective;
  node["interaction_radius"] = sample.interaction_radius;
  if (!sample.stats.portfolio_winner.empty()) {
    node["winner"] = sample.stats.portfolio_winner;
    auto entrants = util::JsonValue::array();
    for (const auto& entrant : sample.stats.entrants) {
      auto row = util::JsonValue::object();
      row["name"] = entrant.name;
      row["value"] = entrant.value;
      row["wall_seconds"] = entrant.wall_seconds;
      row["evaluations"] = entrant.evaluations;
      row["delta_evaluations"] = entrant.delta_evaluations;
      row["winner"] = entrant.winner;
      entrants.push_back(std::move(row));
    }
    node["entrants"] = std::move(entrants);
  }
  return node;
}

bool write_text(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

std::optional<std::string> read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

placement::GraphineOptions technique_placement_options(
    const char* technique, std::uint64_t master_seed,
    const std::string& circuit_name) {
  pipeline::CompileOptions options;
  if (technique != nullptr) {
    technique::Registry::global().apply_tuning(technique, options);
  }
  placement::GraphineOptions popts = options.placement;
  popts.seed =
      util::derive_seed(master_seed, circuit_name, util::kPlacementSeedSalt);
  return popts;
}

}  // namespace

std::optional<double> scan_json_number(const std::string& text,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t cursor = at + needle.size();
  while (cursor < text.size() &&
         (text[cursor] == ':' || text[cursor] == ' ' || text[cursor] == '\t')) {
    ++cursor;
  }
  const char* begin = text.c_str() + cursor;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return value;
}

int run_perf_snapshot(const std::string& path, const PerfOptions& options,
                      std::FILE* log) {
  const auto& registry = technique::Registry::global();
  bench_circuits::GenOptions gen;
  gen.seed = options.seed;

  // --- Anneal A/B on the largest table04 circuit, cache-disabled ----------
  const circuit::Circuit raw =
      bench_circuits::make_benchmark(kGateCircuit, gen);
  const circuit::Circuit circuit = circuit::transpile(raw);
  const circuit::InteractionGraph graph(circuit);

  std::fprintf(log, "[perf] cold anneal A/B on %s (%d qubits)...\n",
               kGateCircuit, graph.n_qubits());
  const AnnealSample legacy = measure_anneal(
      graph,
      technique_placement_options(nullptr, options.seed, circuit.name()), 3);
  const AnnealSample fast = measure_anneal(
      graph,
      technique_placement_options("parallax-fast", options.seed,
                                  circuit.name()),
      3);
  const AnnealSample mc4 = measure_anneal(
      graph,
      technique_placement_options("parallax-mc4", options.seed,
                                  circuit.name()),
      2);
  const AnnealSample race = measure_anneal(
      graph,
      technique_placement_options("parallax-race", options.seed,
                                  circuit.name()),
      2);

  const double fast_speedup =
      fast.wall_seconds > 0.0 ? legacy.wall_seconds / fast.wall_seconds : 0.0;
  const double mc4_per_chain =
      mc4.wall_seconds / static_cast<double>(std::max(mc4.stats.chains, 1));
  std::fprintf(log,
               "[perf] legacy %.1fms | delta %.1fms (%.1fx) | mc4 %.1fms "
               "(%.1fms/chain, objective %.1f vs %.1f)\n",
               legacy.wall_seconds * 1e3, fast.wall_seconds * 1e3,
               fast_speedup, mc4.wall_seconds * 1e3, mc4_per_chain * 1e3,
               mc4.objective, legacy.objective);
  std::fprintf(log,
               "[perf] race %.1fms (winner %s, objective %.1f) | simd %s\n",
               race.wall_seconds * 1e3,
               race.stats.portfolio_winner.empty()
                   ? "-"
                   : race.stats.portfolio_winner.c_str(),
               race.objective,
               anneal::kernels::lane_name(anneal::kernels::active_lane()));

  // --- Streaming QASM parse throughput ------------------------------------
  // Writer-realistic source (full-precision angles, exactly what
  // qasm::write emits) through the pull parser with a counting visitor —
  // the import hot path. Min-of-3 wall, like the anneal A/B.
  double qasm_wall = 1e300;
  std::size_t qasm_bytes = 0;
  std::uint64_t qasm_gates = 0;
  {
    util::Rng qrng(options.seed ^ 0x51A3u);
    circuit::Circuit synthetic(256, "perf_parse");
    constexpr int kParseGates = 200000;
    for (int g = 0; g < kParseGates; ++g) {
      const auto a = static_cast<std::int32_t>(qrng.next_below(256));
      auto b = static_cast<std::int32_t>(qrng.next_below(256));
      if (b == a) b = (a + 1) % 256;
      if (g % 2 == 0) {
        synthetic.u3(a, qrng.uniform(0.0, 6.28), qrng.uniform(-3.14, 3.14),
                     qrng.uniform(0.0, 6.28));
      } else {
        synthetic.cz(a, b);
      }
    }
    const std::string source = qasm::to_qasm(synthetic);
    qasm_bytes = source.size();
    class CountOnly final : public qasm::GateStreamVisitor {
     public:
      void on_gate(const circuit::Gate&) override {}
    };
    for (int r = 0; r < 3; ++r) {
      qasm::ViewStreamBuf buf(source);
      std::istream in(&buf);
      qasm::StreamParser parser(in, "perf_parse.qasm");
      CountOnly visitor;
      const util::Stopwatch parse_watch;
      const qasm::StreamTotals totals = parser.run(visitor);
      qasm_wall = std::min(qasm_wall, parse_watch.seconds());
      qasm_gates = totals.n_gates;
    }
    std::fprintf(log, "[perf] qasm parse: %.1f MB in %.1fms (%.0f MB/s)\n",
                 static_cast<double>(qasm_bytes) / 1e6, qasm_wall * 1e3,
                 qasm_wall > 0.0
                     ? static_cast<double>(qasm_bytes) / 1e6 / qasm_wall
                     : 0.0);
  }

  // --- Windowed placement on the gate circuit ------------------------------
  // The hierarchical path external million-gate corpora compile through:
  // partition, per-window anneals, tile stitch. Min-of-2 wall.
  double windowed_wall = 1e300;
  placement::PlacementStats windowed_stats;
  double windowed_radius = 0.0;
  {
    placement::GraphineOptions wopts =
        technique_placement_options("parallax-fast", options.seed,
                                    circuit.name());
    wopts.max_window_qubits = std::max(graph.n_qubits() / 4, 8);
    for (int r = 0; r < 2; ++r) {
      placement::PlacementStats stats;
      const util::Stopwatch windowed_watch;
      const placement::Topology topology =
          placement::windowed_place(graph, wopts, &stats);
      const double wall = windowed_watch.seconds();
      if (wall < windowed_wall) {
        windowed_wall = wall;
        windowed_stats = stats;
        windowed_radius = topology.interaction_radius;
      }
    }
    std::fprintf(log,
                 "[perf] windowed placement (cap %d): %d windows in %.1fms "
                 "(vs %.1fms single anneal)\n",
                 wopts.max_window_qubits, windowed_stats.windows,
                 windowed_wall * 1e3, fast.wall_seconds * 1e3);
  }

  // --- Sweep throughput, cold then warm, through a scratch cache ----------
  const auto config = hardware::HardwareConfig::quera_aquila_256();
  const std::vector<std::string> acronyms = {"WST", "QAOA", "TFIM", "QV"};
  const std::vector<std::string> techniques = {"parallax", "parallax-mc4"};
  const auto circuits = sweep::benchmark_circuits(acronyms, gen);
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() /
      ("parallax-perf-" + std::to_string(static_cast<unsigned long long>(
                              options.seed ^ 0x9e3779b97f4a7c15ULL)));
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);

  sweep::Options sweep_options;
  sweep_options.compile.seed = options.seed;
  sweep_options.n_threads = options.threads;
  sweep_options.cache =
      cache::CompilationCache::open({.directory = cache_dir.string()});

  std::fprintf(log, "[perf] sweep %zux%zu cold...\n", circuits.size(),
               techniques.size());
  const sweep::Result cold = sweep::run(circuits, techniques,
                                        {{config.name, config}}, sweep_options,
                                        registry);
  std::fprintf(log, "[perf] sweep warm replay...\n");
  const sweep::Result warm = sweep::run(circuits, techniques,
                                        {{config.name, config}}, sweep_options,
                                        registry);
  const double warm_hit_rate =
      warm.cells.empty() ? 0.0
                         : static_cast<double>(warm.result_cache_hits) /
                               static_cast<double>(warm.cells.size());

  // --- Serve session STATS over the now-warm cache ------------------------
  serve::SessionStats serve_stats;
  {
    // A fresh cache handle on the same directory, so the session's hit/miss
    // counters cover the serve replay alone (the disk tier carries the
    // warmth, not the handle).
    serve::SweepService service(
        {.n_threads = options.threads,
         .cache = cache::CompilationCache::open(
             {.directory = cache_dir.string()})});
    shard::SweepSpec spec;
    spec.circuits = circuits;
    spec.techniques = techniques;
    spec.machines = {{config.name, config}};
    spec.options.compile.seed = options.seed;
    service.submit(spec)->wait();
    serve_stats = service.session_stats();
  }

  // --- Multi-client farm throughput over the warm cache -------------------
  // Three concurrent clients against one poll()-driven session; every
  // request replays from the disk-warm cache, so the number is the farm
  // front-end's own overhead (framing, fair-share dispatch, streaming),
  // not compile time.
  constexpr std::size_t kFarmClients = 3;
  serve::SessionStats farm_stats;
  double farm_wall = 0.0;
  std::size_t farm_cells = 0;
  {
    const std::string socket_path =
        (std::filesystem::temp_directory_path() /
         ("parallax-perf-farm-" +
          std::to_string(static_cast<unsigned long long>(
              options.seed ^ 0xc2b2ae3d27d4eb4fULL)) +
          ".sock"))
            .string();
    serve::SweepService service(
        {.n_threads = options.threads,
         .cache = cache::CompilationCache::open(
             {.directory = cache_dir.string()})});
    serve::ServerOptions server_options;
    std::thread server([&] {
      (void)serve::serve_unix_socket(socket_path, service, server_options);
    });
    for (int i = 0; i < 1000 && !std::filesystem::exists(socket_path); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    shard::SweepSpec spec;
    spec.circuits = circuits;
    spec.techniques = techniques;
    spec.machines = {{config.name, config}};
    spec.options.compile.seed = options.seed;
    std::fprintf(log, "[perf] serve farm: %zu concurrent clients...\n",
                 kFarmClients);
    std::atomic<std::size_t> delivered{0};
    const util::Stopwatch farm_watch;
    std::vector<std::thread> clients;
    clients.reserve(kFarmClients);
    for (std::size_t c = 0; c < kFarmClients; ++c) {
      clients.emplace_back([&] {
        serve::Client client(socket_path);
        const serve::ClientOutcome outcome = client.run(spec);
        delivered.fetch_add(
            static_cast<std::size_t>(outcome.summary.executed_cells),
            std::memory_order_relaxed);
        client.quit();
      });
    }
    for (auto& thread : clients) thread.join();
    farm_wall = farm_watch.seconds();
    farm_cells = delivered.load(std::memory_order_relaxed);
    serve::Client(socket_path).stop();  // graceful drain unlinks the socket
    server.join();
    farm_stats = service.session_stats();
  }
  std::filesystem::remove_all(cache_dir, ec);

  // --- parse_request_line micro-benchmark ---------------------------------
  // The SUBMIT fast path: one multi-megabyte hex spec line tokenized in
  // place (no line copy) and decoded. Min-of-5 wall, like the anneal A/B.
  double parse_wall = 1e300;
  std::size_t parse_line_bytes = 0;
  {
    shard::SweepSpec spec;
    spec.circuits = circuits;
    spec.techniques = techniques;
    spec.machines = {{config.name, config}};
    spec.options.compile.seed = options.seed;
    std::string line = serve::submit_line(7, spec);
    line.pop_back();  // parse_request_line takes the line sans newline
    parse_line_bytes = line.size();
    for (int r = 0; r < 5; ++r) {
      const util::Stopwatch parse_watch;
      const serve::RequestLine parsed = serve::parse_request_line(line);
      const double wall = parse_watch.seconds();
      if (parsed.spec.total_cells() != spec.total_cells()) {
        std::fprintf(log, "[perf] FAILED: parse round-trip mismatch\n");
        return 1;
      }
      parse_wall = std::min(parse_wall, wall);
    }
    std::fprintf(log, "[perf] parse_request_line: %.2f MB line in %.2fms\n",
                 static_cast<double>(parse_line_bytes) / 1e6,
                 parse_wall * 1e3);
  }

  // --- Simulator shot throughput on WST ------------------------------------
  constexpr const char* kSimCircuit = "WST";
  constexpr std::int64_t kSimShots = 4096;
  std::fprintf(log, "[perf] simulating %lld shots of %s/parallax...\n",
               static_cast<long long>(kSimShots), kSimCircuit);
  pipeline::CompileOptions sim_compile;
  sim_compile.seed = options.seed;
  sim_compile.scheduler.record_positions = true;
  const compiler::CompileResult sim_schedule = compiler::compile(
      bench_circuits::make_benchmark(kSimCircuit, gen), config, sim_compile);
  sim::SimOptions sim_options;
  sim_options.shots = kSimShots;
  sim_options.seed =
      util::derive_seed(options.seed, kSimCircuit, util::kSimSeedSalt);
  sim_options.n_threads = options.threads;
  const util::Stopwatch sim_watch;
  const sim::SurvivalEstimate sim_estimate =
      sim::simulate(sim_schedule, config, sim_options);
  const double sim_wall = sim_watch.seconds();
  const double sim_model = noise::success_probability(sim_schedule, config);
  std::fprintf(log,
               "[perf] sim %.3fs (%.0f shots/s), survival %.4f vs model "
               "%.4f\n",
               sim_wall,
               sim_wall > 0.0 ? static_cast<double>(kSimShots) / sim_wall
                              : 0.0,
               sim_estimate.mean(), sim_model);

  // --- Snapshot ------------------------------------------------------------
  auto root = util::JsonValue::object();
  root["schema"] = "parallax-perf-snapshot-v1";
  // The CI-gated headline: single-chain delta-cost anneal wall on the gate
  // circuit. Deliberately parallelism-independent (mc4 wall depends on core
  // count; this does not).
  root["gate_anneal_wall_seconds"] = fast.wall_seconds;
  root["gate_circuit"] = kGateCircuit;
  root["gate_qubits"] = graph.n_qubits();
  root["seed"] = static_cast<double>(options.seed);
  // Which kernel lane the anneal numbers above were measured with (scalar,
  // sse2, or avx2) — snapshots from different hosts are only comparable
  // lane-for-lane.
  root["simd_lane"] =
      std::string(anneal::kernels::lane_name(anneal::kernels::active_lane()));

  auto anneal = util::JsonValue::object();
  anneal["legacy"] = anneal_json(legacy);
  anneal["delta_single_chain"] = anneal_json(fast);
  anneal["delta_mc4"] = anneal_json(mc4);
  anneal["race"] = anneal_json(race);
  anneal["delta_speedup_vs_legacy"] = fast_speedup;
  anneal["mc4_per_chain_wall_seconds"] = mc4_per_chain;
  anneal["mc4_per_chain_speedup_vs_legacy"] =
      mc4_per_chain > 0.0 ? legacy.wall_seconds / mc4_per_chain : 0.0;
  root["anneal"] = std::move(anneal);

  auto qasm_node = util::JsonValue::object();
  qasm_node["source_bytes"] = qasm_bytes;
  qasm_node["gates"] = qasm_gates;
  qasm_node["wall_seconds"] = qasm_wall;
  qasm_node["mb_per_second"] =
      qasm_wall > 0.0 ? static_cast<double>(qasm_bytes) / 1e6 / qasm_wall
                      : 0.0;
  qasm_node["gates_per_second"] =
      qasm_wall > 0.0 ? static_cast<double>(qasm_gates) / qasm_wall : 0.0;
  root["qasm_parse"] = std::move(qasm_node);

  auto windowed_node = util::JsonValue::object();
  windowed_node["windows"] = windowed_stats.windows;
  windowed_node["windows_annealed"] = windowed_stats.windows_annealed;
  windowed_node["wall_seconds"] = windowed_wall;
  windowed_node["anneal_seconds"] = windowed_stats.anneal_seconds;
  windowed_node["interaction_radius"] = windowed_radius;
  windowed_node["single_anneal_wall_seconds"] = fast.wall_seconds;
  root["windowed_placement"] = std::move(windowed_node);

  auto sweep_node = util::JsonValue::object();
  sweep_node["cells"] = cold.cells.size();
  auto cold_node = util::JsonValue::object();
  cold_node["wall_seconds"] = cold.wall_seconds;
  cold_node["cells_per_second"] =
      cold.wall_seconds > 0.0
          ? static_cast<double>(cold.cells.size()) / cold.wall_seconds
          : 0.0;
  cold_node["anneals"] = cold.anneals;
  cold_node["result_cache_hits"] = cold.result_cache_hits;
  sweep_node["cold"] = std::move(cold_node);
  auto warm_node = util::JsonValue::object();
  warm_node["wall_seconds"] = warm.wall_seconds;
  warm_node["cells_per_second"] =
      warm.wall_seconds > 0.0
          ? static_cast<double>(warm.cells.size()) / warm.wall_seconds
          : 0.0;
  warm_node["anneals"] = warm.anneals;
  warm_node["result_cache_hits"] = warm.result_cache_hits;
  warm_node["result_cache_misses"] = warm.result_cache_misses;
  warm_node["hit_rate"] = warm_hit_rate;
  sweep_node["warm"] = std::move(warm_node);
  root["sweep"] = std::move(sweep_node);

  auto serve_node = util::JsonValue::object();
  serve_node["requests"] = serve_stats.requests;
  serve_node["cells_executed"] = serve_stats.cells_executed;
  serve_node["cells_failed"] = serve_stats.cells_failed;
  serve_node["result_cache_hits"] = serve_stats.result_cache_hits;
  serve_node["result_cache_misses"] = serve_stats.result_cache_misses;
  serve_node["placement_cache_hits"] = serve_stats.placement_cache_hits;
  serve_node["placement_cache_misses"] = serve_stats.placement_cache_misses;
  serve_node["anneals"] = serve_stats.anneals;
  serve_node["threads"] = serve_stats.threads;
  serve_node["cache_enabled"] = serve_stats.cache_enabled;
  root["serve"] = std::move(serve_node);

  auto farm_node = util::JsonValue::object();
  farm_node["clients"] = kFarmClients;
  farm_node["requests"] = farm_stats.requests;
  farm_node["cells_delivered"] = farm_cells;
  farm_node["wall_seconds"] = farm_wall;
  farm_node["cells_per_second"] =
      farm_wall > 0.0 ? static_cast<double>(farm_cells) / farm_wall : 0.0;
  farm_node["anneals"] = farm_stats.anneals;
  farm_node["client_rows"] = farm_stats.clients.size();
  root["serve_farm"] = std::move(farm_node);

  auto parse_node = util::JsonValue::object();
  parse_node["line_bytes"] = parse_line_bytes;
  parse_node["wall_seconds"] = parse_wall;
  parse_node["mb_per_second"] =
      parse_wall > 0.0
          ? static_cast<double>(parse_line_bytes) / 1e6 / parse_wall
          : 0.0;
  root["parse_request_line"] = std::move(parse_node);

  auto sim_node = util::JsonValue::object();
  sim_node["circuit"] = kSimCircuit;
  sim_node["shots"] = sim_estimate.shots;
  sim_node["wall_seconds"] = sim_wall;
  sim_node["shots_per_second"] =
      sim_wall > 0.0 ? static_cast<double>(sim_estimate.shots) / sim_wall
                     : 0.0;
  sim_node["survival_mean"] = sim_estimate.mean();
  sim_node["model_success"] = sim_model;
  sim_node["outcome_digest"] = sim_estimate.outcome_digest.hex();
  root["sim"] = std::move(sim_node);

  if (!write_text(path, root.dump(2) + "\n")) {
    std::fprintf(log, "[perf] FAILED to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(log, "[perf] snapshot written to %s\n", path.c_str());

  // --- Baseline gate -------------------------------------------------------
  if (!options.baseline_path.empty()) {
    const auto baseline = read_text(options.baseline_path);
    if (!baseline) {
      std::fprintf(log, "[perf] FAILED to read baseline %s\n",
                   options.baseline_path.c_str());
      return 1;
    }
    const auto gate = scan_json_number(*baseline, "gate_anneal_wall_seconds");
    if (!gate) {
      std::fprintf(log,
                   "[perf] baseline %s has no gate_anneal_wall_seconds\n",
                   options.baseline_path.c_str());
      return 1;
    }
    const double limit = *gate * (1.0 + options.tolerance);
    if (fast.wall_seconds > limit) {
      std::fprintf(log,
                   "[perf] REGRESSION: anneal wall %.1fms exceeds baseline "
                   "%.1fms by more than %.0f%% (limit %.1fms)\n",
                   fast.wall_seconds * 1e3, *gate * 1e3,
                   options.tolerance * 100.0, limit * 1e3);
      return 1;
    }
    std::fprintf(log,
                 "[perf] gate ok: anneal wall %.1fms vs baseline %.1fms "
                 "(limit +%.0f%%)\n",
                 fast.wall_seconds * 1e3, *gate * 1e3,
                 options.tolerance * 100.0);
  }
  return 0;
}

}  // namespace parallax::report
