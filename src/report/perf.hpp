// The per-PR performance snapshot behind `parallax bench --perf-json`: a
// machine-readable JSON record of the anneal hot path (legacy vs delta-cost
// vs multi-chain on the largest table04 circuit), sweep throughput cold and
// warm, and a live serve session's STATS counters. The committed
// BENCH_PR<N>.json files form the repo's perf trajectory; CI replays the
// suite and fails when the gated anneal wall regresses beyond tolerance
// against the committed baseline.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace parallax::report {

struct PerfOptions {
  /// Master seed (placement seeds derive per circuit, as the sweep does).
  std::uint64_t seed = 0xA77AC5ULL;
  /// Worker threads for the sweep/serve sections; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// When non-empty: a committed snapshot to gate against — the run fails
  /// (exit 1) if the measured gate_anneal_wall_seconds exceeds the
  /// baseline's by more than `tolerance`.
  std::string baseline_path;
  /// Allowed relative regression of the gate metric (0.25 = +25%).
  double tolerance = 0.25;
};

/// Runs the perf suite, writes the JSON snapshot to `path`, and prints a
/// human summary to `log`. Returns a process exit code: 0 on success,
/// 1 on write failure or baseline regression.
int run_perf_snapshot(const std::string& path, const PerfOptions& options,
                      std::FILE* log);

/// Minimal baseline reader: finds the first `"key"` in `text` and parses
/// the number after its colon. util/json stays write-only by design; the
/// snapshot schema keeps gated metrics at unique top-level keys so a key
/// scan is unambiguous.
[[nodiscard]] std::optional<double> scan_json_number(const std::string& text,
                                                     const std::string& key);

}  // namespace parallax::report
