// The bench harness environment, parsed once. Every PARALLAX_* knob the
// bench shims honor lives in this one documented struct, so a knob cannot
// be read with different defaults (or different clamping) in different
// binaries — the old per-binary getenv/strtoull sprinkling is gone.
//
// Parsing is strict (util/parse): PARALLAX_SEED=banana is a reported error
// naming the variable, never strtoull's silent 0.
//
// Knobs:
//   PARALLAX_SEED=<n>       master seed (default 42).
//   PARALLAX_FULL_SCALE=0|1 paper-scale VQE (~450k gates) instead of the
//                           reduced default (default 0).
//   PARALLAX_THREADS=<n>    sweep worker threads (default 0 = hardware).
//   PARALLAX_CACHE=0|1      persist placements/results in the compilation
//                           cache so a bench rerun skips every anneal it
//                           has seen (default 0).
//   PARALLAX_CACHE_DIR=<d>  cache root (default .parallax-cache; consumed
//                           by cache::default_directory, recorded here).
//   PARALLAX_CACHE_MAX_DISK_BYTES=<n>
//                           disk-tier budget; over-budget entries are
//                           evicted LRU-by-index-order (default 0 =
//                           unbounded).
//   PARALLAX_SHARDS=<n>     partition every sweep into n shards and merge
//                           (byte-identical results). 0 and 1 both mean
//                           unsharded; values above 2^20 clamp to 2^20 so
//                           an absurd count can neither wrap nor spin
//                           millions of empty shards.
//   PARALLAX_SERVE=<path>   route every sweep to the long-lived
//                           `parallax serve --socket <path>` session
//                           instead of compiling in-process.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace parallax::report {

/// Thrown by EnvConfig::from_environment on a malformed variable; the
/// message names the variable and the rejected value.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EnvConfig {
  std::uint64_t seed = 42;
  bool full_scale = false;
  std::size_t threads = 0;
  bool cache = false;
  std::string cache_dir;
  std::uint64_t cache_max_disk_bytes = 0;
  std::uint32_t shards = 1;
  std::string serve_socket;

  /// Reads and validates every knob above. Throws EnvError on garbage.
  [[nodiscard]] static EnvConfig from_environment();
};

}  // namespace parallax::report
