// The bench orchestrator: drives any subset of the artifact registry
// through one Runner (one warm session), rendering each artifact to `out`
// as soon as its sweeps complete and printing progress, volatile extras,
// and the session-wide accounting epilogue to `log`. This is the engine
// behind `parallax bench` and the thin bench shim binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "report/artifact.hpp"
#include "report/render.hpp"
#include "report/runner.hpp"

namespace parallax::report {

struct OrchestratorOptions {
  Options report;
  Format format = Format::kTable;
  /// Per-sweep progress lines on `log` ("[fig09] sweep 1/…"). Off for the
  /// single-artifact shims, on for `parallax bench`.
  bool progress = false;
};

struct ArtifactOutcome {
  std::string name;
  bool ok = false;
  /// Non-empty when !ok (failed cells, request failure).
  std::string error;
  double wall_seconds = 0.0;
};

/// Runs each named artifact in order. Unknown names throw
/// UnknownArtifactError before any work happens. A failing artifact is
/// reported in its outcome (and on `log`) and the remaining artifacts still
/// run. Rendered documents go to `out`; volatile extras to `log`.
std::vector<ArtifactOutcome> run_artifacts(
    const Registry& registry, const std::vector<std::string>& names,
    Runner& runner, const OrchestratorOptions& options, std::FILE* out,
    std::FILE* log);

/// The session-wide accounting epilogue: artifacts, sweeps, cells, result
/// hits (with hit rate), placement disk hits, anneals, wall clocks. Printed
/// to `log` so the rendered stdout stays deterministic.
void print_accounting(std::FILE* log, std::size_t artifacts,
                      const RunTotals& totals, double session_seconds);

/// The server's lifetime accounting (a STATS reply) — printed after the
/// epilogue when the orchestrator ran against a socket session.
void print_server_stats(std::FILE* log, const serve::SessionStats& stats);

/// Entry point shared by the thin bench shim binaries: reads EnvConfig,
/// builds the executor the environment asks for (PARALLAX_SERVE socket
/// session, PARALLAX_SHARDS in-process sharding, plain in-process
/// otherwise), renders `artifact_name` as a table on stdout, and prints the
/// accounting epilogue on stderr. Returns a process exit code.
int bench_main(const char* artifact_name) noexcept;

}  // namespace parallax::report
