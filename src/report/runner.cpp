#include "report/runner.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "report/artifact.hpp"
#include "shard/shard.hpp"

namespace parallax::report {

sweep::Result Runner::run(const shard::SweepSpec& spec) {
  sweep::Result result = execute(spec);
  ++totals_.sweeps;
  totals_.cells += result.cells.size();
  for (const auto& cell : result.cells) {
    if (cell.skipped || cell.cancelled) continue;
    ++totals_.executed_cells;
    if (!cell.ok()) ++totals_.failed_cells;
  }
  totals_.result_cache_hits += result.result_cache_hits;
  totals_.result_cache_misses += result.result_cache_misses;
  totals_.placement_disk_hits += result.placement_disk_hits;
  totals_.anneals += result.anneals;
  totals_.sweep_seconds += result.wall_seconds;
  return result;
}

sweep::Result InProcessRunner::execute(const shard::SweepSpec& spec) {
  sweep::Options options = spec.options;
  options.n_threads = config_.n_threads;
  options.cache = config_.cache;
  options.on_cell = on_cell_;
  if (config_.shards > 1) {
    // The multi-host campaign shape, in one process: partition the matrix,
    // run each shard, merge. Byte-identical to the plain path by the shard
    // layer's differential guarantee.
    return shard::run_sharded(spec.circuits, spec.techniques, spec.machines,
                              config_.shards, options);
  }
  return sweep::run(spec.circuits, spec.techniques, spec.machines, options);
}

sweep::Result ServiceRunner::execute(const shard::SweepSpec& spec) {
  const std::size_t n_techniques = spec.techniques.size();
  const std::size_t n_machines = spec.machines.size();
  const std::size_t total = spec.total_cells();

  sweep::Result result;
  result.cells.resize(total);
  std::vector<char> placed(total, 0);
  std::mutex mutex;  // cell callbacks may overlap across worker threads

  const auto ticket = service_.submit(
      spec, [&](const sweep::Cell& cell) {
        const std::size_t flat =
            (cell.circuit_index * n_techniques + cell.technique_index) *
                n_machines +
            cell.machine_index;
        {
          std::lock_guard lock(mutex);
          if (flat < total && placed[flat] == 0) {
            placed[flat] = 1;
            result.cells[flat] = cell;
          }
        }
        if (on_cell_) on_cell_(cell);
      });
  const serve::Summary& summary = ticket->wait();
  if (!summary.ok()) {
    throw ReportError("serve session request failed: " + summary.error);
  }

  // Label the cells the session never streamed (a cancelled request) the
  // way sweep::run labels them — same shape either way.
  for (std::size_t flat = 0; flat < total; ++flat) {
    if (placed[flat] != 0) continue;
    sweep::Cell& cell = result.cells[flat];
    const std::size_t per_circuit = n_techniques * n_machines;
    cell.circuit_index = flat / per_circuit;
    cell.technique_index = (flat % per_circuit) / n_machines;
    cell.machine_index = flat % n_machines;
    cell.circuit = spec.circuits[cell.circuit_index].name;
    cell.technique = spec.techniques[cell.technique_index];
    cell.machine = spec.machines[cell.machine_index].name;
    cell.cancelled = summary.cancelled;
    cell.skipped = !summary.cancelled;
  }
  result.cancelled = summary.cancelled;
  result.result_cache_hits = summary.result_cache_hits;
  result.result_cache_misses = summary.result_cache_misses;
  result.placement_disk_hits = summary.placement_disk_hits;
  result.anneals = static_cast<std::size_t>(summary.anneals);
  result.wall_seconds = summary.wall_seconds;
  return result;
}

sweep::Result ClientRunner::execute(const shard::SweepSpec& spec) {
  serve::ClientOutcome outcome = client_.run(spec, on_cell_);
  if (!outcome.summary.ok()) {
    throw ReportError("serve request failed: " + outcome.summary.error);
  }
  return std::move(outcome.result);
}

}  // namespace parallax::report
