#include "report/orchestrator.hpp"

#include <exception>
#include <memory>

#include "report/env.hpp"
#include "util/stopwatch.hpp"

namespace parallax::report {

std::vector<ArtifactOutcome> run_artifacts(
    const Registry& registry, const std::vector<std::string>& names,
    Runner& runner, const OrchestratorOptions& options, std::FILE* out,
    std::FILE* log) {
  // Validate every name up front: a typo must fail before hours of sweeps.
  for (const auto& name : names) (void)registry.at(name);

  std::vector<ArtifactOutcome> outcomes;
  for (const auto& name : names) {
    const Artifact& artifact = registry.at(name);
    ArtifactOutcome outcome;
    outcome.name = name;
    const util::Stopwatch stopwatch;
    std::size_t sweep_index = 0;
    try {
      const Rendered rendered = generate(
          artifact, options.report, [&](const shard::SweepSpec& spec) {
            ++sweep_index;
            sweep::Result result = runner.run(spec);
            if (options.progress) {
              std::fprintf(
                  log,
                  "[%s] sweep %zu: %zu cells, %zu result hits, "
                  "anneals=%zu in %.1fs\n",
                  name.c_str(), sweep_index, result.cells.size(),
                  result.result_cache_hits, result.anneals,
                  result.wall_seconds);
            }
            return result;
          });
      // Render incrementally: each artifact's document is flushed as soon
      // as its sweeps complete, so a long `--all` run shows results as the
      // session streams through them.
      const std::string document =
          render(rendered, options.report, options.format);
      std::fwrite(document.data(), 1, document.size(), out);
      std::fflush(out);
      if (!rendered.volatile_text.empty()) {
        std::fprintf(log, "\n[%s] %s\n", name.c_str(),
                     rendered.volatile_text.c_str());
      }
      outcome.ok = true;
    } catch (const std::exception& error) {
      outcome.error = error.what();
      std::fprintf(log, "[%s] FAILED: %s\n", name.c_str(), error.what());
    }
    outcome.wall_seconds = stopwatch.seconds();
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

void print_accounting(std::FILE* log, std::size_t artifacts,
                      const RunTotals& totals, double session_seconds) {
  const std::uint64_t lookups =
      totals.result_cache_hits + totals.result_cache_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(totals.result_cache_hits) /
                         static_cast<double>(lookups);
  std::fprintf(log, "=== bench session accounting ===\n");
  std::fprintf(log,
               "artifacts: %zu   sweeps: %llu   cells: %llu "
               "(%llu executed, %llu failed)\n",
               artifacts, static_cast<unsigned long long>(totals.sweeps),
               static_cast<unsigned long long>(totals.cells),
               static_cast<unsigned long long>(totals.executed_cells),
               static_cast<unsigned long long>(totals.failed_cells));
  std::fprintf(log,
               "result cache: %llu hits, %llu misses (%.1f%% hits)   "
               "placements from disk: %llu\n",
               static_cast<unsigned long long>(totals.result_cache_hits),
               static_cast<unsigned long long>(totals.result_cache_misses),
               hit_rate,
               static_cast<unsigned long long>(totals.placement_disk_hits));
  std::fprintf(log, "anneals: %llu\n",
               static_cast<unsigned long long>(totals.anneals));
  std::fprintf(log, "sweep wall: %.1fs   session wall: %.1fs\n",
               totals.sweep_seconds, session_seconds);
}

void print_server_stats(std::FILE* log, const serve::SessionStats& stats) {
  std::fprintf(
      log,
      "server session: %llu requests, %llu cells executed (%llu failed), "
      "result cache %llu/%llu, placement cache %llu/%llu, anneals=%llu, "
      "%zu threads%s, up %.1fs\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.cells_executed),
      static_cast<unsigned long long>(stats.cells_failed),
      static_cast<unsigned long long>(stats.result_cache_hits),
      static_cast<unsigned long long>(stats.result_cache_misses),
      static_cast<unsigned long long>(stats.placement_cache_hits),
      static_cast<unsigned long long>(stats.placement_cache_misses),
      static_cast<unsigned long long>(stats.anneals),
      static_cast<std::size_t>(stats.threads),
      stats.cache_enabled ? "" : ", no cache", stats.uptime_seconds);
  for (const serve::ClientStats& client : stats.clients) {
    std::fprintf(
        log,
        "  client %llu: %llu requests, %llu cells, anneals=%llu%s"
        "%s\n",
        static_cast<unsigned long long>(client.client_id),
        static_cast<unsigned long long>(client.requests),
        static_cast<unsigned long long>(client.cells_executed),
        static_cast<unsigned long long>(client.anneals),
        client.connected ? ", connected" : "",
        client.bytes_queued > 0
            ? (", " + std::to_string(client.bytes_queued) + " bytes queued")
                  .c_str()
            : "");
  }
}

int bench_main(const char* artifact_name) noexcept {
  try {
    const EnvConfig env = EnvConfig::from_environment();

    OrchestratorOptions options;
    options.report.seed = env.seed;
    options.report.full_scale = env.full_scale;
    options.format = Format::kTable;

    // The executor the environment asks for. A misconfigured or dead serve
    // session fails the bench loudly — silently compiling locally would
    // misreport the session's warm-cache story.
    std::unique_ptr<serve::Client> client;
    std::unique_ptr<Runner> runner;
    if (!env.serve_socket.empty()) {
      client = std::make_unique<serve::Client>(env.serve_socket);
      runner = std::make_unique<ClientRunner>(*client);
    } else {
      InProcessRunner::Config config;
      config.n_threads = env.threads;
      config.shards = env.shards;
      if (env.cache) {
        cache::CacheOptions cache_options;
        cache_options.max_disk_bytes = env.cache_max_disk_bytes;
        config.cache = cache::CompilationCache::open(cache_options);
      }
      runner = std::make_unique<InProcessRunner>(std::move(config));
    }

    const util::Stopwatch stopwatch;
    const auto outcomes =
        run_artifacts(Registry::global(), {artifact_name}, *runner, options,
                      stdout, stderr);
    print_accounting(stderr, outcomes.size(), runner->totals(),
                     stopwatch.seconds());
    for (const auto& outcome : outcomes) {
      if (!outcome.ok) return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", artifact_name, error.what());
    return 1;
  }
}

}  // namespace parallax::report
