#include "report/render.hpp"

#include <cstdio>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace parallax::report {

namespace {

std::string table_text(const Block& block) {
  util::Table table(block.header);
  for (const auto& row : block.rows) table.add_row(row);
  return table.to_string();
}

}  // namespace

std::string flat_line(std::string text) {
  for (char& c : text) {
    if (c == '\n') c = ' ';
  }
  return text;
}

std::optional<Format> parse_format(std::string_view name) {
  if (name == "table") return Format::kTable;
  if (name == "csv") return Format::kCsv;
  if (name == "json") return Format::kJson;
  return std::nullopt;
}

std::string_view format_name(Format format) noexcept {
  switch (format) {
    case Format::kTable:
      return "table";
    case Format::kCsv:
      return "csv";
    case Format::kJson:
      return "json";
  }
  return "table";
}

std::string render_text(const Rendered& rendered, const Options& options) {
  std::string out = "=== " + rendered.title + " ===\n" +
                    rendered.description + "\nseed=" +
                    std::to_string(options.seed) +
                    " full_scale=" + (options.full_scale ? "1" : "0") +
                    "\n\n";
  for (const auto& block : rendered.blocks) {
    if (!block.title.empty()) out += block.title + ":\n";
    out += table_text(block);
    for (const auto& note : block.notes) out += note + "\n";
    out += "\n";
  }
  for (const auto& line : rendered.summary) out += line + "\n";
  return out;
}

std::string render_csv(const Rendered& rendered) {
  std::string out = "# " + rendered.artifact + ": " +
                    flat_line(rendered.title) + " — " +
                    flat_line(rendered.description) + "\n";
  for (const auto& block : rendered.blocks) {
    if (!block.title.empty()) out += "# " + flat_line(block.title) + "\n";
    out += util::csv_line(block.header);
    for (const auto& row : block.rows) out += util::csv_line(row);
    for (const auto& note : block.notes) out += "# " + flat_line(note) + "\n";
  }
  for (const auto& line : rendered.summary) out += "# " + flat_line(line) + "\n";
  return out;
}

std::string render_json(const Rendered& rendered) {
  auto root = util::JsonValue::object();
  root["artifact"] = rendered.artifact;
  root["title"] = rendered.title;
  root["description"] = rendered.description;
  auto blocks = util::JsonValue::array();
  for (const auto& block : rendered.blocks) {
    auto block_json = util::JsonValue::object();
    block_json["title"] = block.title;
    auto header = util::JsonValue::array();
    for (const auto& cell : block.header) header.push_back(cell);
    block_json["header"] = std::move(header);
    auto rows = util::JsonValue::array();
    for (const auto& row : block.rows) {
      auto row_json = util::JsonValue::array();
      for (const auto& cell : row) row_json.push_back(cell);
      rows.push_back(std::move(row_json));
    }
    block_json["rows"] = std::move(rows);
    auto notes = util::JsonValue::array();
    for (const auto& note : block.notes) notes.push_back(note);
    block_json["notes"] = std::move(notes);
    blocks.push_back(std::move(block_json));
  }
  root["blocks"] = std::move(blocks);
  auto summary = util::JsonValue::array();
  for (const auto& line : rendered.summary) summary.push_back(line);
  root["summary"] = std::move(summary);
  return root.dump(-1) + "\n";
}

std::string render(const Rendered& rendered, const Options& options,
                   Format format) {
  switch (format) {
    case Format::kTable:
      return render_text(rendered, options);
    case Format::kCsv:
      return render_csv(rendered);
    case Format::kJson:
      return render_json(rendered);
  }
  return render_text(rendered, options);
}

}  // namespace parallax::report
