// The paper's artifacts as declarative registry entries.
//
// Each table/figure of the evaluation section used to be a standalone bench
// binary with its own process, its own suite sweep, and its own printf
// rendering. Here an artifact is data: a name, a sweep-spec planner, and a
// renderer that turns sweep::Results into rows plus derived summary lines.
// One orchestrator (report/orchestrator.hpp) drives any subset of the
// registry against one executor — in-process, an in-process warm
// SweepService session, or a remote `parallax serve` socket — so
// regenerating the whole paper is a single command against one warm cache,
// and the rendering logic lives once, testably, in the library. The bench
// binaries remain as thin shims over their registry entries.
//
// Determinism contract: everything a renderer puts into Rendered::blocks
// and Rendered::summary is a pure function of (Options, sweep results) —
// never wall-clock. Timing-dependent extras (e.g. the per-pass compile-time
// profile) go into Rendered::volatile_text, which the drivers print to
// stderr. That is what lets CI byte-compare a warm rerun's rendered output
// against the cold run's.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/spec.hpp"
#include "sweep/sweep.hpp"

namespace parallax::report {

/// Report-layer misuse and execution failures (failed sweep cells, spec
/// planning errors). UnknownArtifactError refines it for bad names.
class ReportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class UnknownArtifactError : public ReportError {
 public:
  using ReportError::ReportError;
};

/// The inputs every artifact's plan/render is parameterized over — the
/// declarative replacements for the old per-binary environment reads.
struct Options {
  /// Master seed (every per-circuit stage seed derives from it).
  std::uint64_t seed = 42;
  /// Paper-scale VQE (~450k gates) instead of the reduced default.
  bool full_scale = false;
  /// When non-empty, restrict every suite-driven artifact to these Table III
  /// acronyms (each artifact intersects this with its own default list,
  /// preserving its order). Artifacts not built on the Table III suite
  /// (table02, compile-time) ignore it.
  std::vector<std::string> circuits;
};

/// One rendered table: optional title (printed as "<title>:" above the
/// table), header + rows, and note lines printed directly under the table.
struct Block {
  std::string title;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> notes;
};

/// A fully rendered artifact, ready for any output format (report/render.hpp).
struct Rendered {
  /// Registry name ("fig09"), paper title ("Figure 9"), and the preamble
  /// description line(s).
  std::string artifact;
  std::string title;
  std::string description;
  std::vector<Block> blocks;
  /// Derived summary lines (averages, paper-claim comparisons) printed after
  /// the blocks. Deterministic, like the blocks.
  std::vector<std::string> summary;
  /// Wall-clock-dependent extras (per-pass timing profiles). Printed to
  /// stderr by the drivers, never part of the canonical rendered document.
  std::string volatile_text;
};

/// One paper artifact: metadata plus the two capabilities the orchestrator
/// composes. `plan` is incremental: it is called with the results of every
/// spec it returned so far (in order) and returns the next batch to execute,
/// empty when planning is complete — most artifacts return all their specs
/// on the first call, but e.g. fig11's parallelization budgets depend on the
/// serial compile's footprints. `render` sees the full result list in plan
/// order; it is only invoked once every cell compiled cleanly.
struct Artifact {
  std::string name;
  std::string title;
  std::string description;
  std::function<std::vector<shard::SweepSpec>(
      const Options&, const std::vector<sweep::Result>&)>
      plan;
  std::function<Rendered(const Options&, const std::vector<sweep::Result>&)>
      render;
};

/// Registration-order collection of artifacts, keyed by unique name.
class Registry {
 public:
  Registry() = default;

  /// The ten paper artifacts: table02-04, fig09-13, ablation, compile-time.
  [[nodiscard]] static const Registry& global();

  /// Throws ReportError on a duplicate name.
  void add(Artifact artifact);

  /// Lookup; at() throws UnknownArtifactError naming the known set.
  [[nodiscard]] const Artifact& at(const std::string& name) const;
  [[nodiscard]] const Artifact* find(const std::string& name) const noexcept;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return artifacts_.size(); }

 private:
  std::vector<Artifact> artifacts_;
};

/// Drives one artifact's full plan through `run_spec` and renders it: the
/// in-process path of the orchestrator and the reference implementation the
/// differential tests compare serve-session rendering against. Throws
/// ReportError when any executed cell reports a compile error (an artifact
/// built from partial results would silently misreport the paper).
[[nodiscard]] Rendered generate(
    const Artifact& artifact, const Options& options,
    const std::function<sweep::Result(const shard::SweepSpec&)>& run_spec);

}  // namespace parallax::report
