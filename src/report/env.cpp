#include "report/env.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/parse.hpp"

namespace parallax::report {

namespace {

/// Strict whole-string u64; unset/empty yields `fallback`, garbage throws
/// naming the variable.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const auto parsed = util::parse_u64(value);
  if (!parsed) {
    throw EnvError(std::string(name) + "='" + value +
                   "' is not a non-negative integer");
  }
  return *parsed;
}

/// Boolean knobs are exactly "0" or "1" — the old env[0]=='1' reading
/// silently accepted ("10") and ignored ("yes") lookalikes.
bool env_bool(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return false;
  const std::string text(value);
  if (text == "1") return true;
  if (text == "0") return false;
  throw EnvError(std::string(name) + "='" + text + "' must be 0 or 1");
}

}  // namespace

EnvConfig EnvConfig::from_environment() {
  EnvConfig config;
  config.seed = env_u64("PARALLAX_SEED", 42);
  config.full_scale = env_bool("PARALLAX_FULL_SCALE");
  config.threads =
      static_cast<std::size_t>(env_u64("PARALLAX_THREADS", 0));
  config.cache = env_bool("PARALLAX_CACHE");
  if (const char* dir = std::getenv("PARALLAX_CACHE_DIR")) {
    config.cache_dir = dir;
  }
  config.cache_max_disk_bytes = env_u64("PARALLAX_CACHE_MAX_DISK_BYTES", 0);
  // Clamped in 64 bits before narrowing so an absurd value can neither wrap
  // to 0 nor spin millions of empty shards (0 and 1 both mean unsharded).
  const std::uint64_t shards =
      std::min<std::uint64_t>(env_u64("PARALLAX_SHARDS", 1), 1u << 20);
  config.shards = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      shards, 1));
  if (const char* socket = std::getenv("PARALLAX_SERVE")) {
    config.serve_socket = socket;
  }
  return config;
}

}  // namespace parallax::report
