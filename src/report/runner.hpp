// Executors the report orchestrator drives artifact sweeps through, with
// uniform accounting. Three ways to run one spec:
//   * InProcessRunner — sweep::run (or shard::run_sharded) in this process,
//     optionally against a persistent cache: the old bench-binary path.
//   * ServiceRunner  — an in-process serve::SweepService session: one cache,
//     one persistent pool, request streaming — the `--serve auto` warm
//     session without a socket.
//   * ClientRunner   — a remote `parallax serve --socket` session over a
//     serve::Client connection: the session state lives in the server.
// All three return the same flat circuit-major sweep::Result (byte-identical
// under shard::canonical_bytes), which is what the differential report tests
// assert.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "shard/spec.hpp"
#include "sweep/sweep.hpp"

namespace parallax::report {

/// Accounting accumulated across every spec a Runner executed — the
/// orchestrator's session-wide epilogue. All counters fold in per-sweep
/// tallies from sweep::Result (the serve paths carry them in the request
/// summary).
struct RunTotals {
  std::uint64_t sweeps = 0;
  std::uint64_t cells = 0;
  std::uint64_t executed_cells = 0;
  std::uint64_t failed_cells = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t placement_disk_hits = 0;
  std::uint64_t anneals = 0;
  /// Sum of per-sweep wall clocks (the executor's compute time; the
  /// orchestrator measures end-to-end wall separately).
  double sweep_seconds = 0.0;
};

class Runner {
 public:
  virtual ~Runner() = default;

  /// Executes one spec and folds its accounting into totals(). Throws
  /// ReportError / serve::ServeError on request-level failure; per-cell
  /// compile errors are reported in the cells (the orchestrator checks).
  [[nodiscard]] sweep::Result run(const shard::SweepSpec& spec);

  /// Streaming hook invoked once per executed cell, from whichever thread
  /// completed it (see sweep::Options::on_cell for the concurrency
  /// contract) — the orchestrator's progress ticker.
  void set_on_cell(std::function<void(const sweep::Cell&)> on_cell) {
    on_cell_ = std::move(on_cell);
  }

  [[nodiscard]] const RunTotals& totals() const noexcept { return totals_; }

 protected:
  [[nodiscard]] virtual sweep::Result execute(
      const shard::SweepSpec& spec) = 0;

  std::function<void(const sweep::Cell&)> on_cell_;

 private:
  RunTotals totals_;
};

class InProcessRunner : public Runner {
 public:
  struct Config {
    /// Worker threads; 0 selects hardware concurrency.
    std::size_t n_threads = 0;
    /// Partition every sweep into this many shards and merge (1 = plain
    /// sweep::run). Byte-identical either way; this is the harness-level
    /// exerciser of the shard layer's guarantee.
    std::uint32_t shards = 1;
    /// Persistent cache shared by every sweep of the run; null keeps pure
    /// in-run memoization.
    std::shared_ptr<cache::CompilationCache> cache;
  };

  InProcessRunner() = default;
  explicit InProcessRunner(Config config) : config_(std::move(config)) {}

 protected:
  [[nodiscard]] sweep::Result execute(const shard::SweepSpec& spec) override;

 private:
  Config config_;
};

/// Runs specs through an in-process SweepService session (submit + stream +
/// reassemble), so `parallax bench` exercises the same session machinery as
/// a socket client — cache-mediated warm replay included — without a server
/// process.
class ServiceRunner : public Runner {
 public:
  explicit ServiceRunner(serve::SweepService& service) : service_(service) {}

 protected:
  [[nodiscard]] sweep::Result execute(const shard::SweepSpec& spec) override;

 private:
  serve::SweepService& service_;
};

/// Runs specs through a connected serve::Client (a `parallax serve --socket`
/// session in another process).
class ClientRunner : public Runner {
 public:
  explicit ClientRunner(serve::Client& client) : client_(client) {}

 protected:
  [[nodiscard]] sweep::Result execute(const shard::SweepSpec& spec) override;

 private:
  serve::Client& client_;
};

}  // namespace parallax::report
