// The paper artifacts (Registry::global()) plus the registry and
// generate() plumbing. Each entry carries the exact rows and derived
// summary lines its former bench binary printed; the binaries are now thin
// shims over these entries (bench/*.cpp -> report::bench_main).
#include "report/artifact.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "shots/parallelize.hpp"
#include "util/table.hpp"

namespace parallax::report {

namespace {

using util::format_compact;
using util::format_fixed;
using util::format_percent;
using util::format_sci;

/// The paper's three evaluated techniques, in its reporting order.
const std::vector<std::string> kPaperTechniques = {"graphine", "eldi",
                                                  "parallax"};

/// Keeps the entries of `defaults` selected by options.circuits, preserving
/// the defaults' order; an empty filter selects everything.
std::vector<std::string> restrict_to(std::vector<std::string> defaults,
                                     const Options& options) {
  if (options.circuits.empty()) return defaults;
  std::vector<std::string> kept;
  for (auto& name : defaults) {
    if (std::find(options.circuits.begin(), options.circuits.end(), name) !=
        options.circuits.end()) {
      kept.push_back(std::move(name));
    }
  }
  return kept;
}

/// The full Table III suite (every benchmark always runs — skipping the
/// slowest technique off full scale would bias comparisons), filtered.
std::vector<std::string> suite_names(const Options& options) {
  std::vector<std::string> names;
  for (const auto& info : bench_circuits::all_benchmarks()) {
    names.push_back(info.acronym);
  }
  return restrict_to(std::move(names), options);
}

bench_circuits::GenOptions gen_options(const Options& options) {
  bench_circuits::GenOptions gen;
  gen.seed = options.seed;
  gen.full_scale = options.full_scale;
  return gen;
}

/// Base sweep options for every artifact: the master seed; runtime fields
/// (threads, cache, streaming hooks) are the executor's business.
sweep::Options base_sweep_options(const Options& options) {
  sweep::Options sweep_options;
  sweep_options.compile.seed = options.seed;
  return sweep_options;
}

std::vector<sweep::MachineSpec> one_machine(
    const hardware::HardwareConfig& config) {
  return {{config.name, config}};
}

/// Circuits x techniques x machines with the shared bench methodology: the
/// transpiled circuit is shared per circuit and the GRAPHINE baseline
/// reuses Parallax's own annealed placement, so the two differ only in atom
/// movement vs SWAPs.
shard::SweepSpec suite_spec(const Options& options,
                            std::vector<sweep::MachineSpec> machines,
                            std::vector<std::string> techniques,
                            const std::vector<std::string>& circuits,
                            sweep::Options sweep_options) {
  shard::SweepSpec spec;
  spec.circuits = sweep::benchmark_circuits(circuits, gen_options(options));
  spec.techniques = std::move(techniques);
  spec.machines = std::move(machines);
  spec.options = std::move(sweep_options);
  return spec;
}

/// Single-phase planner: all specs on the first call, done on the second.
std::function<std::vector<shard::SweepSpec>(const Options&,
                                            const std::vector<sweep::Result>&)>
single_phase(std::function<std::vector<shard::SweepSpec>(const Options&)>
                 make_specs) {
  return [make_specs = std::move(make_specs)](
             const Options& options,
             const std::vector<sweep::Result>& prior) {
    if (!prior.empty()) return std::vector<shard::SweepSpec>{};
    return make_specs(options);
  };
}

Rendered base_rendered(const Artifact& artifact) {
  Rendered rendered;
  rendered.artifact = artifact.name;
  rendered.title = artifact.title;
  rendered.description = artifact.description;
  return rendered;
}

/// Shared guard for suite artifacts whose circuit filter selected nothing.
Rendered empty_selection(const Artifact& artifact) {
  Rendered rendered = base_rendered(artifact);
  rendered.summary.push_back(
      "No benchmarks selected (the --benchmarks filter excludes every "
      "circuit this artifact reports).");
  return rendered;
}

std::string format_signed_points(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.0f%%", 100.0 * fraction);
  return buffer;
}

// --- Table II: hardware parameters --------------------------------------------

Artifact make_table02() {
  Artifact artifact;
  artifact.name = "table02";
  artifact.title = "Table II";
  artifact.description = "Hardware parameters used for evaluation";
  artifact.plan = single_phase(
      [](const Options&) { return std::vector<shard::SweepSpec>{}; });
  artifact.render = [artifact](const Options&,
                               const std::vector<sweep::Result>&) {
    const auto quera = hardware::HardwareConfig::quera_aquila_256();
    const auto atom = hardware::HardwareConfig::atom_computing_1225();
    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Parameter", "Value", "Paper value"};
    block.rows = {
        {"Number of qubits",
         std::to_string(quera.n_atoms()) + " & " +
             std::to_string(atom.n_atoms()),
         "256 & 1,225"},
        {"Time to switch traps (us)",
         format_fixed(quera.trap_switch_time_us, 0), "100"},
        {"AOD movement speed (um/us)",
         format_fixed(quera.aod_speed_um_per_us, 0), "55"},
        {"T1 coherence time (s)", format_fixed(quera.t1_seconds, 2), "4.0"},
        {"T2 coherence time (s)", format_fixed(quera.t2_seconds, 2), "1.49"},
        {"SWAP gate error", format_percent(quera.swap_error), "1.43%"},
        {"Atom loss rate", format_percent(quera.atom_loss_rate), "0.7%"},
        {"U3 gate error", format_percent(quera.u3_error), "0.0127%"},
        {"U3 gate time (us)", format_fixed(quera.u3_time_us, 1), "2"},
        {"CZ gate error", format_percent(quera.cz_error), "0.48%"},
        {"CZ gate time (us)", format_fixed(quera.cz_time_us, 1), "0.8"},
        {"Readout error", format_percent(quera.readout_error), "5%"},
        {"AOD rows x cols",
         std::to_string(quera.aod_rows) + " x " +
             std::to_string(quera.aod_cols),
         "20 x 20"},
        {"Min separation (um)", format_fixed(quera.min_separation_um, 1),
         "(not stated)"},
        {"Site pitch = 2*sep + pad (um)", format_fixed(quera.pitch_um(), 1),
         "(derived)"},
    };
    rendered.blocks.push_back(std::move(block));
    return rendered;
  };
  return artifact;
}

// --- Table III: the benchmark suite -------------------------------------------

Artifact make_table03() {
  Artifact artifact;
  artifact.name = "table03";
  artifact.title = "Table III";
  artifact.description = "Algorithms and benchmarks used for evaluation";
  artifact.plan = single_phase(
      [](const Options&) { return std::vector<shard::SweepSpec>{}; });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>&) {
    const auto selected = suite_names(options);
    if (selected.empty()) return empty_selection(artifact);
    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Acronym", "Qubits",      "U3 gates",
                    "CZ gates", "Depth",      "Description"};
    const auto gen = gen_options(options);
    for (const auto& info : bench_circuits::all_benchmarks()) {
      if (std::find(selected.begin(), selected.end(), info.acronym) ==
          selected.end()) {
        continue;
      }
      const auto circuit = info.make(gen);
      const auto transpiled = circuit::transpile(circuit);
      block.rows.push_back({info.acronym, std::to_string(info.qubits),
                            std::to_string(transpiled.u3_count()),
                            std::to_string(transpiled.cz_count()),
                            std::to_string(transpiled.depth()),
                            info.description});
    }
    rendered.blocks.push_back(std::move(block));
    return rendered;
  };
  return artifact;
}

// --- Table IV: single-shot runtimes on both machines --------------------------

Artifact make_table04() {
  Artifact artifact;
  artifact.name = "table04";
  artifact.title = "Table IV";
  artifact.description =
      "Circuit runtime (us) on 256-qubit and 1,225-qubit machines; lower is "
      "better";
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    const auto quera = hardware::HardwareConfig::quera_aquila_256();
    const auto atom = hardware::HardwareConfig::atom_computing_1225();
    return std::vector<shard::SweepSpec>{
        suite_spec(options, {{quera.name, quera}, {atom.name, atom}},
                   kPaperTechniques, circuits, base_sweep_options(options))};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return empty_selection(artifact);
    const auto quera = hardware::HardwareConfig::quera_aquila_256();
    const auto atom = hardware::HardwareConfig::atom_computing_1225();
    const sweep::Result& suite = results.at(0);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench",          "Eldi/256",      "Graphine/256",
                    "Parallax/256",   "Eldi/1225",     "Graphine/1225",
                    "Parallax/1225",  "P trap-chg 256", "P trap-chg 1225"};
    int faster_on_1225 = 0;
    for (const auto& name : circuits) {
      const auto& small = suite.at(name, "parallax", quera.name).result;
      const auto& large = suite.at(name, "parallax", atom.name).result;
      block.rows.push_back(
          {name,
           format_compact(suite.at(name, "eldi", quera.name).result.runtime_us),
           format_compact(
               suite.at(name, "graphine", quera.name).result.runtime_us),
           format_compact(small.runtime_us),
           format_compact(suite.at(name, "eldi", atom.name).result.runtime_us),
           format_compact(
               suite.at(name, "graphine", atom.name).result.runtime_us),
           format_compact(large.runtime_us),
           std::to_string(small.stats.trap_changes),
           std::to_string(large.stats.trap_changes)});
      if (large.runtime_us <= small.runtime_us) ++faster_on_1225;
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Parallax runtime improves (or holds) on the larger machine for " +
        std::to_string(faster_on_1225) + "/" +
        std::to_string(circuits.size()) + " benchmarks —");
    rendered.summary.push_back(
        "the paper's scaling claim: more space -> near-optimal topology -> "
        "fewer trap changes.");

    // Per-pass compile-time profile: wall-clock-dependent, so it rides in
    // volatile_text (stderr) instead of the canonical rendered document.
    // "(c)" marks a stage whose product came from a cache — the in-sweep
    // placement memo or the persistent session cache (a whole row of (c) is
    // a warm result-cache hit that ran no pass at all).
    const auto& first_timings =
        suite.at(circuits.front(), "parallax", quera.name).result.pass_timings;
    std::vector<std::string> headers = {"Bench"};
    for (const auto& timing : first_timings) headers.push_back(timing.pass);
    headers.push_back("total");
    util::Table timing_table(headers);
    const auto format_pass = [](double seconds, bool cached, bool highlight) {
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%.1fms%s%s", seconds * 1e3,
                    cached ? " (c)" : "", highlight ? " *" : "");
      return std::string(buffer);
    };
    for (const auto& name : circuits) {
      const auto& cell = suite.at(name, "parallax", quera.name);
      std::vector<std::string> row = {name};
      double total = 0.0;
      for (const auto& timing : cell.result.pass_timings) {
        row.push_back(
            format_pass(timing.seconds, timing.cached, timing.highlight));
        // Portfolio entrant rows ("anneal[...]") are constituents of the
        // anneal total, not additional wall time.
        if (timing.pass.rfind("anneal[", 0) != 0) total += timing.seconds;
      }
      row.push_back(format_pass(total, cell.from_cache, false));
      timing_table.add_row(row);
    }
    rendered.volatile_text = "Parallax per-pass compile time on " +
                             quera.name +
                             " ((c) = cache hit, * = winning portfolio "
                             "entrant):\n" +
                             timing_table.to_string();
    return rendered;
  };
  return artifact;
}

// --- Fig. 9: CZ gate counts ---------------------------------------------------

shard::SweepSpec quera_suite_spec(const Options& options,
                                  const std::vector<std::string>& circuits) {
  const auto config = hardware::HardwareConfig::quera_aquila_256();
  return suite_spec(options, one_machine(config), kPaperTechniques, circuits,
                    base_sweep_options(options));
}

Artifact make_fig09() {
  Artifact artifact;
  artifact.name = "fig09";
  artifact.title = "Figure 9";
  artifact.description =
      "CZ gate counts (incl. 3 per SWAP), QuEra 256-qubit machine; lower is "
      "better";
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    return std::vector<shard::SweepSpec>{quera_suite_spec(options, circuits)};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return empty_selection(artifact);
    const sweep::Result& suite = results.at(0);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench", "Graphine", "Eldi",   "Parallax",
                    "P vs G", "P vs E",  "P swaps"};
    double geo_vs_g = 0.0, geo_vs_e = 0.0;
    int count_g = 0, count_e = 0;
    for (const auto& name : circuits) {
      const auto g = suite.at(name, "graphine").result.stats.effective_cz();
      const auto e = suite.at(name, "eldi").result.stats.effective_cz();
      const auto& parallax_cell = suite.at(name, "parallax");
      const auto p = parallax_cell.result.stats.effective_cz();
      const auto reduction = [](std::size_t baseline, std::size_t ours) {
        return baseline == 0 ? 0.0
                             : 1.0 - static_cast<double>(ours) /
                                         static_cast<double>(baseline);
      };
      if (g > 0) {
        geo_vs_g += reduction(g, p);
        ++count_g;
      }
      if (e > 0) {
        geo_vs_e += reduction(e, p);
        ++count_e;
      }
      block.rows.push_back(
          {name, std::to_string(g), std::to_string(e), std::to_string(p),
           format_percent(reduction(g, p)), format_percent(reduction(e, p)),
           std::to_string(parallax_cell.result.stats.swap_gates)});
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Average CZ reduction: " +
        format_percent(geo_vs_g / std::max(1, count_g)) +
        " vs Graphine (paper: 39%), " +
        format_percent(geo_vs_e / std::max(1, count_e)) +
        " vs Eldi (paper: 25%)");
    rendered.summary.push_back(
        "Parallax SWAP count is zero for every circuit (zero-SWAP "
        "guarantee).");
    return rendered;
  };
  return artifact;
}

// --- Fig. 10: probability of success ------------------------------------------

Artifact make_fig10() {
  Artifact artifact;
  artifact.name = "fig10";
  artifact.title = "Figure 10";
  artifact.description =
      "Probability of success, QuEra 256-qubit machine; higher is better";
  // Identical spec to fig09 — against a warm session the whole sweep is a
  // result-hit replay, which is exactly the point of the shared session.
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    return std::vector<shard::SweepSpec>{quera_suite_spec(options, circuits)};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return empty_selection(artifact);
    const sweep::Result& suite = results.at(0);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench", "Graphine", "Eldi", "Parallax", "P % of best",
                    "Best"};
    double sum_gain_g = 0.0, sum_gain_e = 0.0;
    int n_g = 0, n_e = 0;
    for (const auto& name : circuits) {
      const double pg = suite.at(name, "graphine").success_probability;
      const double pe = suite.at(name, "eldi").success_probability;
      const double pp = suite.at(name, "parallax").success_probability;
      const double best = std::max({pg, pe, pp});
      const char* who =
          (best == pp) ? "Parallax" : (best == pe ? "Eldi" : "Graphine");
      // Improvement in percentage points of the best-case-normalized scale
      // (the scale Fig. 10 plots); raw ratios explode when a baseline
      // decays to ~0 (e.g. QV under ELDI).
      if (best > 0) {
        sum_gain_g += (pp - pg) / best;
        ++n_g;
        sum_gain_e += (pp - pe) / best;
        ++n_e;
      }
      block.rows.push_back({name, format_sci(pg), format_sci(pe),
                            format_sci(pp),
                            best > 0 ? format_percent(pp / best) : "n/a",
                            who});
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Average success-probability improvement, in points of the "
        "best-case-normalized scale:");
    rendered.summary.push_back(
        "  vs Graphine: " +
        format_signed_points(sum_gain_g / std::max(1, n_g)) +
        " (paper: +46%)");
    rendered.summary.push_back(
        "  vs Eldi: " + format_signed_points(sum_gain_e / std::max(1, n_e)) +
        " (paper: +28%)");
    return rendered;
  };
  return artifact;
}

// --- Fig. 11: parallel shots --------------------------------------------------

const std::vector<std::string> kFig11Circuits = {"ADV",  "KNN",  "QV",
                                                 "SECA", "SQRT", "WST"};

std::string k_label(std::int32_t k) { return "k" + std::to_string(k); }

sweep::MachineSpec fig11_budget_machine(
    const hardware::HardwareConfig& base_config, std::int32_t k) {
  auto config = base_config;
  config.aod_rows = config.aod_cols = std::max(1, base_config.aod_rows / k);
  return {k_label(k), config};
}

sweep::Options fig11_sweep_options(const Options& options) {
  auto sweep_options = base_sweep_options(options);
  // Circuits are laid out compactly (spread 1.2) so copies tile the grid;
  // fig11 reads runtimes only.
  sweep_options.compile.discretize.spread_factor = 1.2;
  sweep_options.compute_success_probability = false;
  return sweep_options;
}

/// Largest feasible parallelization factor per circuit, bounded by the
/// serial (k=1) compile's footprint: the footprint is independent of the
/// AOD budget (fixed by placement + discretization), so the k=1 compile
/// bounds the feasible factors exactly.
std::map<std::string, std::int32_t> fig11_feasible_k(
    const Options& options, const sweep::Result& serial_suite) {
  const auto base_config = hardware::HardwareConfig::atom_computing_1225();
  const std::int32_t max_k =
      std::min(base_config.aod_rows, base_config.grid_side);
  std::map<std::string, std::int32_t> feasible;
  for (const auto& name : restrict_to(kFig11Circuits, options)) {
    const std::int32_t side =
        shots::footprint_side(serial_suite.at(name, "parallax").result);
    feasible[name] = std::max(
        1, std::min(max_k, base_config.grid_side / std::max(1, side)));
  }
  return feasible;
}

Artifact make_fig11() {
  Artifact artifact;
  artifact.name = "fig11";
  artifact.title = "Figure 11";
  artifact.description =
      "Total execution time (s) of 8,000 logical shots vs parallelization "
      "factor,\nAtom 1,225-qubit machine (log-log in the paper); lower is "
      "better";
  // Two-phase plan: the baselines + serial sweeps first, then one
  // parallax-only sweep per circuit whose feasible parallelization budgets
  // (derived from the serial compile's footprint) allow k >= 2. Copies
  // share the machine's AOD rows/columns (paper Sec. II-E), so at factor
  // k x k each copy may use floor(20 / k) row/column pairs.
  artifact.plan = [](const Options& options,
                     const std::vector<sweep::Result>& prior) {
    const auto circuits = restrict_to(kFig11Circuits, options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    const auto base_config = hardware::HardwareConfig::atom_computing_1225();
    const auto sweep_options = fig11_sweep_options(options);
    if (prior.empty()) {
      // Baselines have static atoms: compile once on the base machine and
      // parallelize by tiling. Parallax is recompiled per AOD budget,
      // starting from the serial k=1 compile.
      return std::vector<shard::SweepSpec>{
          suite_spec(options, one_machine(base_config), {"eldi", "graphine"},
                     circuits, sweep_options),
          suite_spec(options, {fig11_budget_machine(base_config, 1)},
                     {"parallax"}, circuits, sweep_options)};
    }
    if (prior.size() != 2) return std::vector<shard::SweepSpec>{};
    const auto feasible = fig11_feasible_k(options, prior.at(1));
    std::vector<shard::SweepSpec> specs;
    for (const auto& name : circuits) {
      std::vector<sweep::MachineSpec> budgets;
      for (std::int32_t k = 2; k <= feasible.at(name); ++k) {
        budgets.push_back(fig11_budget_machine(base_config, k));
      }
      if (!budgets.empty()) {
        specs.push_back(suite_spec(options, std::move(budgets), {"parallax"},
                                   {name}, sweep_options));
      }
    }
    return specs;
  };
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = restrict_to(kFig11Circuits, options);
    if (circuits.empty()) return empty_selection(artifact);
    const auto base_config = hardware::HardwareConfig::atom_computing_1225();
    const sweep::Result& baselines = results.at(0);
    const sweep::Result& serial_suite = results.at(1);
    const auto feasible = fig11_feasible_k(options, serial_suite);

    // Map each circuit with feasible k >= 2 to its phase-two sweep, in the
    // plan's circuit order.
    std::map<std::string, const sweep::Result*> parallel_suites;
    std::size_t next = 2;
    for (const auto& name : circuits) {
      if (feasible.at(name) >= 2) parallel_suites[name] = &results.at(next++);
    }
    const auto parallax_cell =
        [&](const std::string& name, std::int32_t k) -> const sweep::Cell& {
      return k == 1 ? serial_suite.at(name, "parallax")
                    : parallel_suites.at(name)->at(name, "parallax",
                                                   k_label(k));
    };

    Rendered rendered = base_rendered(artifact);
    const shots::ShotOptions shot_options;
    for (const auto& name : circuits) {
      const auto& eldi_result = baselines.at(name, "eldi").result;
      const auto& graphine_result = baselines.at(name, "graphine").result;
      Block block;
      block.title = name;
      block.header = {"Factor (copies)", "AOD/copy", "Graphine (s)",
                      "Eldi (s)", "Parallax (s)"};
      double parallax_serial = 0.0, parallax_best = 0.0;
      for (std::int32_t k = 1; k <= feasible.at(name); ++k) {
        const auto& parallax_result = parallax_cell(name, k).result;
        // Feasibility is judged against the full machine: the per-copy AOD
        // budget (20/k lines) already guarantees k bands of copies fit the
        // 20 shared physical lines.
        const auto pp = shots::plan_parallel_shots(parallax_result,
                                                   base_config, k,
                                                   shot_options);
        const auto pe = shots::plan_parallel_shots(eldi_result, base_config,
                                                   k, shot_options);
        const auto pg = shots::plan_parallel_shots(graphine_result,
                                                   base_config, k,
                                                   shot_options);
        if (k == 1) parallax_serial = pp.total_execution_time_us;
        parallax_best = pp.total_execution_time_us;
        block.rows.push_back(
            {std::to_string(k * k),
             std::to_string(std::max(1, base_config.aod_rows / k)),
             format_fixed(pg.total_execution_time_us * 1e-6, 4),
             format_fixed(pe.total_execution_time_us * 1e-6, 4),
             format_fixed(pp.total_execution_time_us * 1e-6, 4)});
      }
      if (parallax_serial > 0 && block.rows.size() > 1) {
        block.notes.push_back(
            "Parallax total-time reduction at max parallelism: " +
            format_percent(1.0 - parallax_best / parallax_serial) +
            " (paper: 97% average)");
      }
      rendered.blocks.push_back(std::move(block));
    }
    return rendered;
  };
  return artifact;
}

// --- Fig. 12: home-return ablation --------------------------------------------

Artifact make_fig12() {
  Artifact artifact;
  artifact.name = "fig12";
  artifact.title = "Figure 12";
  artifact.description =
      "Ablation: AOD home-return vs no-return runtimes (us), 1,225-qubit "
      "machine; lower is better";
  // Two parallax-only sweeps differing in one scheduler flag; the annealed
  // placement is identical (same seed derivation), so the comparison
  // isolates the home-return step.
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    const auto config = hardware::HardwareConfig::atom_computing_1225();
    auto no_return = base_sweep_options(options);
    no_return.compile.scheduler.return_home = false;
    return std::vector<shard::SweepSpec>{
        suite_spec(options, one_machine(config), {"parallax"}, circuits,
                   base_sweep_options(options)),
        suite_spec(options, one_machine(config), {"parallax"}, circuits,
                   std::move(no_return))};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return empty_selection(artifact);
    const sweep::Result& with_home = results.at(0);
    const sweep::Result& without_home = results.at(1);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench", "No home return", "With home return (Parallax)",
                    "Change", "CZ equal?"};
    double sum_change = 0.0;
    int n = 0;
    for (const auto& name : circuits) {
      const auto& a = with_home.at(name, "parallax").result;
      const auto& b = without_home.at(name, "parallax").result;
      const double change = b.runtime_us > 0
                                ? (a.runtime_us - b.runtime_us) / b.runtime_us
                                : 0.0;
      sum_change += change;
      ++n;
      block.rows.push_back({name, format_compact(b.runtime_us),
                            format_compact(a.runtime_us),
                            format_percent(change),
                            a.stats.cz_gates == b.stats.cz_gates ? "yes"
                                                                 : "NO"});
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Average runtime change from home-return: " +
        format_signed_points(sum_change / std::max(1, n)) +
        " (paper: -40% — home-return is faster).");
    rendered.summary.push_back(
        "CZ counts are identical in both modes, so success probability is "
        "negligibly affected.");
    return rendered;
  };
  return artifact;
}

// --- Fig. 13: AOD count ablation ----------------------------------------------

const std::vector<std::int32_t> kFig13AodCounts = {1, 5, 10, 20, 40};

Artifact make_fig13() {
  Artifact artifact;
  artifact.name = "fig13";
  artifact.title = "Figure 13";
  artifact.description =
      "Ablation: Parallax runtime (us) vs AOD row/column count, 256-qubit "
      "machine; lower is better";
  // The AOD variants are machine specs of one sweep, so all five compile
  // runs of a circuit share one memoized Graphine placement.
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    std::vector<sweep::MachineSpec> machines;
    for (const auto count : kFig13AodCounts) {
      auto config = hardware::HardwareConfig::quera_aquila_256();
      config.aod_rows = config.aod_cols = count;
      machines.push_back({"aod" + std::to_string(count), config});
    }
    return std::vector<shard::SweepSpec>{
        suite_spec(options, std::move(machines), {"parallax"}, circuits,
                   base_sweep_options(options))};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = suite_names(options);
    if (circuits.empty()) return empty_selection(artifact);
    const sweep::Result& suite = results.at(0);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench",  "AOD 1",              "AOD 5",
                    "AOD 10", "AOD 20 (Parallax)", "AOD 40"};
    std::map<std::int32_t, double> sum_normalized;
    for (const auto& name : circuits) {
      std::vector<std::string> row{name};
      std::map<std::int32_t, double> runtime;
      double worst = 0.0;
      for (const auto count : kFig13AodCounts) {
        const auto& cell =
            suite.at(name, "parallax", "aod" + std::to_string(count));
        runtime[count] = cell.result.runtime_us;
        worst = std::max(worst, cell.result.runtime_us);
        row.push_back(format_compact(cell.result.runtime_us));
      }
      for (const auto count : kFig13AodCounts) {
        if (worst > 0) sum_normalized[count] += runtime[count] / worst;
      }
      block.rows.push_back(std::move(row));
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Average runtime as % of each benchmark's worst case (paper: "
        "1-count 91%, 5-count 71%,");
    rendered.summary.push_back("10-count 68%, 20-count 64%, 40-count 68%):");
    const double n = static_cast<double>(circuits.size());
    for (const auto count : kFig13AodCounts) {
      char label[16];
      std::snprintf(label, sizeof(label), "%2d", count);
      rendered.summary.push_back("  AOD count " + std::string(label) + ": " +
                                 format_percent(sum_normalized[count] / n));
    }
    return rendered;
  };
  return artifact;
}

// --- Extra design-choice ablations --------------------------------------------

const std::vector<std::string> kAblationCircuits = {"HLF", "QAOA", "QFT",
                                                    "KNN", "QV",   "TFIM"};

struct WeightVariant {
  const char* label;
  double oor;
  double intf;
};

const std::vector<WeightVariant> kWeightVariants = {
    {"paper 0.99/0.01", 0.99, 0.01},
    {"inverted 0.01/0.99", 0.01, 0.99},
    {"oor only 1.0/0.0", 1.0, 0.0},
    {"uniform 0.5/0.5", 0.5, 0.5},
};

const std::vector<double> kSpreadVariants = {1.0, 1.5, 2.0, 3.0};

Artifact make_ablation() {
  Artifact artifact;
  artifact.name = "ablation";
  artifact.title = "Ablation (extra)";
  artifact.description =
      "Design-choice ablations: AOD-selection weights and discretization "
      "spread, 256-qubit machine";
  // One parallax-only sweep per variant with the knob changed in the base
  // compile options — all serializable, so the whole artifact streams
  // through a serve session like any other.
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = restrict_to(kAblationCircuits, options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    const auto config = hardware::HardwareConfig::quera_aquila_256();
    std::vector<shard::SweepSpec> specs;
    for (const auto& variant : kWeightVariants) {
      auto sweep_options = base_sweep_options(options);
      sweep_options.compile.aod_selection.out_of_range_weight = variant.oor;
      sweep_options.compile.aod_selection.interference_weight = variant.intf;
      specs.push_back(suite_spec(options, one_machine(config), {"parallax"},
                                 circuits, std::move(sweep_options)));
    }
    for (const double spread : kSpreadVariants) {
      auto sweep_options = base_sweep_options(options);
      sweep_options.compile.discretize.spread_factor = spread;
      specs.push_back(suite_spec(options, one_machine(config), {"parallax"},
                                 circuits, std::move(sweep_options)));
    }
    return specs;
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = restrict_to(kAblationCircuits, options);
    if (circuits.empty()) return empty_selection(artifact);
    const auto cell_text = [](const sweep::Cell& cell) {
      return format_compact(cell.result.runtime_us) + " / " +
             std::to_string(cell.result.stats.trap_changes);
    };

    Rendered rendered = base_rendered(artifact);
    Block weights;
    weights.title =
        "(a) AOD selection weight split — runtime (us) / trap changes";
    weights.header = {"Bench"};
    for (const auto& variant : kWeightVariants) {
      weights.header.push_back(variant.label);
    }
    for (const auto& name : circuits) {
      std::vector<std::string> row{name};
      for (std::size_t i = 0; i < kWeightVariants.size(); ++i) {
        row.push_back(cell_text(results.at(i).at(name, "parallax")));
      }
      weights.rows.push_back(std::move(row));
    }
    rendered.blocks.push_back(std::move(weights));

    Block spreads;
    spreads.title =
        "(b) Discretization spread factor — runtime (us) / trap changes "
        "(2.0 is the default)";
    spreads.header = {"Bench"};
    for (const double spread : kSpreadVariants) {
      spreads.header.push_back("spread " + format_fixed(spread, 1));
    }
    for (const auto& name : circuits) {
      std::vector<std::string> row{name};
      for (std::size_t i = 0; i < kSpreadVariants.size(); ++i) {
        row.push_back(cell_text(
            results.at(kWeightVariants.size() + i).at(name, "parallax")));
      }
      spreads.rows.push_back(std::move(row));
    }
    rendered.blocks.push_back(std::move(spreads));

    rendered.summary.push_back(
        "Takeaways: the out-of-range criterion must dominate (inverting the "
        "split strands");
    rendered.summary.push_back(
        "out-of-range pairs without mobile endpoints); compact footprints "
        "(spread 1.0) trade");
    rendered.summary.push_back(
        "runtime for parallelizability, which is exactly the Fig. 11 "
        "configuration.");
    return rendered;
  };
  return artifact;
}

// --- Compile-time scaling -----------------------------------------------------

const std::vector<std::int32_t> kCompileTimeSizes = {8, 16, 24, 32};
const std::vector<std::string> kCompileTimeTechniques = {"parallax", "eldi",
                                                         "graphine", "static"};

Artifact make_compile_time() {
  Artifact artifact;
  artifact.name = "compile-time";
  artifact.title = "Compile time";
  artifact.description =
      "Compile-cost structure across QV sizes (Sec. III: polynomial "
      "complexity, O(q^5) dominated by placement); measured wall times on "
      "stderr";
  // QV at growing sizes, every technique, with a fixed small annealing
  // budget so the scheduler terms are visible next to placement. The
  // deterministic work metrics (gates, layers, moves) are the rendered
  // rows; measured wall-clock rides in volatile_text so a warm rerun's
  // rendered output stays byte-identical.
  artifact.plan = single_phase([](const Options& options) {
    bench_circuits::GenOptions gen;
    gen.seed = options.seed;
    shard::SweepSpec spec;
    for (const auto n : kCompileTimeSizes) {
      spec.circuits.push_back(
          {"QV" + std::to_string(n),
           circuit::transpile(bench_circuits::make_qv(n, n - 1, gen))});
    }
    spec.techniques = kCompileTimeTechniques;
    const auto config = hardware::HardwareConfig::quera_aquila_256();
    spec.machines = one_machine(config);
    spec.options = base_sweep_options(options);
    spec.options.compile.assume_transpiled = true;
    spec.options.compile.placement.anneal_iterations = 100;
    spec.options.compile.placement.local_search_evaluations = 100;
    spec.options.compute_success_probability = false;
    return std::vector<shard::SweepSpec>{std::move(spec)};
  });
  artifact.render = [artifact](const Options&,
                               const std::vector<sweep::Result>& results) {
    const sweep::Result& suite = results.at(0);
    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Circuit",  "Qubits",    "Technique",   "CZ gates",
                    "Eff. CZ",  "Layers",    "AOD moves",   "Trap changes"};
    util::Table timing_table({"Circuit", "Technique", "Compile (ms)"});
    for (std::size_t i = 0; i < kCompileTimeSizes.size(); ++i) {
      const std::string name = "QV" + std::to_string(kCompileTimeSizes[i]);
      for (const auto& technique : kCompileTimeTechniques) {
        const auto& cell = suite.at(name, technique);
        block.rows.push_back(
            {name, std::to_string(kCompileTimeSizes[i]), technique,
             std::to_string(cell.result.stats.cz_gates),
             std::to_string(cell.result.stats.effective_cz()),
             std::to_string(cell.result.stats.layers),
             std::to_string(cell.result.stats.aod_moves),
             std::to_string(cell.result.stats.trap_changes)});
        char ms[48];
        std::snprintf(ms, sizeof(ms), "%.1f%s", cell.compile_seconds * 1e3,
                      cell.from_cache ? " (c)" : "");
        timing_table.add_row({name, technique, ms});
      }
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Placement annealing budget fixed at 100 iterations / 100 "
        "local-search evaluations,");
    rendered.summary.push_back(
        "so the lower-order scheduling terms are visible next to the O(q^5) "
        "placement step.");
    rendered.volatile_text =
        "Measured compile wall-clock ((c) = served from cache):\n" +
        timing_table.to_string();
    return rendered;
  };
  return artifact;
}

// --- Sim vs model: Monte Carlo validation of the noise model ------------------

/// Paper circuits the validation sweeps by default: the two the issue names
/// (WST, TFIM) plus QAOA and QV for small/large layer-count coverage.
const std::vector<std::string> kSimVsModelCircuits = {"QAOA", "QV", "TFIM",
                                                     "WST"};
constexpr std::int64_t kSimVsModelShots = 1024;

Artifact make_sim_vs_model() {
  Artifact artifact;
  artifact.name = "sim-vs-model";
  artifact.title = "Sim vs model";
  artifact.description =
      "Closed-form success probability vs discrete-event Monte Carlo "
      "simulation with matched error channels, QuEra 256-qubit machine";
  // Two sweeps of the same cells differing only in the fidelity backend:
  // spec A scores with noise::success_probability, spec B replays each
  // schedule shot-by-shot through src/sim. Same seed derivation, so the
  // compiled schedules are identical and only the scoring differs.
  artifact.plan = single_phase([](const Options& options) {
    const auto circuits = restrict_to(kSimVsModelCircuits, options);
    if (circuits.empty()) return std::vector<shard::SweepSpec>{};
    const auto config = hardware::HardwareConfig::quera_aquila_256();
    auto simulated = base_sweep_options(options);
    simulated.compile.fidelity.model = noise::FidelityModel::kSimulated;
    simulated.compile.fidelity.shots = kSimVsModelShots;
    return std::vector<shard::SweepSpec>{
        suite_spec(options, one_machine(config), kPaperTechniques, circuits,
                   base_sweep_options(options)),
        suite_spec(options, one_machine(config), kPaperTechniques, circuits,
                   std::move(simulated))};
  });
  artifact.render = [artifact](const Options& options,
                               const std::vector<sweep::Result>& results) {
    const auto circuits = restrict_to(kSimVsModelCircuits, options);
    if (circuits.empty()) return empty_selection(artifact);
    const sweep::Result& model = results.at(0);
    const sweep::Result& simulated = results.at(1);

    Rendered rendered = base_rendered(artifact);
    Block block;
    block.header = {"Bench", "Technique", "Model p", "Simulated p",
                    "Std err", "|z|"};
    double worst_z = 0.0;
    std::string worst_cell = "none";
    int n = 0;
    for (const auto& name : circuits) {
      for (const auto& technique : kPaperTechniques) {
        const double p_model = model.at(name, technique).success_probability;
        const double p_sim =
            simulated.at(name, technique).success_probability;
        // Binomial standard error at the model's p: the yardstick the shots
        // are expected to scatter within when the channels really match.
        const double sigma = std::sqrt(p_model * (1.0 - p_model) /
                                       static_cast<double>(kSimVsModelShots));
        const bool exact = sigma <= 0.0;
        const double z = exact ? (p_sim == p_model ? 0.0 : 1e9)
                               : std::abs(p_sim - p_model) / sigma;
        if (z >= worst_z) {
          worst_z = z;
          worst_cell = name + "/" + technique;
        }
        ++n;
        block.rows.push_back({name, technique, format_sci(p_model),
                              format_sci(p_sim), format_sci(sigma),
                              format_fixed(z, 2)});
      }
    }
    rendered.blocks.push_back(std::move(block));
    rendered.summary.push_back(
        "Monte Carlo simulation at " + std::to_string(kSimVsModelShots) +
        " shots/cell, matched error channels; |z| = |model - simulated| in "
        "binomial standard errors.");
    rendered.summary.push_back(
        "Worst agreement across " + std::to_string(n) + " cells: " +
        format_fixed(worst_z, 2) + " sigma (" + worst_cell +
        "); the acceptance band is 3 sigma.");
    return rendered;
  };
  return artifact;
}

}  // namespace

// --- registry + generate ------------------------------------------------------

void Registry::add(Artifact artifact) {
  if (find(artifact.name) != nullptr) {
    throw ReportError("duplicate artifact name '" + artifact.name + "'");
  }
  artifacts_.push_back(std::move(artifact));
}

const Artifact* Registry::find(const std::string& name) const noexcept {
  for (const auto& artifact : artifacts_) {
    if (artifact.name == name) return &artifact;
  }
  return nullptr;
}

const Artifact& Registry::at(const std::string& name) const {
  if (const Artifact* artifact = find(name)) return *artifact;
  std::string known;
  for (const auto& artifact : artifacts_) {
    if (!known.empty()) known += ", ";
    known += artifact.name;
  }
  throw UnknownArtifactError("unknown artifact '" + name + "' (known: " +
                             known + ")");
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> names;
  names.reserve(artifacts_.size());
  for (const auto& artifact : artifacts_) names.push_back(artifact.name);
  return names;
}

const Registry& Registry::global() {
  static const Registry* instance = [] {
    auto* registry = new Registry();
    registry->add(make_table02());
    registry->add(make_table03());
    registry->add(make_table04());
    registry->add(make_fig09());
    registry->add(make_fig10());
    registry->add(make_fig11());
    registry->add(make_fig12());
    registry->add(make_fig13());
    registry->add(make_ablation());
    registry->add(make_compile_time());
    registry->add(make_sim_vs_model());
    return registry;
  }();
  return *instance;
}

Rendered generate(
    const Artifact& artifact, const Options& options,
    const std::function<sweep::Result(const shard::SweepSpec&)>& run_spec) {
  std::vector<sweep::Result> results;
  for (;;) {
    const std::vector<shard::SweepSpec> specs =
        artifact.plan(options, results);
    if (specs.empty()) break;
    for (const auto& spec : specs) {
      sweep::Result result = run_spec(spec);
      for (const auto& cell : result.cells) {
        if (!cell.ok()) {
          throw ReportError("artifact '" + artifact.name + "' sweep cell " +
                            cell.circuit + "/" + cell.technique + "/" +
                            cell.machine + " failed: " + cell.error);
        }
      }
      results.push_back(std::move(result));
    }
  }
  return artifact.render(options, results);
}

}  // namespace parallax::report
