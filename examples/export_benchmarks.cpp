// Export the full Table III benchmark suite as OpenQASM 2.0 files, so the
// circuits this repository generates can be fed to other toolchains (Qiskit,
// other compilers) for cross-validation.
//
//   ./export_benchmarks [output_dir]   (default: ./qasm_out)
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

int main(int argc, char** argv) {
  using namespace parallax;
  const std::string out_dir = argc > 1 ? argv[1] : "qasm_out";
  std::filesystem::create_directories(out_dir);

  bench_circuits::GenOptions gen;
  gen.seed = 42;
  for (const auto& info : bench_circuits::all_benchmarks()) {
    const auto circuit = info.make(gen);
    const auto transpiled = circuit::transpile(circuit);
    const std::string path = out_dir + "/" + info.acronym + ".qasm";
    qasm::write_qasm_file(transpiled, path);

    // Round-trip sanity: parse the exported file back and compare counts.
    const auto reparsed = qasm::parse_file(path).circuit;
    const bool ok = reparsed.n_qubits() == transpiled.n_qubits() &&
                    reparsed.cz_count() == transpiled.cz_count() &&
                    reparsed.u3_count() == transpiled.u3_count();
    std::printf("%-5s -> %-22s %6zu gates  round-trip %s\n",
                info.acronym.c_str(), path.c_str(), transpiled.size(),
                ok ? "ok" : "MISMATCH");
    if (!ok) return 1;
  }
  std::printf("\n18 circuits exported to %s/\n", out_dir.c_str());
  return 0;
}
