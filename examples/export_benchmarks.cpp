// Export the full Table III benchmark suite as OpenQASM 2.0 files, so the
// circuits this repository generates can be fed to other toolchains (Qiskit,
// other compilers) for cross-validation — plus a machine-readable
// benchmarks.csv manifest rendered by the artifact registry's "table03"
// entry, the same rows `parallax_cli bench table03 --format csv` prints
// (the bespoke per-file printf listing this example used to hand-roll).
//
//   ./export_benchmarks [output_dir]   (default: ./qasm_out)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "report/artifact.hpp"
#include "report/render.hpp"

int main(int argc, char** argv) {
  using namespace parallax;
  const std::string out_dir = argc > 1 ? argv[1] : "qasm_out";
  std::filesystem::create_directories(out_dir);

  bench_circuits::GenOptions gen;
  gen.seed = 42;
  for (const auto& info : bench_circuits::all_benchmarks()) {
    const auto circuit = info.make(gen);
    const auto transpiled = circuit::transpile(circuit);
    const std::string path = out_dir + "/" + info.acronym + ".qasm";
    qasm::write_qasm_file(transpiled, path);

    // Round-trip sanity: parse the exported file back and compare counts.
    const auto reparsed = qasm::parse_file(path).circuit;
    if (reparsed.n_qubits() != transpiled.n_qubits() ||
        reparsed.cz_count() != transpiled.cz_count() ||
        reparsed.u3_count() != transpiled.u3_count()) {
      std::fprintf(stderr, "%s: QASM round-trip MISMATCH\n", path.c_str());
      return 1;
    }
  }

  // The suite manifest, straight from the artifact registry (no sweeps:
  // table03 renders from the generators alone).
  report::Options options;
  options.seed = gen.seed;
  const report::Rendered table03 = report::generate(
      report::Registry::global().at("table03"), options,
      [](const shard::SweepSpec&) { return sweep::Result{}; });
  const std::string manifest_path = out_dir + "/benchmarks.csv";
  std::ofstream manifest(manifest_path);
  manifest << report::render_csv(table03);
  manifest.flush();  // surface buffered write failures before the check
  if (!manifest.good()) {
    std::fprintf(stderr, "cannot write %s\n", manifest_path.c_str());
    return 1;
  }

  std::printf("18 circuits exported to %s/ (manifest: %s)\n",
              out_dir.c_str(), manifest_path.c_str());
  return 0;
}
