// Compare compilation techniques on a QAOA workload — the scenario the
// paper's introduction motivates: a variational optimization circuit whose
// qubit connectivity exceeds what a static layout can serve locally.
// One sweep::run call compiles the same transpiled circuit with every
// registered technique — GRAPHINE (static custom layout + SWAPs), ELDI
// (grid layout + SWAPs), the naive static control, and Parallax (custom
// layout + atom movement, zero SWAPs) — and prints the paper's three
// metrics side by side.
//
//   ./compare_techniques [n_nodes] [p_rounds]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/registry.hpp"
#include "hardware/config.hpp"
#include "sweep/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parallax;

  const std::int32_t n_nodes =
      argc > 1 ? static_cast<std::int32_t>(std::atoi(argv[1])) : 12;
  const int p_rounds = argc > 2 ? std::atoi(argv[2]) : 3;

  bench_circuits::GenOptions gen;
  gen.seed = 2024;
  sweep::CircuitSpec spec{"QAOA", bench_circuits::make_qaoa(n_nodes, p_rounds,
                                                            gen)};
  const auto config = hardware::HardwareConfig::quera_aquila_256();

  // The paper's three techniques plus the naive identity-placement control,
  // straight from the registry.
  const std::vector<std::string> techniques{"static", "graphine", "eldi",
                                            "parallax"};
  sweep::Options options;
  options.compile.seed = 2024;
  const auto result = sweep::run({spec}, techniques, {{config.name, config}},
                                 options);
  for (const auto& cell : result.cells) {
    if (!cell.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", cell.technique.c_str(),
                   cell.error.c_str());
      return 1;
    }
  }
  std::printf("QAOA MaxCut: %d nodes, p=%d -> %zu CZ gates after transpile\n\n",
              n_nodes, p_rounds,
              result.at("QAOA", "parallax").result.circuit.cz_count());

  util::Table table({"Metric", "Static", "Graphine", "Eldi", "Parallax"});
  auto row = [&](const char* metric, auto getter) {
    std::vector<std::string> cells{metric};
    for (const auto& technique : techniques) {
      cells.push_back(getter(result.at("QAOA", technique)));
    }
    table.add_row(std::move(cells));
  };
  row("SWAP gates inserted", [](const sweep::Cell& cell) {
    return std::to_string(cell.result.stats.swap_gates);
  });
  row("Effective CZ count (Fig. 9 metric)", [](const sweep::Cell& cell) {
    return std::to_string(cell.result.stats.effective_cz());
  });
  row("Circuit runtime (us)", [](const sweep::Cell& cell) {
    return util::format_fixed(cell.result.runtime_us, 1);
  });
  row("Schedule layers", [](const sweep::Cell& cell) {
    return std::to_string(cell.result.stats.layers);
  });
  row("Success probability", [](const sweep::Cell& cell) {
    return util::format_sci(cell.success_probability, 2);
  });
  std::printf("%s", table.to_string().c_str());

  const auto& parallax_result = result.at("QAOA", "parallax").result;
  std::printf(
      "\nParallax avoids every SWAP by moving %zu AOD-trapped atoms "
      "(%zu moves, %zu trap changes).\n",
      parallax_result.aod_qubit_count(), parallax_result.stats.aod_moves,
      parallax_result.stats.trap_changes);
  return 0;
}
