// Compare compilation techniques on a QAOA workload — the scenario the
// paper's introduction motivates: a variational optimization circuit whose
// qubit connectivity exceeds what a static layout can serve locally.
// Compiles the same transpiled circuit with GRAPHINE (static custom layout +
// SWAPs), ELDI (grid layout + SWAPs), and Parallax (custom layout + atom
// movement, zero SWAPs) and prints the paper's three metrics side by side.
//
//   ./compare_techniques [n_nodes] [p_rounds]
#include <cstdio>
#include <cstdlib>

#include "baselines/eldi.hpp"
#include "baselines/graphine_router.hpp"
#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "parallax/compiler.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parallax;

  const std::int32_t n_nodes =
      argc > 1 ? static_cast<std::int32_t>(std::atoi(argv[1])) : 12;
  const int p_rounds = argc > 2 ? std::atoi(argv[2]) : 3;

  bench_circuits::GenOptions gen;
  gen.seed = 2024;
  const auto input = bench_circuits::make_qaoa(n_nodes, p_rounds, gen);
  const auto transpiled = circuit::transpile(input);
  std::printf("QAOA MaxCut: %d nodes, p=%d -> %zu CZ gates after transpile\n\n",
              n_nodes, p_rounds, transpiled.cz_count());

  const auto config = hardware::HardwareConfig::quera_aquila_256();

  compiler::CompilerOptions popt;
  popt.assume_transpiled = true;
  const auto parallax_result = compiler::compile(transpiled, config, popt);

  baselines::EldiOptions eopt;
  eopt.assume_transpiled = true;
  const auto eldi_result = baselines::eldi_compile(transpiled, config, eopt);

  baselines::GraphineOptions gopt;
  gopt.assume_transpiled = true;
  const auto graphine_result =
      baselines::graphine_compile(transpiled, config, gopt);

  util::Table table({"Metric", "Graphine", "Eldi", "Parallax"});
  auto row = [&](const char* metric, auto getter) {
    table.add_row({metric, getter(graphine_result), getter(eldi_result),
                   getter(parallax_result)});
  };
  row("SWAP gates inserted", [](const compiler::CompileResult& r) {
    return std::to_string(r.stats.swap_gates);
  });
  row("Effective CZ count (Fig. 9 metric)",
      [](const compiler::CompileResult& r) {
        return std::to_string(r.stats.effective_cz());
      });
  row("Circuit runtime (us)", [](const compiler::CompileResult& r) {
    return util::format_fixed(r.runtime_us, 1);
  });
  row("Schedule layers", [](const compiler::CompileResult& r) {
    return std::to_string(r.stats.layers);
  });
  row("Success probability", [&](const compiler::CompileResult& r) {
    return util::format_sci(noise::success_probability(r, config), 2);
  });
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nParallax avoids every SWAP by moving %zu AOD-trapped atoms "
      "(%zu moves, %zu trap changes).\n",
      parallax_result.aod_qubit_count(), parallax_result.stats.aod_moves,
      parallax_result.stats.trap_changes);
  return 0;
}
