// Parallel logical shots (paper Sec. II-E): compile a small circuit
// compactly, replicate it across the 1,225-atom machine with shared AOD
// rows/columns, and show how the total time for 8,000 logical shots falls
// with the parallelization factor. The shot-plan series comes straight out
// of the sweep driver (Options::shots).
//
//   ./parallel_shots [benchmark acronym] (default: ADV)
#include <cstdio>
#include <string>

#include "bench_circuits/registry.hpp"
#include "hardware/config.hpp"
#include "shots/parallelize.hpp"
#include "sweep/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parallax;

  const std::string name = argc > 1 ? argv[1] : "ADV";
  const auto config = hardware::HardwareConfig::atom_computing_1225();

  sweep::Options options;
  // Compact layout so copies tile the machine.
  options.compile.discretize.spread_factor = 1.2;
  options.shots = shots::ShotOptions{};  // 8,000 logical shots

  const auto swept = sweep::run(sweep::benchmark_circuits({name}),
                                {"parallax"}, {{config.name, config}},
                                options);
  const auto& cell = swept.at(name, "parallax");
  if (!cell.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n", cell.error.c_str());
    return 1;
  }

  const auto footprint = shots::footprint_side(cell.result);
  std::printf("%s: %d qubits, footprint %dx%d sites on a %dx%d machine, "
              "%zu AOD lines per copy\n\n",
              name.c_str(), cell.result.circuit.n_qubits(), footprint,
              footprint, config.grid_side, config.grid_side,
              cell.result.aod_qubit_count());

  util::Table table({"Copies per dim", "Logical shots per physical",
                     "Physical shots", "Total time (s)", "Speedup"});
  const double serial = cell.shot_plans.front().total_execution_time_us;
  for (const auto& plan : cell.shot_plans) {
    table.add_row({std::to_string(plan.copies_per_dim),
                   std::to_string(plan.copies),
                   std::to_string(plan.physical_shots),
                   util::format_fixed(plan.total_execution_time_us * 1e-6, 4),
                   util::format_fixed(
                       serial / plan.total_execution_time_us, 1) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nAll copies share the 20 AOD rows/columns and execute the "
              "same movement schedule in lockstep.\n");
  return 0;
}
