// Parallel logical shots (paper Sec. II-E): compile a small circuit
// compactly, replicate it across the 1,225-atom machine with shared AOD
// rows/columns, and show how the total time for 8,000 logical shots falls
// with the parallelization factor.
//
//   ./parallel_shots [benchmark acronym] (default: ADV)
#include <cstdio>
#include <string>

#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "parallax/compiler.hpp"
#include "shots/parallelize.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parallax;

  const std::string name = argc > 1 ? argv[1] : "ADV";
  const auto input = bench_circuits::make_benchmark(name);
  const auto transpiled = circuit::transpile(input);
  const auto config = hardware::HardwareConfig::atom_computing_1225();

  // Compact layout so copies tile the machine.
  compiler::CompilerOptions options;
  options.assume_transpiled = true;
  options.discretize.spread_factor = 1.2;
  const auto result = compiler::compile(transpiled, config, options);

  const auto footprint = shots::footprint_side(result);
  std::printf("%s: %d qubits, footprint %dx%d sites on a %dx%d machine, "
              "%zu AOD lines per copy\n\n",
              name.c_str(), transpiled.n_qubits(), footprint, footprint,
              config.grid_side, config.grid_side, result.aod_qubit_count());

  shots::ShotOptions shot_options;  // 8,000 logical shots
  util::Table table({"Copies per dim", "Logical shots per physical",
                     "Physical shots", "Total time (s)", "Speedup"});
  const auto plans = shots::parallelization_sweep(result, config, shot_options);
  const double serial = plans.front().total_execution_time_us;
  for (const auto& plan : plans) {
    table.add_row({std::to_string(plan.copies_per_dim),
                   std::to_string(plan.copies),
                   std::to_string(plan.physical_shots),
                   util::format_fixed(plan.total_execution_time_us * 1e-6, 4),
                   util::format_fixed(
                       serial / plan.total_execution_time_us, 1) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nAll copies share the 20 AOD rows/columns and execute the "
              "same movement schedule in lockstep.\n");
  return 0;
}
