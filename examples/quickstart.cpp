// Quickstart: parse an OpenQASM 2.0 circuit, transpile it to the {U3, CZ}
// basis, compile it with Parallax for a QuEra-like 256-atom machine, and
// print the schedule statistics and estimated success probability.
//
//   ./quickstart [file.qasm]
//
// Without an argument, a built-in 4-qubit GHZ circuit is used.
#include <cstdio>
#include <string>

#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "noise/model.hpp"
#include "qasm/parser.hpp"
#include "technique/registry.hpp"

namespace {
constexpr const char* kGhzQasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
measure q -> c;
)";
}  // namespace

int main(int argc, char** argv) {
  using namespace parallax;

  // 1. Load a circuit (file argument or the built-in GHZ example).
  qasm::ParseResult parsed;
  try {
    parsed = (argc > 1) ? qasm::parse_file(argv[1])
                        : qasm::parse(kGhzQasm, "ghz4");
  } catch (const qasm::ParseError& error) {
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return 1;
  }
  std::printf("Loaded '%s': %d qubits, %zu gates\n",
              parsed.circuit.name().c_str(), parsed.circuit.n_qubits(),
              parsed.circuit.size());

  // 2. Transpile to the {U3, CZ} hardware basis.
  const circuit::Circuit transpiled = circuit::transpile(parsed.circuit);
  std::printf("Transpiled: %zu U3, %zu CZ, depth %zu\n",
              transpiled.u3_count(), transpiled.cz_count(),
              transpiled.depth());

  // 3. Compile with Parallax for QuEra's 256-atom machine. Any registered
  //    technique name works here — try "eldi", "graphine", or "static".
  const auto config = hardware::HardwareConfig::quera_aquila_256();
  pipeline::CompileOptions options;
  options.assume_transpiled = true;
  const compiler::CompileResult result =
      technique::compile("parallax", transpiled, config, options);

  std::printf("\nParallax schedule on %s:\n", config.name.c_str());
  std::printf("  layers:              %zu\n", result.stats.layers);
  std::printf("  CZ gates:            %zu (SWAPs: %zu — always 0)\n",
              result.stats.cz_gates, result.stats.swap_gates);
  std::printf("  AOD qubits selected: %zu of %d\n", result.aod_qubit_count(),
              result.circuit.n_qubits());
  std::printf("  AOD moves:           %zu (max distance %.1f um)\n",
              result.stats.aod_moves, result.stats.max_move_distance_um);
  std::printf("  trap changes:        %zu\n", result.stats.trap_changes);
  std::printf("  circuit runtime:     %.1f us\n", result.runtime_us);

  // 4. Estimate the probability of success under the Table II noise model.
  const double p = noise::success_probability(result, config);
  std::printf("  est. success prob.:  %.4f\n", p);
  return 0;
}
