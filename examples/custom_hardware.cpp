// Custom hardware configurations: the simulator's parameters are all
// overridable (paper Sec. V: "easy updates to technology parameters like
// AOD count and atom movement speed, ensuring Parallax can evolve alongside
// advancements in neutral atom hardware"). This example sweeps a
// hypothetical next-generation machine — faster movement, better CZ
// fidelity, larger grid — as the machine axis of one sweep::run call, and
// shows how runtime and success probability of a TFIM workload respond.
// The annealed placement is memoized, so five scenarios cost one anneal.
#include <cstdio>

#include "bench_circuits/registry.hpp"
#include "hardware/config.hpp"
#include "sweep/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace parallax;

  sweep::CircuitSpec spec{"TFIM64", bench_circuits::make_tfim(64, 10, {})};

  std::vector<sweep::MachineSpec> scenarios;
  scenarios.push_back({"today (QuEra-like 256)",
                       hardware::HardwareConfig::quera_aquila_256()});
  {
    auto config = hardware::HardwareConfig::atom_computing_1225();
    scenarios.push_back({"today (Atom-like 1225)", config});
  }
  {
    auto config = hardware::HardwareConfig::atom_computing_1225();
    config.name = "fast-aod";
    config.aod_speed_um_per_us = 150.0;   // 2.7x faster transport
    config.trap_switch_time_us = 30.0;    // faster trap changes
    scenarios.push_back({"next-gen: fast AOD", config});
  }
  {
    auto config = hardware::HardwareConfig::atom_computing_1225();
    config.name = "high-fidelity";
    config.cz_error = 0.001;              // 5x better two-qubit gates
    config.u3_error = 0.00002;
    scenarios.push_back({"next-gen: high fidelity", config});
  }
  {
    auto config = hardware::HardwareConfig::atom_computing_1225();
    config.name = "dense-aod";
    config.aod_rows = config.aod_cols = 40;
    scenarios.push_back({"next-gen: 40 AOD lines", config});
  }

  const auto result = sweep::run({spec}, {"parallax"}, scenarios);
  for (const auto& cell : result.cells) {
    if (!cell.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", cell.machine.c_str(),
                   cell.error.c_str());
      return 1;
    }
  }
  std::printf("Workload: 64-qubit TFIM, %zu CZ gates\n\n",
              result.cells.front().result.circuit.cz_count());

  util::Table table({"Scenario", "Runtime (us)", "Trap changes", "AOD moves",
                     "Success prob."});
  for (const auto& cell : result.cells) {
    table.add_row({cell.machine, util::format_fixed(cell.result.runtime_us, 0),
                   std::to_string(cell.result.stats.trap_changes),
                   std::to_string(cell.result.stats.aod_moves),
                   util::format_sci(cell.success_probability, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nEvery Table II parameter is a plain struct field — no "
              "recompilation of the library needed.\n");
  return 0;
}
