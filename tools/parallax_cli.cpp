// parallax_cli — command-line front end for the compiler library.
//
// Usage:
//   parallax_cli --benchmark QAOA [options]
//   parallax_cli --circuit file.qasm [options]
//
// Options:
//   --machine quera256|atom1225   target machine preset (default quera256)
//   --technique parallax|eldi|graphine|all   (default parallax)
//   --aod-count N                 AOD rows/columns (default 20)
//   --no-home-return              disable the home-return step (Fig. 12)
//   --spread F                    discretization spread factor (default 2.0)
//   --seed N                      master seed (default 42)
//   --json                        emit a JSON report instead of text
//   --layers                      include the per-layer schedule in JSON
//   --render                      print the ASCII topology
//   --export-qasm FILE            write the compiled circuit as QASM 2.0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "baselines/eldi.hpp"
#include "baselines/graphine_router.hpp"
#include "bench_circuits/registry.hpp"
#include "circuit/transpile.hpp"
#include "hardware/config.hpp"
#include "hardware/render.hpp"
#include "noise/model.hpp"
#include "parallax/compiler.hpp"
#include "parallax/report.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

namespace {

struct CliOptions {
  std::string benchmark;
  std::string circuit_file;
  std::string machine = "quera256";
  std::string technique = "parallax";
  std::int32_t aod_count = 20;
  bool home_return = true;
  double spread = 2.0;
  std::uint64_t seed = 42;
  bool json = false;
  bool layers = false;
  bool render = false;
  std::string export_qasm;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s (--benchmark NAME | --circuit FILE.qasm) "
               "[--machine quera256|atom1225]\n"
               "          [--technique parallax|eldi|graphine|all] "
               "[--aod-count N] [--no-home-return]\n"
               "          [--spread F] [--seed N] [--json [--layers]] "
               "[--render] [--export-qasm FILE]\n",
               argv0);
  std::exit(error != nullptr ? 2 : 0);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], "missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--benchmark")) {
      options.benchmark = need_value(i);
    } else if (!std::strcmp(arg, "--circuit")) {
      options.circuit_file = need_value(i);
    } else if (!std::strcmp(arg, "--machine")) {
      options.machine = need_value(i);
    } else if (!std::strcmp(arg, "--technique")) {
      options.technique = need_value(i);
    } else if (!std::strcmp(arg, "--aod-count")) {
      options.aod_count = std::atoi(need_value(i));
    } else if (!std::strcmp(arg, "--no-home-return")) {
      options.home_return = false;
    } else if (!std::strcmp(arg, "--spread")) {
      options.spread = std::atof(need_value(i));
    } else if (!std::strcmp(arg, "--seed")) {
      options.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--json")) {
      options.json = true;
    } else if (!std::strcmp(arg, "--layers")) {
      options.layers = true;
    } else if (!std::strcmp(arg, "--render")) {
      options.render = true;
    } else if (!std::strcmp(arg, "--export-qasm")) {
      options.export_qasm = need_value(i);
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
    } else {
      usage(argv[0], (std::string("unknown option ") + arg).c_str());
    }
  }
  if (options.benchmark.empty() == options.circuit_file.empty()) {
    usage(argv[0], "exactly one of --benchmark / --circuit is required");
  }
  return options;
}

void print_text_summary(const parallax::compiler::CompileResult& result,
                        const parallax::hardware::HardwareConfig& config) {
  std::printf("%-9s  CZ=%-6zu swaps=%-5zu effCZ=%-6zu layers=%-5zu "
              "runtime=%.1fus  moves=%zu tc=%zu  P(success)=%.3e\n",
              result.technique.c_str(), result.stats.cz_gates,
              result.stats.swap_gates, result.stats.effective_cz(),
              result.stats.layers, result.runtime_us, result.stats.aod_moves,
              result.stats.trap_changes,
              parallax::noise::success_probability(result, config));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parallax;
  const CliOptions cli = parse_cli(argc, argv);

  hardware::HardwareConfig config;
  if (cli.machine == "quera256") {
    config = hardware::HardwareConfig::quera_aquila_256();
  } else if (cli.machine == "atom1225") {
    config = hardware::HardwareConfig::atom_computing_1225();
  } else {
    usage(argv[0], "unknown machine (use quera256 or atom1225)");
  }
  config.aod_rows = config.aod_cols = cli.aod_count;

  circuit::Circuit input;
  try {
    if (!cli.benchmark.empty()) {
      bench_circuits::GenOptions gen;
      gen.seed = cli.seed;
      input = bench_circuits::make_benchmark(cli.benchmark, gen);
    } else {
      input = qasm::parse_file(cli.circuit_file).circuit;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error loading circuit: %s\n", error.what());
    return 1;
  }
  const circuit::Circuit transpiled = circuit::transpile(input);

  auto run_one = [&](const std::string& technique)
      -> compiler::CompileResult {
    if (technique == "parallax") {
      compiler::CompilerOptions options;
      options.assume_transpiled = true;
      options.seed = cli.seed;
      options.scheduler.return_home = cli.home_return;
      options.discretize.spread_factor = cli.spread;
      return compiler::compile(transpiled, config, options);
    }
    if (technique == "eldi") {
      baselines::EldiOptions options;
      options.assume_transpiled = true;
      options.seed = cli.seed;
      return baselines::eldi_compile(transpiled, config, options);
    }
    if (technique == "graphine") {
      baselines::GraphineOptions options;
      options.assume_transpiled = true;
      options.seed = cli.seed;
      options.placement.seed = cli.seed;
      options.discretize.spread_factor = cli.spread;
      return baselines::graphine_compile(transpiled, config, options);
    }
    usage(argv[0], "unknown technique");
  };

  std::vector<std::string> techniques;
  if (cli.technique == "all") {
    techniques = {"graphine", "eldi", "parallax"};
  } else {
    techniques = {cli.technique};
  }

  try {
    for (const auto& technique : techniques) {
      const auto result = run_one(technique);
      if (cli.json) {
        compiler::ReportOptions report_options;
        report_options.include_layers = cli.layers;
        std::printf("%s\n",
                    compiler::report_json(result, config, report_options)
                        .c_str());
      } else {
        print_text_summary(result, config);
      }
      if (cli.render) {
        std::printf("%s", hardware::render_topology(result).c_str());
      }
      if (!cli.export_qasm.empty()) {
        qasm::write_qasm_file(result.circuit, cli.export_qasm);
        std::printf("compiled circuit written to %s\n",
                    cli.export_qasm.c_str());
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "compilation failed: %s\n", error.what());
    return 1;
  }
  return 0;
}
