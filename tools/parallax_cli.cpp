// parallax_cli — command-line front end for the compiler library.
//
// Usage:
//   parallax_cli --benchmark QAOA [options]
//   parallax_cli --circuit file.qasm [options]
//   parallax_cli --list-techniques
//
// Options:
//   --machine quera256|atom1225   target machine preset (default quera256)
//   --technique NAME|all          any registered technique (default parallax)
//   --aod-count N                 AOD rows/columns (default 20)
//   --no-home-return              disable the home-return step (Fig. 12)
//   --spread F                    discretization spread factor (default 2.0)
//   --seed N                      master seed (default 42)
//   --threads N                   sweep worker threads (default: hardware)
//   --json                        emit a JSON report instead of text
//   --layers                      include the per-layer schedule in JSON
//   --render                      print the ASCII topology
//   --export-qasm FILE            write the compiled circuit as QASM 2.0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_circuits/registry.hpp"
#include "hardware/config.hpp"
#include "hardware/render.hpp"
#include "parallax/report.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sweep/sweep.hpp"
#include "technique/registry.hpp"

namespace {

struct CliOptions {
  std::string benchmark;
  std::string circuit_file;
  std::string machine = "quera256";
  std::string technique = "parallax";
  std::int32_t aod_count = 20;
  bool home_return = true;
  double spread = 2.0;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  bool json = false;
  bool layers = false;
  bool render = false;
  bool list_techniques = false;
  std::string export_qasm;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s (--benchmark NAME | --circuit FILE.qasm) "
               "[--machine quera256|atom1225]\n"
               "          [--technique NAME|all] "
               "[--aod-count N] [--no-home-return]\n"
               "          [--spread F] [--seed N] [--threads N] "
               "[--json [--layers]] [--render]\n"
               "          [--export-qasm FILE]\n"
               "       %s --list-techniques\n",
               argv0, argv0);
  std::exit(error != nullptr ? 2 : 0);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], "missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--benchmark")) {
      options.benchmark = need_value(i);
    } else if (!std::strcmp(arg, "--circuit")) {
      options.circuit_file = need_value(i);
    } else if (!std::strcmp(arg, "--machine")) {
      options.machine = need_value(i);
    } else if (!std::strcmp(arg, "--technique")) {
      options.technique = need_value(i);
    } else if (!std::strcmp(arg, "--aod-count")) {
      options.aod_count = std::atoi(need_value(i));
    } else if (!std::strcmp(arg, "--no-home-return")) {
      options.home_return = false;
    } else if (!std::strcmp(arg, "--spread")) {
      options.spread = std::atof(need_value(i));
    } else if (!std::strcmp(arg, "--seed")) {
      options.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--threads")) {
      options.threads = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--json")) {
      options.json = true;
    } else if (!std::strcmp(arg, "--layers")) {
      options.layers = true;
    } else if (!std::strcmp(arg, "--render")) {
      options.render = true;
    } else if (!std::strcmp(arg, "--list-techniques")) {
      options.list_techniques = true;
    } else if (!std::strcmp(arg, "--export-qasm")) {
      options.export_qasm = need_value(i);
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(argv[0]);
    } else {
      usage(argv[0], (std::string("unknown option ") + arg).c_str());
    }
  }
  if (!options.list_techniques &&
      options.benchmark.empty() == options.circuit_file.empty()) {
    usage(argv[0], "exactly one of --benchmark / --circuit is required");
  }
  return options;
}

void print_text_summary(const parallax::sweep::Cell& cell) {
  std::printf("%-9s  CZ=%-6zu swaps=%-5zu effCZ=%-6zu layers=%-5zu "
              "runtime=%.1fus  moves=%zu tc=%zu  P(success)=%.3e\n",
              cell.technique.c_str(), cell.result.stats.cz_gates,
              cell.result.stats.swap_gates, cell.result.stats.effective_cz(),
              cell.result.stats.layers, cell.result.runtime_us,
              cell.result.stats.aod_moves, cell.result.stats.trap_changes,
              cell.success_probability);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parallax;
  const CliOptions cli = parse_cli(argc, argv);
  const technique::Registry& registry = technique::Registry::global();

  if (cli.list_techniques) {
    for (const auto& name : registry.names()) {
      std::printf("%-9s  %s\n", name.c_str(),
                  registry.info(name).description.c_str());
    }
    return 0;
  }

  hardware::HardwareConfig config;
  if (cli.machine == "quera256") {
    config = hardware::HardwareConfig::quera_aquila_256();
  } else if (cli.machine == "atom1225") {
    config = hardware::HardwareConfig::atom_computing_1225();
  } else {
    usage(argv[0], "unknown machine (use quera256 or atom1225)");
  }
  config.aod_rows = config.aod_cols = cli.aod_count;

  sweep::CircuitSpec spec;
  try {
    if (!cli.benchmark.empty()) {
      bench_circuits::GenOptions gen;
      gen.seed = cli.seed;
      spec = {cli.benchmark, bench_circuits::make_benchmark(cli.benchmark, gen)};
    } else {
      spec = {cli.circuit_file, qasm::parse_file(cli.circuit_file).circuit};
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error loading circuit: %s\n", error.what());
    return 1;
  }

  // Ascending-quality order for "all", so with --export-qasm the last write
  // (the file that survives) is Parallax's zero-SWAP circuit, as before.
  const std::vector<std::string> techniques =
      cli.technique == "all"
          ? std::vector<std::string>{"static", "graphine", "eldi", "parallax"}
          : std::vector<std::string>{cli.technique};

  sweep::Options options;
  options.compile.seed = cli.seed;
  options.compile.scheduler.return_home = cli.home_return;
  options.compile.discretize.spread_factor = cli.spread;
  options.n_threads = cli.threads;

  sweep::Result swept;
  try {
    swept = sweep::run({spec}, techniques, {{cli.machine, config}}, options,
                       registry);
  } catch (const technique::UnknownTechniqueError& error) {
    usage(argv[0], error.what());
  }

  for (const auto& cell : swept.cells) {
    if (!cell.ok()) {
      std::fprintf(stderr, "compilation failed (%s): %s\n",
                   cell.technique.c_str(), cell.error.c_str());
      return 1;
    }
    if (cli.json) {
      compiler::ReportOptions report_options;
      report_options.include_layers = cli.layers;
      std::printf("%s\n",
                  compiler::report_json(cell.result, config, report_options)
                      .c_str());
    } else {
      print_text_summary(cell);
    }
    if (cli.render) {
      std::printf("%s", hardware::render_topology(cell.result).c_str());
    }
    if (!cli.export_qasm.empty()) {
      qasm::write_qasm_file(cell.result.circuit, cli.export_qasm);
      std::printf("compiled circuit written to %s\n",
                  cli.export_qasm.c_str());
    }
  }
  return 0;
}
